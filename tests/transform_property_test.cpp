// Property tests for the verified transform pipeline (DESIGN.md §14):
// seeded random valid graphs through the full pipeline, in every numerics
// mode, must (1) introduce zero new analysis diagnostics and (2) execute
// equivalently to the untransformed graph — bit-exact under INT8's
// deterministic fake quantization, within the documented 1e-6 max-abs
// tolerance under FP32/FP16 — across thread counts {1, 4} and kernel ISAs
// {scalar, auto}.
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/diagnostics.h"
#include "analysis/passes.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "graph/graph.h"
#include "infer/executor.h"
#include "infer/weights.h"
#include "quant/calibration.h"
#include "transform/pass_manager.h"

namespace mlpm {
namespace {

using infer::NumericsMode;
using transform::MakeDefaultPipeline;
using transform::TransformOptions;
using transform::TransformResult;

// Random valid graphs exercising every pass's pattern: pre-fused and
// standalone activations (split/fuse), relu chains (elementwise-chain),
// no-op activations / same-shape reshapes / single-input concats
// (identity-cancel), constants feeding ops (constant-fold + dead-node-elim)
// and plain elementwise glue.  Every op keeps {1, 8, 8, 4}, so any earlier
// tensor is a legal operand; GraphBuilder's eager shape inference guarantees
// validity by construction.
graph::Graph RandomGraph(std::uint64_t seed) {
  Rng rng(seed);
  graph::GraphBuilder b("tp_random_" + std::to_string(seed));
  const graph::TensorShape shape({1, 8, 8, 4});
  constexpr graph::Activation kActs[] = {graph::Activation::kNone,
                                         graph::Activation::kRelu,
                                         graph::Activation::kRelu6};
  std::vector<graph::TensorId> pool{b.Input("in", shape)};
  const int steps = 5 + static_cast<int>(rng.NextBelow(10));
  for (int s = 0; s < steps; ++s) {
    const graph::TensorId a =
        pool[static_cast<std::size_t>(rng.NextBelow(pool.size()))];
    const graph::TensorId c =
        pool[static_cast<std::size_t>(rng.NextBelow(pool.size()))];
    switch (rng.NextBelow(8)) {
      case 0:
        pool.push_back(b.Conv2d(a, 4, 3, 1, kActs[rng.NextBelow(3)]));
        break;
      case 1:
        pool.push_back(b.DepthwiseConv2d(a, 3, 1, kActs[rng.NextBelow(3)]));
        break;
      case 2: pool.push_back(b.Add(a, c)); break;
      case 3: pool.push_back(b.Activate(a, kActs[rng.NextBelow(3)])); break;
      case 4: pool.push_back(b.Reshape(a, {1, 8, 8, 4})); break;
      case 5: pool.push_back(b.Concat({a}, 3)); break;
      case 6: {
        // A constant subgraph: constant (+ optional clamp) into an add —
        // foldable at FP32, refused elsewhere.
        const graph::TensorId k = b.Constant(shape);
        const graph::TensorId kk =
            rng.NextBelow(2) == 0
                ? b.Activate(k, graph::Activation::kRelu)
                : k;
        pool.push_back(b.Add(a, kk));
        break;
      }
      case 7: pool.push_back(b.Mul(a, c)); break;
    }
  }
  b.MarkOutput(pool.back());
  if (rng.NextBelow(2) == 0 && pool.size() > 2)
    b.MarkOutput(pool[pool.size() / 2]);
  return std::move(b).Build();
}

std::vector<infer::Tensor> GraphInputs(const graph::Graph& g,
                                       std::uint64_t seed) {
  std::vector<infer::Tensor> inputs;
  Rng rng(seed);
  for (const graph::TensorId id : g.input_ids()) {
    infer::Tensor t(g.tensor(id).shape);
    for (auto& v : t.values())
      v = static_cast<float>(rng.NextUniform(-1.0, 1.0));
    inputs.push_back(std::move(t));
  }
  return inputs;
}

// Diagnostics per code from the full analysis suite.
std::map<std::string, int> DiagnosticCounts(const graph::Graph& g) {
  analysis::DiagnosticEngine de;
  analysis::RunModelPasses(g, de);
  std::map<std::string, int> counts;
  for (const analysis::Diagnostic& d : de.diagnostics()) ++counts[d.code];
  return counts;
}

// max |a - b| over all outputs; ASSERTs matching structure.
float MaxAbsDiff(const std::vector<infer::Tensor>& a,
                 const std::vector<infer::Tensor>& b) {
  EXPECT_EQ(a.size(), b.size());
  float worst = 0.0f;
  for (std::size_t o = 0; o < a.size() && o < b.size(); ++o) {
    EXPECT_EQ(a[o].size(), b[o].size());
    for (std::size_t i = 0; i < a[o].size() && i < b[o].size(); ++i) {
      const float d = std::fabs(a[o].at(i) - b[o].at(i));
      if (std::isnan(d)) return d;
      worst = std::max(worst, d);
    }
  }
  return worst;
}

constexpr NumericsMode kModes[] = {NumericsMode::kFp32, NumericsMode::kFp16,
                                   NumericsMode::kInt8};
constexpr infer::kernels::KernelIsa kIsas[] = {
    infer::kernels::KernelIsa::kScalar, infer::kernels::KernelIsa::kAuto};

TEST(TransformProperty, PipelineNeverIntroducesDiagnostics) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const graph::Graph g = RandomGraph(seed);
    const infer::WeightStore w = infer::InitializeWeights(g, seed);
    const std::map<std::string, int> before = DiagnosticCounts(g);
    for (const NumericsMode mode : kModes) {
      const TransformResult res =
          MakeDefaultPipeline(TransformOptions{.mode = mode}).Run(g, w);
      EXPECT_FALSE(res.AnyRolledBack())
          << g.name() << " " << infer::ToString(mode) << "\n"
          << res.diagnostics.ToText();
      EXPECT_FALSE(res.diagnostics.HasErrors())
          << g.name() << "\n" << res.diagnostics.ToText();
      // Full-suite re-lint of the committed graph: no code's count may
      // exceed the untransformed baseline (rewrites may *remove* findings,
      // e.g. dead-node elimination, never add them).
      for (const auto& [code, count] : DiagnosticCounts(res.graph)) {
        const auto it = before.find(code);
        const int baseline = it == before.end() ? 0 : it->second;
        EXPECT_LE(count, baseline)
            << g.name() << " " << infer::ToString(mode) << " new " << code;
      }
    }
  }
}

TEST(TransformProperty, TransformedGraphsExecuteEquivalently) {
  ThreadPool pool(4);
  const ThreadPool* pools[] = {nullptr, &pool};  // thread counts {1, 4}

  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const graph::Graph g = RandomGraph(seed);
    const infer::WeightStore w = infer::InitializeWeights(g, seed);
    const std::vector<infer::Tensor> inputs = GraphInputs(g, seed + 500);

    // Shared calibration set for the INT8 executors: ranges are recorded
    // per tensor *name*, and every surviving tensor keeps its name, so the
    // transformed graph calibrates to identical scales.
    std::vector<quant::CalibrationSample> samples;
    for (std::uint64_t cs = 0; cs < 4; ++cs)
      samples.push_back(GraphInputs(g, seed * 97 + cs));

    for (const NumericsMode mode : kModes) {
      const TransformResult res =
          MakeDefaultPipeline(TransformOptions{.mode = mode}).Run(g, w);
      ASSERT_FALSE(res.AnyRolledBack()) << res.diagnostics.ToText();

      infer::QuantParams qp_before;
      infer::QuantParams qp_after;
      if (mode == NumericsMode::kInt8) {
        qp_before = quant::CalibratePtq(g, w, samples);
        qp_after = quant::CalibratePtq(res.graph, res.weights, samples);
      }
      const infer::QuantParams* qb =
          mode == NumericsMode::kInt8 ? &qp_before : nullptr;
      const infer::QuantParams* qa =
          mode == NumericsMode::kInt8 ? &qp_after : nullptr;

      for (const infer::kernels::KernelIsa isa : kIsas) {
        const infer::Executor before(g, w, mode, qb, isa);
        const infer::Executor after(res.graph, res.weights, mode, qa, isa);
        for (const ThreadPool* p : pools) {
          const auto out_b = before.Run(inputs, {}, p);
          const auto out_a = after.Run(inputs, {}, p);
          const float diff = MaxAbsDiff(out_b, out_a);
          const std::string what =
              g.name() + " " + std::string(infer::ToString(mode)) + " isa=" +
              std::string(infer::kernels::ToString(isa)) +
              (p != nullptr ? " threads=4" : " threads=1");
          if (mode == NumericsMode::kInt8) {
            // u8-stable simulated quantization: bitwise agreement required.
            EXPECT_EQ(diff, 0.0f) << what;
          } else {
            // Documented FP32/FP16 tolerance (task_bundle.h): the committed
            // rewrites commute exactly with the roundings involved.
            EXPECT_LE(diff, 1e-6f) << what;
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace mlpm
