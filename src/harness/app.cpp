#include "harness/app.h"

#include "harness/checker.h"
#include "harness/report.h"

namespace mlpm::harness {

AppRunOutput RunMobileApp(const soc::ChipsetDesc& chipset,
                          models::SuiteVersion version, SuiteBundles& bundles,
                          const RunOptions& options) {
  AppRunOutput out;
  out.result = RunSubmission(chipset, version, bundles, options);
  out.report_text = FormatSubmission(out.result);
  const CheckReport check =
      CheckSubmission(out.result, options.performance_settings);
  out.checker_text = FormatCheckReport(check);
  out.submission_valid = check.valid;
  return out;
}

}  // namespace mlpm::harness
