// Deterministic fault injection for the SoC simulator (paper §6.1, §8,
// App. D: NNAPI driver holes, buggy delegates, thermal throttling mid-run).
//
// Real mobile benchmarking survives imperfect runtimes: drivers crash,
// inferences hang until a watchdog kills them, completions get lost, and
// thermal emergencies force cooldowns.  A FaultPlan declares those
// pathologies as seeded per-inference probabilities; the injector draws one
// decision per inference attempt from its own Rng stream, so the same seed
// always produces the same fault schedule — runs are reproducible and
// auditable, exactly like the LoadGen's sample selection.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace mlpm::soc {

class ExecutionTrace;  // soc/trace.h

enum class FaultKind : std::uint8_t {
  // The accelerator hangs; the runtime watchdog kills the attempt after
  // `stall_scale` x the nominal latency.  Transient: a retry may succeed.
  kTransientStall,
  // The driver crashes and fails the whole partition a fraction of the way
  // into the inference.  Repeated crashes indicate a broken delegate.
  kDriverCrash,
  // Die temperature spikes to the hard limit; the run must cool down
  // immediately (run rules §6.1 model the benign version of this).
  kThermalEmergency,
  // The inference runs to completion but its completion signal is lost
  // (dropped interrupt / dead callback); the result never arrives.
  kSampleDrop,
};

[[nodiscard]] constexpr std::string_view ToString(FaultKind k) {
  switch (k) {
    case FaultKind::kTransientStall: return "transient_stall";
    case FaultKind::kDriverCrash: return "driver_crash";
    case FaultKind::kThermalEmergency: return "thermal_emergency";
    case FaultKind::kSampleDrop: return "sample_drop";
  }
  return "?";
}

struct FaultSpec {
  FaultKind kind = FaultKind::kTransientStall;
  // Per-inference-attempt probability in [0, 1].
  double probability = 0.0;
  // kTransientStall: time burned before the watchdog kills the attempt,
  // as a multiple of the nominal latency.
  double stall_scale = 4.0;
  // kDriverCrash: fraction of the nominal latency (and energy) consumed
  // before the driver reports the failure.
  double crash_latency_fraction = 0.1;
};

// A declarative, seeded schedule of faults.  Faults apply to inferences on
// accelerator engines only — a pure-CPU plan has no driver to crash, which
// is what makes CPU fallback a viable degradation target.
struct FaultPlan {
  std::uint64_t seed = 0x464C54;  // "FLT"
  std::vector<FaultSpec> specs;

  FaultPlan& Add(FaultSpec spec) {
    specs.push_back(spec);
    return *this;
  }

  // Convenience builders for the common pathologies.
  FaultPlan& TransientStalls(double probability, double stall_scale = 4.0) {
    return Add({FaultKind::kTransientStall, probability, stall_scale, 0.1});
  }
  FaultPlan& DriverCrashes(double probability,
                           double crash_latency_fraction = 0.1) {
    return Add({FaultKind::kDriverCrash, probability, 4.0,
                crash_latency_fraction});
  }
  FaultPlan& ThermalEmergencies(double probability) {
    return Add({FaultKind::kThermalEmergency, probability, 4.0, 0.1});
  }
  FaultPlan& SampleDrops(double probability) {
    return Add({FaultKind::kSampleDrop, probability, 4.0, 0.1});
  }
};

// One injected fault, recorded when the injector fires.
struct FaultEvent {
  FaultKind kind = FaultKind::kTransientStall;
  std::uint64_t attempt_index = 0;  // ordinal of the inference attempt
  double time_s = 0.0;              // simulator-local busy time at injection
  double penalty_s = 0.0;           // extra/burned latency charged
};

// Draws the fault decision for each inference attempt.  Determinism
// contract: exactly one uniform draw per spec per attempt, regardless of
// outcome, so the schedule depends only on the plan seed and the attempt
// ordinal — never on what the faults did to the run.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  // Decides the fault (if any) for the next inference attempt; returns the
  // matching spec or nullptr.  The caller reports the observed cost via
  // RecordFault once it has computed the penalty.
  [[nodiscard]] const FaultSpec* NextAttempt();

  // Records a fired fault at `time_s` into the event log.
  void RecordFault(const FaultSpec& spec, double time_s, double penalty_s);

  [[nodiscard]] std::uint64_t attempt_count() const { return attempts_; }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }

  // One line per fault event; byte-identical across same-seed runs.
  [[nodiscard]] std::string EventLogText() const;

  // Appends the fault events to an execution trace on a dedicated "faults"
  // lane, so injected pathologies show up in chrome://tracing next to the
  // engine lanes.
  void AppendToTrace(ExecutionTrace& trace) const;

 private:
  FaultPlan plan_;
  Rng rng_;
  std::uint64_t attempts_ = 0;
  std::vector<FaultEvent> events_;
};

}  // namespace mlpm::soc
