#include "datasets/synthetic_image.h"

#include <algorithm>

#include "common/rng.h"

namespace mlpm::datasets {

infer::Tensor GenerateImage(const SyntheticImageConfig& cfg,
                            std::uint64_t seed, std::uint64_t index) {
  Expects(cfg.height > 0 && cfg.width > 0 && cfg.channels > 0,
          "image dims must be positive");
  Expects(cfg.control_grid >= 2, "control grid needs at least 2 points");
  Rng rng = Rng(seed).Split(index);

  const int g = cfg.control_grid;
  std::vector<float> control(
      static_cast<std::size_t>(g) * static_cast<std::size_t>(g) *
      static_cast<std::size_t>(cfg.channels));
  for (auto& v : control) v = static_cast<float>(rng.NextDouble());

  infer::Tensor img(
      graph::TensorShape({1, cfg.height, cfg.width, cfg.channels}));
  float* p = img.data();
  for (std::int64_t y = 0; y < cfg.height; ++y) {
    const float fy = static_cast<float>(y) /
                     static_cast<float>(cfg.height - 1 > 0 ? cfg.height - 1
                                                           : 1) *
                     static_cast<float>(g - 1);
    const int y0 = std::min(static_cast<int>(fy), g - 2);
    const float wy = fy - static_cast<float>(y0);
    for (std::int64_t x = 0; x < cfg.width; ++x) {
      const float fx = static_cast<float>(x) /
                       static_cast<float>(cfg.width - 1 > 0 ? cfg.width - 1
                                                            : 1) *
                       static_cast<float>(g - 1);
      const int x0 = std::min(static_cast<int>(fx), g - 2);
      const float wx = fx - static_cast<float>(x0);
      for (std::int64_t c = 0; c < cfg.channels; ++c) {
        const auto ctrl = [&](int yy, int xx) {
          return control[(static_cast<std::size_t>(yy) *
                              static_cast<std::size_t>(g) +
                          static_cast<std::size_t>(xx)) *
                             static_cast<std::size_t>(cfg.channels) +
                         static_cast<std::size_t>(c)];
        };
        const float top = ctrl(y0, x0) * (1 - wx) + ctrl(y0, x0 + 1) * wx;
        const float bot =
            ctrl(y0 + 1, x0) * (1 - wx) + ctrl(y0 + 1, x0 + 1) * wx;
        float v = top * (1 - wy) + bot * wy;
        v += cfg.noise_level *
             static_cast<float>(rng.NextGaussian());
        p[(y * cfg.width + x) * cfg.channels + c] = std::clamp(v, 0.0f, 1.0f);
      }
    }
  }
  return img;
}

}  // namespace mlpm::datasets
