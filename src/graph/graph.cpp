#include "graph/graph.h"

#include <algorithm>
#include <sstream>

namespace mlpm::graph {

std::string TensorShape::ToString() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) os << 'x';
    os << dims_[i];
  }
  os << ']';
  return os.str();
}

std::string_view ToString(OpType t) {
  switch (t) {
    case OpType::kInput: return "Input";
    case OpType::kConv2d: return "Conv2d";
    case OpType::kDepthwiseConv2d: return "DepthwiseConv2d";
    case OpType::kFullyConnected: return "FullyConnected";
    case OpType::kAdd: return "Add";
    case OpType::kMul: return "Mul";
    case OpType::kAvgPool: return "AvgPool";
    case OpType::kMaxPool: return "MaxPool";
    case OpType::kGlobalAvgPool: return "GlobalAvgPool";
    case OpType::kResizeBilinear: return "ResizeBilinear";
    case OpType::kConcat: return "Concat";
    case OpType::kReshape: return "Reshape";
    case OpType::kSoftmax: return "Softmax";
    case OpType::kActivation: return "Activation";
    case OpType::kLayerNorm: return "LayerNorm";
    case OpType::kEmbeddingLookup: return "EmbeddingLookup";
    case OpType::kMultiHeadAttention: return "MultiHeadAttention";
    case OpType::kLstm: return "Lstm";
    case OpType::kConstant: return "Constant";
  }
  return "?";
}

std::string_view ToString(OpClass c) {
  switch (c) {
    case OpClass::kConvDense: return "conv-dense";
    case OpClass::kConvDepthwise: return "conv-depthwise";
    case OpClass::kGemm: return "gemm";
    case OpClass::kAttention: return "attention";
    case OpClass::kElementwise: return "elementwise";
    case OpClass::kMemory: return "memory";
  }
  return "?";
}

std::string_view ToString(Activation a) {
  switch (a) {
    case Activation::kNone: return "none";
    case Activation::kRelu: return "relu";
    case Activation::kRelu6: return "relu6";
    case Activation::kSigmoid: return "sigmoid";
    case Activation::kTanh: return "tanh";
    case Activation::kGelu: return "gelu";
  }
  return "?";
}

OpClass ClassOf(OpType t) {
  switch (t) {
    case OpType::kConv2d:
      return OpClass::kConvDense;
    case OpType::kDepthwiseConv2d:
      return OpClass::kConvDepthwise;
    case OpType::kFullyConnected:
    case OpType::kLstm:
      return OpClass::kGemm;
    case OpType::kMultiHeadAttention:
      return OpClass::kAttention;
    case OpType::kReshape:
    case OpType::kConcat:
    case OpType::kEmbeddingLookup:
    case OpType::kConstant:
      return OpClass::kMemory;
    case OpType::kInput:
    case OpType::kAdd:
    case OpType::kMul:
    case OpType::kAvgPool:
    case OpType::kMaxPool:
    case OpType::kGlobalAvgPool:
    case OpType::kResizeBilinear:
    case OpType::kSoftmax:
    case OpType::kActivation:
    case OpType::kLayerNorm:
      return OpClass::kElementwise;
  }
  return OpClass::kElementwise;
}

const TensorInfo& Graph::tensor(TensorId id) const {
  Expects(id >= 0 && static_cast<std::size_t>(id) < tensors_.size(),
          "tensor id out of range");
  return tensors_[static_cast<std::size_t>(id)];
}

std::int64_t Graph::ParameterCount() const {
  std::int64_t n = 0;
  for (const auto& t : tensors_)
    if (t.kind == TensorKind::kWeight) n += t.shape.elements();
  return n;
}

std::uint64_t Graph::StructuralFingerprint() const {
  // FNV-1a over op types, tensor shapes and connectivity.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  for (const auto& n : nodes_) {
    mix(static_cast<std::uint64_t>(n.op));
    for (auto in : n.inputs) mix(static_cast<std::uint64_t>(in) + 1);
    for (auto w : n.weights) {
      const auto& t = tensors_[static_cast<std::size_t>(w)];
      for (auto d : t.shape.dims()) mix(static_cast<std::uint64_t>(d));
    }
    const auto& out = tensors_[static_cast<std::size_t>(n.output)];
    for (auto d : out.shape.dims()) mix(static_cast<std::uint64_t>(d) << 32);
  }
  return h;
}

std::int64_t ConvOutDim(std::int64_t in, int kernel, int stride, int dilation,
                        Padding pad) {
  Expects(in > 0 && kernel > 0 && stride > 0 && dilation > 0,
          "conv dims must be positive");
  const std::int64_t eff_k = static_cast<std::int64_t>(dilation) *
                                 (kernel - 1) +
                             1;
  if (pad == Padding::kSame) return (in + stride - 1) / stride;
  Expects(in >= eff_k, "valid padding requires input >= effective kernel");
  return (in - eff_k) / stride + 1;
}

GraphBuilder::GraphBuilder(std::string graph_name) {
  g_.name_ = std::move(graph_name);
}

const TensorShape& GraphBuilder::ShapeOf(TensorId id) const {
  return g_.tensor(id).shape;
}

TensorId GraphBuilder::AddTensor(std::string name, TensorShape shape,
                                 TensorKind kind) {
  g_.tensors_.emplace_back(std::move(name), std::move(shape), kind,
                           /*producer=*/-1);
  return static_cast<TensorId>(g_.tensors_.size() - 1);
}

std::string GraphBuilder::AutoName(OpType op, const std::string& given) {
  if (!given.empty()) return given;
  std::ostringstream os;
  os << ToString(op) << '_' << op_counter_;
  return os.str();
}

TensorId GraphBuilder::AddNode(OpType op, OpAttrs attrs,
                               std::vector<TensorId> inputs,
                               std::vector<TensorId> weights,
                               TensorShape out_shape,
                               const std::string& name) {
  const std::string node_name = AutoName(op, name);
  const TensorId out =
      AddTensor(node_name + ":0", std::move(out_shape),
                TensorKind::kActivation);
  Node n;
  n.name = node_name;
  n.op = op;
  n.attrs = std::move(attrs);
  n.inputs = std::move(inputs);
  n.weights = std::move(weights);
  n.output = out;
  g_.tensors_[static_cast<std::size_t>(out)].producer =
      static_cast<std::int32_t>(g_.nodes_.size());
  g_.nodes_.push_back(std::move(n));
  ++op_counter_;
  return out;
}

TensorId GraphBuilder::Input(const std::string& name, TensorShape shape) {
  const TensorId t = AddTensor(name, std::move(shape),
                               TensorKind::kActivation);
  g_.inputs_.push_back(t);
  return t;
}

TensorId GraphBuilder::Constant(TensorShape shape, const std::string& name) {
  Expects(shape.rank() > 0, "Constant needs a shaped value");
  const std::string node_name = AutoName(OpType::kConstant, name);
  const TensorId value =
      AddTensor(node_name + "/value", shape, TensorKind::kWeight);
  return AddNode(OpType::kConstant, EmptyAttrs{}, {}, {value},
                 std::move(shape), node_name);
}

TensorId GraphBuilder::Conv2d(TensorId in, std::int64_t out_channels,
                              int kernel, int stride, Activation act,
                              Padding pad, int dilation,
                              const std::string& name) {
  const TensorShape s = ShapeOf(in);
  Expects(s.rank() == 4, "Conv2d input must be NHWC");
  Expects(out_channels > 0, "Conv2d needs positive out_channels");
  Conv2dAttrs a;
  a.out_channels = out_channels;
  a.kernel_h = a.kernel_w = kernel;
  a.stride = stride;
  a.dilation = dilation;
  a.padding = pad;
  a.activation = act;
  const std::string node_name = AutoName(OpType::kConv2d, name);
  const TensorId w = AddTensor(
      node_name + "/w",
      TensorShape({out_channels, kernel, kernel, s.channels()}),
      TensorKind::kWeight);
  const TensorId b = AddTensor(node_name + "/b", TensorShape({out_channels}),
                               TensorKind::kWeight);
  TensorShape out({s.batch(),
                   ConvOutDim(s.height(), kernel, stride, dilation, pad),
                   ConvOutDim(s.width(), kernel, stride, dilation, pad),
                   out_channels});
  return AddNode(OpType::kConv2d, a, {in}, {w, b}, std::move(out), node_name);
}

TensorId GraphBuilder::DepthwiseConv2d(TensorId in, int kernel, int stride,
                                       Activation act, Padding pad,
                                       int dilation,
                                       const std::string& name) {
  const TensorShape s = ShapeOf(in);
  Expects(s.rank() == 4, "DepthwiseConv2d input must be NHWC");
  DepthwiseConv2dAttrs a;
  a.kernel_h = a.kernel_w = kernel;
  a.stride = stride;
  a.dilation = dilation;
  a.padding = pad;
  a.activation = act;
  const std::string node_name = AutoName(OpType::kDepthwiseConv2d, name);
  const TensorId w =
      AddTensor(node_name + "/w",
                TensorShape({s.channels(), kernel, kernel}),
                TensorKind::kWeight);
  const TensorId b =
      AddTensor(node_name + "/b", TensorShape({s.channels()}),
                TensorKind::kWeight);
  TensorShape out({s.batch(),
                   ConvOutDim(s.height(), kernel, stride, dilation, pad),
                   ConvOutDim(s.width(), kernel, stride, dilation, pad),
                   s.channels()});
  return AddNode(OpType::kDepthwiseConv2d, a, {in}, {w, b}, std::move(out),
                 node_name);
}

TensorId GraphBuilder::FullyConnected(TensorId in, std::int64_t out_features,
                                      Activation act,
                                      const std::string& name) {
  const TensorShape s = ShapeOf(in);
  Expects(s.rank() >= 1, "FullyConnected input must have rank >= 1");
  Expects(out_features > 0, "FullyConnected needs positive out_features");
  const std::int64_t in_features = s.dim(s.rank() - 1);
  FullyConnectedAttrs a;
  a.out_features = out_features;
  a.activation = act;
  const std::string node_name = AutoName(OpType::kFullyConnected, name);
  const TensorId w =
      AddTensor(node_name + "/w", TensorShape({out_features, in_features}),
                TensorKind::kWeight);
  const TensorId b = AddTensor(node_name + "/b", TensorShape({out_features}),
                               TensorKind::kWeight);
  std::vector<std::int64_t> dims = s.dims();
  dims.back() = out_features;
  return AddNode(OpType::kFullyConnected, a, {in}, {w, b},
                 TensorShape(std::move(dims)), node_name);
}

TensorId GraphBuilder::Add(TensorId a, TensorId b, const std::string& name) {
  Expects(ShapeOf(a) == ShapeOf(b), "Add requires equal shapes");
  return AddNode(OpType::kAdd, EmptyAttrs{}, {a, b}, {}, ShapeOf(a), name);
}

TensorId GraphBuilder::Mul(TensorId a, TensorId b, const std::string& name) {
  Expects(ShapeOf(a) == ShapeOf(b), "Mul requires equal shapes");
  return AddNode(OpType::kMul, EmptyAttrs{}, {a, b}, {}, ShapeOf(a), name);
}

TensorId GraphBuilder::AvgPool(TensorId in, int kernel, int stride,
                               const std::string& name) {
  const TensorShape s = ShapeOf(in);
  Expects(s.rank() == 4, "AvgPool input must be NHWC");
  PoolAttrs a{kernel, stride, Padding::kValid};
  TensorShape out({s.batch(),
                   ConvOutDim(s.height(), kernel, stride, 1, a.padding),
                   ConvOutDim(s.width(), kernel, stride, 1, a.padding),
                   s.channels()});
  return AddNode(OpType::kAvgPool, a, {in}, {}, std::move(out), name);
}

TensorId GraphBuilder::MaxPool(TensorId in, int kernel, int stride,
                               const std::string& name) {
  const TensorShape s = ShapeOf(in);
  Expects(s.rank() == 4, "MaxPool input must be NHWC");
  PoolAttrs a{kernel, stride, Padding::kValid};
  TensorShape out({s.batch(),
                   ConvOutDim(s.height(), kernel, stride, 1, a.padding),
                   ConvOutDim(s.width(), kernel, stride, 1, a.padding),
                   s.channels()});
  return AddNode(OpType::kMaxPool, a, {in}, {}, std::move(out), name);
}

TensorId GraphBuilder::GlobalAvgPool(TensorId in, const std::string& name) {
  const TensorShape s = ShapeOf(in);
  Expects(s.rank() == 4, "GlobalAvgPool input must be NHWC");
  return AddNode(OpType::kGlobalAvgPool, EmptyAttrs{}, {in}, {},
                 TensorShape({s.batch(), 1, 1, s.channels()}), name);
}

TensorId GraphBuilder::ResizeBilinear(TensorId in, std::int64_t out_h,
                                      std::int64_t out_w,
                                      const std::string& name) {
  const TensorShape s = ShapeOf(in);
  Expects(s.rank() == 4, "ResizeBilinear input must be NHWC");
  Expects(out_h > 0 && out_w > 0, "resize target must be positive");
  ResizeAttrs a{out_h, out_w};
  return AddNode(OpType::kResizeBilinear, a, {in}, {},
                 TensorShape({s.batch(), out_h, out_w, s.channels()}), name);
}

TensorId GraphBuilder::Concat(std::vector<TensorId> ins, int axis,
                              const std::string& name) {
  Expects(!ins.empty(), "Concat needs at least one input");
  const TensorShape first = ShapeOf(ins.front());
  const std::size_t rank = first.rank();
  Expects(axis >= -static_cast<int>(rank) && axis < static_cast<int>(rank),
          "Concat axis out of range");
  const std::size_t ax = axis >= 0
                             ? static_cast<std::size_t>(axis)
                             : static_cast<std::size_t>(
                                   static_cast<int>(rank) + axis);
  Expects(ax < rank, "Concat axis out of range");
  std::vector<std::int64_t> dims = first.dims();
  std::int64_t cat = 0;
  for (TensorId t : ins) {
    const TensorShape s = ShapeOf(t);
    Expects(s.rank() == rank, "Concat rank mismatch");
    for (std::size_t d = 0; d < rank; ++d)
      if (d != ax)
        Expects(s.dim(d) == first.dim(d), "Concat non-axis dim mismatch");
    cat += s.dim(ax);
  }
  dims[ax] = cat;
  ConcatAttrs a{static_cast<int>(ax)};
  return AddNode(OpType::kConcat, a, std::move(ins), {},
                 TensorShape(std::move(dims)), name);
}

TensorId GraphBuilder::Reshape(TensorId in, std::vector<std::int64_t> dims,
                               const std::string& name) {
  TensorShape out(dims);
  Expects(out.elements() == ShapeOf(in).elements(),
          "Reshape must preserve element count");
  ReshapeAttrs a{std::move(dims)};
  return AddNode(OpType::kReshape, std::move(a), {in}, {}, std::move(out),
                 name);
}

TensorId GraphBuilder::Softmax(TensorId in, int axis,
                               const std::string& name) {
  SoftmaxAttrs a{axis};
  return AddNode(OpType::kSoftmax, a, {in}, {}, ShapeOf(in), name);
}

TensorId GraphBuilder::Activate(TensorId in, Activation act,
                                const std::string& name) {
  ActivationAttrs a{act};
  return AddNode(OpType::kActivation, a, {in}, {}, ShapeOf(in), name);
}

TensorId GraphBuilder::LayerNorm(TensorId in, const std::string& name) {
  const TensorShape s = ShapeOf(in);
  const std::int64_t features = s.dim(s.rank() - 1);
  const std::string node_name = AutoName(OpType::kLayerNorm, name);
  const TensorId gamma = AddTensor(node_name + "/gamma",
                                   TensorShape({features}),
                                   TensorKind::kWeight);
  const TensorId beta = AddTensor(node_name + "/beta", TensorShape({features}),
                                  TensorKind::kWeight);
  return AddNode(OpType::kLayerNorm, LayerNormAttrs{}, {in}, {gamma, beta},
                 ShapeOf(in), node_name);
}

TensorId GraphBuilder::Embedding(TensorId token_ids, std::int64_t vocab,
                                 std::int64_t dim, const std::string& name) {
  const TensorShape s = ShapeOf(token_ids);
  Expects(s.rank() == 1, "Embedding expects [seq_len] token ids");
  Expects(vocab > 0 && dim > 0, "Embedding dims must be positive");
  EmbeddingAttrs a{vocab, dim};
  const std::string node_name = AutoName(OpType::kEmbeddingLookup, name);
  const TensorId table = AddTensor(
      node_name + "/table", TensorShape({vocab, dim}), TensorKind::kWeight);
  return AddNode(OpType::kEmbeddingLookup, a, {token_ids}, {table},
                 TensorShape({s.dim(0), dim}), node_name);
}

TensorId GraphBuilder::MultiHeadAttention(TensorId in, int num_heads,
                                          std::int64_t head_dim,
                                          const std::string& name) {
  const TensorShape s = ShapeOf(in);
  Expects(s.rank() == 2, "Attention expects [seq_len, model_dim]");
  const std::int64_t model_dim = s.dim(1);
  Expects(num_heads > 0 && head_dim > 0, "attention dims must be positive");
  Expects(num_heads * head_dim == model_dim,
          "heads*head_dim must equal model dim");
  AttentionAttrs a{num_heads, head_dim};
  const std::string node_name = AutoName(OpType::kMultiHeadAttention, name);
  std::vector<TensorId> ws;
  for (const char* suffix : {"/wq", "/wk", "/wv", "/wo"})
    ws.push_back(AddTensor(node_name + suffix,
                           TensorShape({model_dim, model_dim}),
                           TensorKind::kWeight));
  return AddNode(OpType::kMultiHeadAttention, a, {in}, std::move(ws),
                 ShapeOf(in), node_name);
}

TensorId GraphBuilder::Lstm(TensorId in, std::int64_t hidden_dim,
                            const std::string& name) {
  const TensorShape s = ShapeOf(in);
  Expects(s.rank() == 2, "Lstm expects [seq_len, features]");
  Expects(hidden_dim > 0, "Lstm hidden dim must be positive");
  const std::int64_t input_dim = s.dim(1);
  LstmAttrs a{hidden_dim};
  const std::string node_name = AutoName(OpType::kLstm, name);
  const TensorId wx = AddTensor(node_name + "/wx",
                                TensorShape({4 * hidden_dim, input_dim}),
                                TensorKind::kWeight);
  const TensorId wh = AddTensor(node_name + "/wh",
                                TensorShape({4 * hidden_dim, hidden_dim}),
                                TensorKind::kWeight);
  const TensorId b = AddTensor(node_name + "/b",
                               TensorShape({4 * hidden_dim}),
                               TensorKind::kWeight);
  return AddNode(OpType::kLstm, a, {in}, {wx, wh, b},
                 TensorShape({s.dim(0), hidden_dim}), node_name);
}

void GraphBuilder::MarkOutput(TensorId id) {
  Expects(id >= 0 && static_cast<std::size_t>(id) < g_.tensors_.size(),
          "MarkOutput: bad tensor id");
  g_.outputs_.push_back(id);
}

Graph GraphBuilder::Build() && {
  Expects(!g_.inputs_.empty(), "graph has no inputs");
  Expects(!g_.outputs_.empty(), "graph has no outputs");
  return std::move(g_);
}

Graph AssembleGraphUnchecked(std::string name, std::vector<Node> nodes,
                             std::vector<TensorInfo> tensors,
                             std::vector<TensorId> inputs,
                             std::vector<TensorId> outputs) {
  Graph g;
  g.name_ = std::move(name);
  g.nodes_ = std::move(nodes);
  g.tensors_ = std::move(tensors);
  g.inputs_ = std::move(inputs);
  g.outputs_ = std::move(outputs);
  return g;
}

}  // namespace mlpm::graph
