#include "soc/simulator.h"

#include <algorithm>
#include <cmath>

namespace mlpm::soc {

SocSimulator::SocSimulator(ChipsetDesc chipset)
    : chipset_(std::move(chipset)), thermal_(chipset_.thermal) {}

InferenceResult SocSimulator::RunInference(const CompiledModel& model) {
  InferenceResult r;
  r.throttle_factor = thermal_.ThrottleFactor();
  r.latency_s = model.LatencySeconds(r.throttle_factor);
  r.energy_j = model.EnergyJoules();
  // Power is capped by the chipset TDP (Appendix E: ~3 W ceiling); the cap
  // manifests as extra heat-limited time already captured by throttling, so
  // here it only bounds the dissipation fed to the thermal mass.
  const double power =
      std::min(model.AveragePowerWatts(), chipset_.tdp_w);
  thermal_.Step(power, r.latency_s);
  r.temperature_c = thermal_.temperature_c();
  return r;
}

BatchResult SocSimulator::RunBatch(std::span<const CompiledModel> replicas,
                                   std::size_t sample_count,
                                   const BatchOptions& options) {
  Expects(!replicas.empty(), "batch needs at least one replica");
  Expects(sample_count > 0, "batch needs at least one sample");

  BatchResult r;
  r.completion_times_s.reserve(sample_count);

  // Concurrent power of all replicas, TDP-capped.
  double raw_power = 0.0;
  for (const auto& m : replicas) raw_power += m.AveragePowerWatts();
  const double power = std::min(raw_power, chipset_.tdp_w);

  double now = 0.0;
  double produced = 0.0;  // fractional samples completed so far
  std::size_t emitted = 0;
  while (emitted < sample_count) {
    const double throttle = thermal_.ThrottleFactor();
    double rate = 0.0;  // samples per second across all replicas
    for (const auto& m : replicas) {
      const double t = m.LatencySeconds(throttle, options.dispatch_scale) -
                       m.overheads.per_inference_s *
                           (1.0 - options.per_inference_overhead_scale);
      Ensures(t > 0.0, "non-positive batched latency");
      rate += options.batched_efficiency_gain / t;
    }
    const double remaining = static_cast<double>(sample_count) - produced;
    const double dt = std::min(options.step_s, remaining / rate);
    const double before = produced;
    produced += rate * dt;
    // Emit completion timestamps for the integer completions in this step.
    while (emitted < sample_count &&
           static_cast<double>(emitted + 1) <= produced + 1e-9) {
      const double frac =
          (static_cast<double>(emitted + 1) - before) / (produced - before);
      r.completion_times_s.push_back(now + frac * dt);
      ++emitted;
    }
    now += dt;
    thermal_.Step(power, dt);
    r.energy_j += power * dt;
  }
  r.makespan_s = r.completion_times_s.back();
  r.final_temperature_c = thermal_.temperature_c();
  return r;
}

}  // namespace mlpm::soc
