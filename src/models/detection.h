// SSD detection post-processing: anchor grids, box decoding and NMS.
//
// Post-processing is a dataset-specific stage all submitters must implement
// identically (paper §4.1); it runs on the CPU outside the measured model
// (the "AI tax" the end-to-end extension can optionally include).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"

namespace mlpm::models {

// Box in normalized [0,1] corner coordinates.
struct BBox {
  float ymin = 0, xmin = 0, ymax = 0, xmax = 0;

  [[nodiscard]] float Area() const {
    return (ymax > ymin && xmax > xmin) ? (ymax - ymin) * (xmax - xmin) : 0.f;
  }
  [[nodiscard]] float IoU(const BBox& o) const;
};

// Anchor in center form (normalized).
struct Anchor {
  float cy = 0, cx = 0, h = 0, w = 0;
};

// The fixed anchor grid an SSD model's outputs are relative to.
class AnchorSet {
 public:
  struct FeatureMapSpec {
    std::int64_t grid = 0;            // grid x grid cells
    std::vector<float> scales;        // anchor scales (fraction of image)
    std::vector<float> aspect_ratios; // w/h ratios, applied per scale
  };

  static AnchorSet Build(std::span<const FeatureMapSpec> maps);

  [[nodiscard]] const std::vector<Anchor>& anchors() const { return anchors_; }
  [[nodiscard]] std::size_t size() const { return anchors_.size(); }

  // Anchors per cell on map `i` (scales.size() * aspect_ratios.size()).
  [[nodiscard]] static std::int64_t PerCell(const FeatureMapSpec& m) {
    return static_cast<std::int64_t>(m.scales.size() *
                                     m.aspect_ratios.size());
  }

 private:
  std::vector<Anchor> anchors_;
};

struct Detection {
  BBox box;
  int class_id = 0;  // 0 is background and never emitted
  float score = 0.0f;
};

struct DecodeConfig {
  float score_threshold = 0.3f;
  float nms_iou_threshold = 0.5f;
  int max_detections = 10;
  // SSD box-coder variances (TF object-detection defaults).
  float scale_xy = 10.0f;
  float scale_hw = 5.0f;
};

// Decodes raw SSD outputs to final detections: softmax over class logits
// (class 0 = background), box-delta decode against anchors, per-class NMS.
// `box_deltas` is [num_anchors * 4] (ty,tx,th,tw); `class_logits` is
// [num_anchors * num_classes].
[[nodiscard]] std::vector<Detection> DecodeDetections(
    std::span<const float> box_deltas, std::span<const float> class_logits,
    const AnchorSet& anchors, std::int64_t num_classes,
    const DecodeConfig& cfg = {});

// Greedy per-class NMS; input need not be sorted.
[[nodiscard]] std::vector<Detection> Nms(std::vector<Detection> dets,
                                         float iou_threshold,
                                         int max_detections);

}  // namespace mlpm::models
