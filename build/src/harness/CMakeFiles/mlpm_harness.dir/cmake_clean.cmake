file(REMOVE_RECURSE
  "CMakeFiles/mlpm_harness.dir/app.cpp.o"
  "CMakeFiles/mlpm_harness.dir/app.cpp.o.d"
  "CMakeFiles/mlpm_harness.dir/audit.cpp.o"
  "CMakeFiles/mlpm_harness.dir/audit.cpp.o.d"
  "CMakeFiles/mlpm_harness.dir/checker.cpp.o"
  "CMakeFiles/mlpm_harness.dir/checker.cpp.o.d"
  "CMakeFiles/mlpm_harness.dir/export.cpp.o"
  "CMakeFiles/mlpm_harness.dir/export.cpp.o.d"
  "CMakeFiles/mlpm_harness.dir/package.cpp.o"
  "CMakeFiles/mlpm_harness.dir/package.cpp.o.d"
  "CMakeFiles/mlpm_harness.dir/report.cpp.o"
  "CMakeFiles/mlpm_harness.dir/report.cpp.o.d"
  "CMakeFiles/mlpm_harness.dir/result_store.cpp.o"
  "CMakeFiles/mlpm_harness.dir/result_store.cpp.o.d"
  "CMakeFiles/mlpm_harness.dir/run_session.cpp.o"
  "CMakeFiles/mlpm_harness.dir/run_session.cpp.o.d"
  "CMakeFiles/mlpm_harness.dir/task_bundle.cpp.o"
  "CMakeFiles/mlpm_harness.dir/task_bundle.cpp.o.d"
  "libmlpm_harness.a"
  "libmlpm_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlpm_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
