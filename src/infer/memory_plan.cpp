#include "infer/memory_plan.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "infer/tile_planner.h"

namespace mlpm::infer {
namespace {

using graph::Graph;
using graph::Node;
using graph::OpType;
using graph::TensorId;

std::size_t AlignUp(std::size_t n) {
  return (n + kArenaAlignElements - 1) / kArenaAlignElements *
         kArenaAlignElements;
}

}  // namespace

bool SupportsInPlace(graph::OpType op) {
  switch (op) {
    case OpType::kReshape:     // pure view: the copy is skipped entirely
    case OpType::kActivation:  // out[i] = f(in[i])
    case OpType::kAdd:         // out[i] = a[i] + b[i]: reads precede the write
    case OpType::kMul:
      return true;
    default:
      return false;
  }
}

MemoryPlan MemoryPlan::Build(const Graph& g) {
  return Build(g, nullptr);
}

MemoryPlan MemoryPlan::Build(const Graph& g, const TilePlan* tiling) {
  std::vector<graph::LiveInterval> live = graph::ComputeLiveness(g);
  // A tiled segment executes as one unit: while the tail writes its output
  // band, the head is still reading its exterior input for the next tile.
  // Every exterior tensor any segment node reads must therefore stay live
  // through the segment's last node, or the packer could lay the tail's
  // output over a buffer the segment still reads.
  if (tiling != nullptr) {
    for (const TileSegment& s : tiling->segments)
      for (std::int32_t m = s.first_node; m <= s.last_node; ++m)
        for (const TensorId id : g.nodes()[static_cast<std::size_t>(m)].inputs)
          if (!tiling->interior[static_cast<std::size_t>(id)])
            live[static_cast<std::size_t>(id)].last_use =
                std::max(live[static_cast<std::size_t>(id)].last_use,
                         s.last_node);
  }
  MemoryPlan plan;
  plan.placements_.resize(g.tensors().size());
  plan.tile_slab_bytes_ = tiling != nullptr ? tiling->slab_bytes() : 0;

  // Per-tile slab bytes by interior TensorId (0 for everything else).
  std::vector<std::size_t> slab_tensor_bytes(g.tensors().size(), 0);
  if (tiling != nullptr) {
    for (const TileSegment& s : tiling->segments)
      for (std::size_t j = 0; j < s.interior.size(); ++j) {
        const graph::TensorShape& sh = g.tensor(s.interior[j]).shape;
        slab_tensor_bytes[static_cast<std::size_t>(s.interior[j])] =
            static_cast<std::size_t>(s.slab_rows[j] * sh.width() *
                                     sh.channels()) *
            sizeof(float);
      }
  }

  // Per-root bookkeeping while aliases accrete onto buffers.  `root_of` is
  // only meaningful for planned tensors; aliases point directly at their
  // root (alias chains are flattened as they are built).
  std::vector<std::int32_t> buffer_index(g.tensors().size(), -1);

  const auto node_count = static_cast<std::int32_t>(g.nodes().size());
  for (std::int32_t i = 0; i < node_count; ++i) {
    const Node& n = g.nodes()[static_cast<std::size_t>(i)];
    if (n.op == OpType::kInput) continue;
    const auto out = static_cast<std::size_t>(n.output);
    const std::int64_t out_elements = g.tensor(n.output).shape.elements();
    // A produced-but-never-read tensor still needs somewhere to write.
    const std::int32_t out_last = std::max(live[out].last_use, i);

    // Segment-interior tensors never touch the arena: the tiled executor
    // materializes them tile-by-tile in per-worker slabs, so their full-size
    // live interval disappears from packing entirely.  The naive footprint
    // still counts them at full size — that is exactly the saving.
    if (tiling != nullptr && tiling->interior[out]) {
      plan.placements_[out] = {PlacementKind::kTileSlab, 0, n.output};
      plan.naive_bytes_ +=
          static_cast<std::size_t>(out_elements) * sizeof(float);
      plan.intervals_.push_back(IntervalBytes{n.output, i, out_last,
                                              slab_tensor_bytes[out],
                                              PlacementKind::kTileSlab});
      continue;
    }

    // Alias onto the first input's buffer when the op tolerates it, the
    // element counts match (index-aligned access), and the buffer carries
    // no value anyone reads after this node.  Graph inputs are caller
    // memory and never aliased; a buffer holding a graph output has
    // last_use == nodes().size() and so never dies early.  Tile-slab
    // inputs have no arena buffer to share, so they never donate one.
    if (SupportsInPlace(n.op) && !n.inputs.empty()) {
      const auto in0 = static_cast<std::size_t>(n.inputs[0]);
      const TensorPlacement& src = plan.placements_[in0];
      if (src.kind == PlacementKind::kArena ||
          src.kind == PlacementKind::kAlias) {
        ArenaBuffer& buf = plan.buffers_[static_cast<std::size_t>(
            buffer_index[static_cast<std::size_t>(src.buffer)])];
        if (buf.last_use == i &&
            static_cast<std::int64_t>(buf.elements) == out_elements) {
          plan.placements_[out] = {PlacementKind::kAlias, 0, src.buffer};
          buf.last_use = std::max(buf.last_use, out_last);
          ++plan.alias_count_;
          plan.naive_bytes_ +=
              static_cast<std::size_t>(out_elements) * sizeof(float);
          continue;
        }
      }
    }

    plan.placements_[out] = {PlacementKind::kArena, 0, n.output};
    buffer_index[out] = static_cast<std::int32_t>(plan.buffers_.size());
    plan.buffers_.push_back(ArenaBuffer{
        n.output, 0, static_cast<std::size_t>(out_elements), i, out_last});
    plan.naive_bytes_ +=
        static_cast<std::size_t>(out_elements) * sizeof(float);
  }

  // Greedy best-fit packing, largest buffer first: for each buffer, scan
  // the gaps left between already-placed lifetime-overlapping buffers and
  // take the smallest gap that fits (lowest offset on ties); extend the
  // arena only when no gap fits.
  std::vector<std::size_t> order(plan.buffers_.size());
  for (std::size_t k = 0; k < order.size(); ++k) order[k] = k;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const ArenaBuffer& x = plan.buffers_[a];
    const ArenaBuffer& y = plan.buffers_[b];
    if (x.elements != y.elements) return x.elements > y.elements;
    if (x.def != y.def) return x.def < y.def;
    return x.root < y.root;
  });

  std::vector<std::size_t> placed;  // indices into buffers_, offset assigned
  placed.reserve(order.size());
  for (const std::size_t k : order) {
    ArenaBuffer& b = plan.buffers_[k];
    const std::size_t need = AlignUp(b.elements);

    // Placed buffers whose lifetime overlaps b's, in offset order.
    std::vector<const ArenaBuffer*> busy;
    for (const std::size_t p : placed) {
      const ArenaBuffer& o = plan.buffers_[p];
      if (o.def <= b.last_use && b.def <= o.last_use) busy.push_back(&o);
    }
    std::sort(busy.begin(), busy.end(),
              [](const ArenaBuffer* a, const ArenaBuffer* c) {
                return a->offset < c->offset;
              });

    std::size_t best_offset = std::numeric_limits<std::size_t>::max();
    std::size_t best_gap = std::numeric_limits<std::size_t>::max();
    std::size_t cursor = 0;
    for (const ArenaBuffer* o : busy) {
      if (o->offset > cursor) {
        const std::size_t gap = o->offset - cursor;
        if (gap >= need && gap < best_gap) {
          best_gap = gap;
          best_offset = cursor;
        }
      }
      cursor = std::max(cursor, o->offset + AlignUp(o->elements));
    }
    b.offset = best_gap == std::numeric_limits<std::size_t>::max()
                   ? cursor  // open-ended tail after the last busy buffer
                   : best_offset;
    plan.arena_elements_ = std::max(plan.arena_elements_, b.offset + need);
    placed.push_back(k);
  }

  // Resolve alias offsets now that every root has one.
  for (std::size_t id = 0; id < plan.placements_.size(); ++id) {
    TensorPlacement& p = plan.placements_[id];
    if (p.kind == PlacementKind::kUnplanned ||
        p.kind == PlacementKind::kTileSlab)
      continue;
    const ArenaBuffer& buf = plan.buffers_[static_cast<std::size_t>(
        buffer_index[static_cast<std::size_t>(p.buffer)])];
    p.offset = buf.offset;
  }

  // Arena-buffer intervals carry their *merged* lifetimes (aliases may have
  // extended last_use), so they are collected after packing; slab intervals
  // were recorded during the walk.  Deterministic (def, root) order.
  for (const ArenaBuffer& buf : plan.buffers_)
    plan.intervals_.push_back(IntervalBytes{buf.root, buf.def, buf.last_use,
                                            buf.elements * sizeof(float),
                                            PlacementKind::kArena});
  std::sort(plan.intervals_.begin(), plan.intervals_.end(),
            [](const IntervalBytes& a, const IntervalBytes& b) {
              if (a.def != b.def) return a.def < b.def;
              return a.root < b.root;
            });
  Ensures(plan.peak_arena_bytes() <= plan.naive_bytes_ +
                                         plan.buffers_.size() *
                                             kArenaAlignElements *
                                             sizeof(float),
          "arena exceeds the naive footprint beyond alignment slack");
  return plan;
}

}  // namespace mlpm::infer
