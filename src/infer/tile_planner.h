// Tile planner: fusable pipeline segments + cache-budgeted row bands.
//
// The whole-op executor runs node by node, so a conv/dw/elementwise chain
// round-trips every intermediate activation through memory at full size.
// The tile planner groups maximal chains of bounds-inference-capable nodes
// (graph/bounds.h) into *segments* that the executor runs crop-by-crop:
// each tile computes a band of the segment's output rows through the whole
// chain while the intermediates live in tile-sized slabs, sized by bounds
// inference and packed against a per-core cache budget (DESIGN.md §15).
//
// Segment formation (greedy, deterministic):
//   * a segment is a contiguous run of node indices [first, last] in the
//     graph's topological storage order;
//   * every node supports bounds inference and produces a rank-4, batch-1
//     NHWC tensor;
//   * each link's producer output is consumed only by the next node and is
//     not a graph output (so it never needs full materialization);
//   * a binary op's second operand always comes from outside the segment
//     (guaranteed by the single-consumer rule; re-checked here) and is read
//     fully-materialized at the crop's own coordinates;
//   * a segment is kept only if it has >= 2 nodes and at least one conv or
//     depthwise conv (otherwise tiling buys nothing).
//
// Tile-size selection back-propagates a candidate output band through the
// chain (rows_in = (rows_out - 1) * stride + effective_kernel, clamped) and
// takes the largest band whose summed slab bytes fit the cache budget,
// additionally capped so a segment still yields enough tiles to serve as
// the thread pool's parallel grain.  Results are bit-identical for every
// band size — the band only moves the compute/locality trade-off.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace mlpm::infer {

// Run-level tiling request (harness RunOptions::tiling, CLI --tile).
struct TileOptions {
  bool enabled = false;
  // Output rows per tile for every segment; -1 = auto (largest band whose
  // intermediate slabs fit `cache_bytes`).  Explicit values are clamped to
  // each segment's output height.  0 is invalid (lint RUN008).
  std::int64_t rows = -1;
  // Per-core cache budget the auto selector sizes slabs against.
  std::size_t cache_bytes = 512 * 1024;
};

// One fusable pipeline segment: nodes [first_node, last_node] inclusive.
struct TileSegment {
  std::int32_t first_node = 0;
  std::int32_t last_node = 0;
  // Outputs of nodes [first_node, last_node): materialized per tile as
  // row slabs instead of whole tensors.
  std::vector<graph::TensorId> interior;
  // Worst-case rows each interior slab holds for one tile, and its element
  // offset inside a worker's slab block (both parallel to `interior`).
  std::vector<std::int64_t> slab_rows;
  std::vector<std::size_t> slab_offsets;
  // One worker's slab block for this segment, in elements (aligned).
  std::size_t slab_elements = 0;
  std::int64_t tile_rows = 0;  // selected output-row band, >= 1
  std::int64_t out_rows = 0;   // H of the segment's final output

  [[nodiscard]] std::int64_t tile_count() const {
    return tile_rows > 0 ? (out_rows + tile_rows - 1) / tile_rows : 0;
  }
};

struct TilePlan {
  std::vector<TileSegment> segments;
  // By TensorId: true when the tensor lives in tile slabs, never the arena.
  std::vector<bool> interior;
  // By node index: segment index covering the node, or -1.
  std::vector<std::int32_t> segment_of_node;

  [[nodiscard]] bool empty() const { return segments.empty(); }
  // One worker's peak slab footprint: the largest segment block (segments
  // execute one at a time; concurrent workers each hold one block).
  [[nodiscard]] std::size_t slab_bytes() const;
};

// True if the node can run inside a tiled segment: bounds-inference-capable
// op over rank-4, batch-1 NHWC tensors.
[[nodiscard]] bool NodeIsTileable(const graph::Graph& g, const graph::Node& n);

// True if BuildTilePlan would find at least one segment (the RUN008 lint
// predicate: tiling requested on a graph with no fusable segment warns).
[[nodiscard]] bool HasFusableSegment(const graph::Graph& g);

// Plans segments and tile bands for `g`.  Returns an empty plan when
// `opt.enabled` is false or no fusable segment exists.  Deterministic: a
// pure function of the graph and options.
[[nodiscard]] TilePlan BuildTilePlan(const graph::Graph& g,
                                     const TileOptions& opt);

}  // namespace mlpm::infer
