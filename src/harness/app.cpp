#include "harness/app.h"

#include "harness/checker.h"
#include "harness/report.h"
#include "obs/aggregate.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mlpm::harness {

AppRunOutput RunMobileApp(const soc::ChipsetDesc& chipset,
                          models::SuiteVersion version, SuiteBundles& bundles,
                          const RunOptions& options) {
  AppRunOutput out;
  out.result = RunSubmission(chipset, version, bundles, options);
  out.report_text = FormatSubmission(out.result);

  // Profiling extras (DESIGN.md §11): per-op aggregates from the trace plus
  // the process metrics snapshot, appended to the results screen.
  if (options.profile || !options.trace_path.empty()) {
    const std::vector<obs::TraceEvent> events =
        obs::TraceRecorder::Global().Snapshot();
    const std::vector<obs::OpAggregate> host =
        obs::AggregateSpans(events, obs::Domain::kHost, "node");
    if (!host.empty())
      out.report_text +=
          "\n" + obs::RenderAggregateTable(host, "executor ops (host)");
    const std::vector<obs::OpAggregate> sim =
        obs::AggregateSpans(events, obs::Domain::kSim, "soc");
    if (!sim.empty())
      out.report_text +=
          "\n" + obs::RenderAggregateTable(sim, "simulated IP steps");
    out.report_text +=
        "\n" + obs::RenderMetricsTable(obs::MetricsRegistry::Global().Snap());
  }

  const CheckReport check =
      CheckSubmission(out.result, options.performance_settings);
  out.checker_text = FormatCheckReport(check);
  out.submission_valid = check.valid;
  return out;
}

}  // namespace mlpm::harness
