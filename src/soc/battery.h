// Battery-life estimation (paper App. E: "since mobile devices are
// battery-constrained, evaluating mobile AI's power draw is important").
//
// Simple energy accounting on top of the simulator's per-inference energy:
// how long a charge sustains a given inference workload, with the rest of
// the system drawing a baseline power.
#pragma once

#include "common/check.h"

namespace mlpm::soc {

struct BatterySpec {
  double capacity_wh = 15.0;       // ~4000 mAh at 3.85 V
  double baseline_power_w = 0.8;   // screen + radios + OS while benchmarking
};

struct WorkloadDraw {
  double energy_per_inference_j = 0.0;
  double inferences_per_second = 0.0;  // duty-cycled rate (0 = back-to-back)
  double latency_s = 0.0;              // needed when running back-to-back
};

// Average power of the workload: duty-cycled at the given rate, or
// continuous back-to-back execution when inferences_per_second == 0.
[[nodiscard]] double AveragePowerWatts(const WorkloadDraw& w);

// Hours of operation until the battery is empty under workload + baseline.
[[nodiscard]] double HoursOfOperation(const BatterySpec& battery,
                                      const WorkloadDraw& w);

// Total inferences served on one charge.
[[nodiscard]] double InferencesPerCharge(const BatterySpec& battery,
                                         const WorkloadDraw& w);

}  // namespace mlpm::soc
