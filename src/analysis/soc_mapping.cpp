// SoC-mapping feasibility (SOC001-SOC005).
//
// soc::Compile() throws CheckError at the first impossible placement; this
// pass predicts — before anything is compiled — every way an execution
// policy can go wrong on a chipset, including the paper's central runtime
// pathology: an op mapped to an accelerator whose declared capabilities
// cannot run it, which on a real phone silently falls back to the CPU and
// corrupts the score (§8, App. D: the up-to-7x "buggy delegate" effect).
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/passes.h"

namespace mlpm::analysis {
namespace {

using graph::OpClass;
using soc::AcceleratorDesc;
using soc::ExecutionPolicy;

bool CheckPolicyWellFormed(const MappingConfigView& m, DiagnosticEngine& de) {
  const ExecutionPolicy& p = *m.policy;
  bool ok = true;
  if (p.engines.empty()) {
    de.Report("SOC005", ConfigSource(m.label + ".engines"),
              "execution policy lists no engines");
    return false;
  }
  if (p.cpu_fallback_fraction < 0.0 || p.cpu_fallback_fraction > 1.0) {
    de.Report("SOC005", ConfigSource(m.label + ".cpu_fallback_fraction"),
              "cpu_fallback_fraction " +
                  std::to_string(p.cpu_fallback_fraction) +
                  " outside [0, 1]");
    ok = false;
  }
  if (!(p.toolchain_efficiency > 0.0) || p.toolchain_efficiency > 1.0) {
    de.Report("SOC005", ConfigSource(m.label + ".toolchain_efficiency"),
              "toolchain_efficiency " +
                  std::to_string(p.toolchain_efficiency) +
                  " outside (0, 1]");
    ok = false;
  }
  if (p.alternate_every < 0 || p.tail_nodes_on_secondary < 0 ||
      p.force_partition_every < 0) {
    de.Report("SOC005", ConfigSource(m.label),
              "negative partitioning parameter in execution policy");
    ok = false;
  }
  if ((p.alternate_every > 0 || p.tail_nodes_on_secondary > 0) &&
      p.engines.size() < 2) {
    de.Report("SOC005", ConfigSource(m.label + ".engines"),
              "policy alternates / runs a tail on a secondary engine but "
              "lists fewer than 2 engines");
    ok = false;
  }
  return ok;
}

}  // namespace

void CheckSocMapping(const graph::Graph& g, const MappingConfigView& m,
                     DiagnosticEngine& de) {
  if (m.chipset == nullptr || m.policy == nullptr) {
    de.Report("SOC005", ConfigSource(m.label),
              "mapping view is missing its chipset or policy");
    return;
  }
  if (!CheckPolicyWellFormed(m, de)) return;
  const ExecutionPolicy& p = *m.policy;

  // Resolve policy engines against the chipset.
  std::vector<const AcceleratorDesc*> engines;
  bool all_known = true;
  for (const std::string& name : p.engines) {
    if (!m.chipset->HasEngine(name)) {
      de.Report("SOC001", ConfigSource(m.label + ".engines"),
                "chipset '" + m.chipset->name + "' has no engine named '" +
                    name + "'");
      all_known = false;
      continue;
    }
    engines.push_back(&m.chipset->Engine(name));
  }
  if (!all_known) return;

  // Numerics support on every listed engine (Compile's throwing check,
  // reported per engine instead).
  for (const AcceleratorDesc* e : engines)
    if (!e->Supports(m.numerics))
      de.Report("SOC002", ConfigSource(m.label + ".engines"),
                "engine '" + e->name + "' does not support " +
                    std::string(ToString(m.numerics)) +
                    " (declared peak throughput is 0)");

  if (p.cpu_fallback_fraction > 0.0)
    de.Report("SOC004", ConfigSource(m.label + ".cpu_fallback_fraction"),
              "policy declares " +
                  std::to_string(p.cpu_fallback_fraction * 100.0) +
                  "% of ops unplaceable on the accelerator (op-coverage "
                  "holes; expect CPU-fallback distortion)");

  // Which engines can receive graph nodes under this policy?
  std::set<std::size_t> hosting;
  hosting.insert(0);  // primary
  if (p.alternate_every > 0)
    for (std::size_t i = 0; i < engines.size(); ++i) hosting.insert(i);
  if (p.tail_nodes_on_secondary > 0) hosting.insert(1);

  // The fallback-to-CPU hazard: an op class the engine declares itself
  // unable to run (efficiency 0), or a dilated convolution on an engine
  // whose dilated rate is 0.  One diagnostic per (engine, class) with the
  // affected-node count, so a 100-conv model doesn't emit 100 lines.
  struct Hazard {
    std::size_t count = 0;
    std::string first_node;
  };
  std::map<std::pair<std::size_t, OpClass>, Hazard> hazards;
  std::map<std::size_t, Hazard> dilated_hazards;
  for (const graph::Node& n : g.nodes()) {
    const OpClass cls = graph::ClassOf(n.op);
    int dilation = 1;
    if (const auto* a = std::get_if<graph::Conv2dAttrs>(&n.attrs))
      dilation = a->dilation;
    else if (const auto* a2 = std::get_if<graph::DepthwiseConv2dAttrs>(&n.attrs))
      dilation = a2->dilation;
    for (const std::size_t ei : hosting) {
      const AcceleratorDesc& e = *engines[ei];
      if (e.efficiency.For(cls) == 0.0) {
        Hazard& h = hazards[{ei, cls}];
        if (h.count++ == 0) h.first_node = n.name;
      } else if (dilation > 1 && e.efficiency.dilated_scale == 0.0) {
        Hazard& h = dilated_hazards[ei];
        if (h.count++ == 0) h.first_node = n.name;
      }
    }
  }
  for (const auto& [key, h] : hazards)
    de.Report("SOC003", ConfigSource(m.label + ".engines"),
              "engine '" + engines[key.first]->name + "' declares " +
                  std::string(ToString(key.second)) +
                  " unsupported (efficiency 0) but the policy maps " +
                  std::to_string(h.count) + " such node(s) to it (first: '" +
                  h.first_node + "'); on-device this falls back to the CPU");
  for (const auto& [ei, h] : dilated_hazards)
    de.Report("SOC003", ConfigSource(m.label + ".engines"),
              "engine '" + engines[ei]->name + "' cannot lower dilated "
                  "convolutions (dilated rate 0) but the policy maps " +
                  std::to_string(h.count) + " dilated conv(s) to it (first: '" +
                  h.first_node + "')");
}

}  // namespace mlpm::analysis
