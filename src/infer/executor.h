// Reference numeric executor.
//
// Executes a graph::Graph on the CPU with straightforward NHWC kernels.
// This is the stand-in for the paper's poorly-optimized reference TFLite
// implementation (§3.3): correct, simple, and the source of FP32 ground
// truth for the teacher-labelled datasets.
//
// Numerics modes (paper §5.1/§7.5):
//   kFp32 — plain float.
//   kFp16 — weights and every node output rounded through binary16.
//   kInt8 — weights fake-quantized symmetric (per-channel by default);
//           activations fake-quantized asymmetric using calibrated ranges.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "infer/kernels/registry.h"
#include "infer/memory_plan.h"
#include "infer/quant_params.h"
#include "infer/tensor.h"
#include "infer/tile_planner.h"
#include "infer/weights.h"

namespace mlpm {
class ThreadPool;
}

namespace mlpm::infer {

class Executor;

// Reusable execution state for the arena path: one contiguous activation
// arena sized by the executor's MemoryPlan, plus prebuilt view tensors for
// every planned activation.  Create one per thread (a context is not
// thread-safe) and reuse it across samples — every kernel fully overwrites
// its output range, so nothing is cleared between runs.  The executor must
// outlive the context.
class ExecutionContext {
 public:
  explicit ExecutionContext(const Executor& executor);

  [[nodiscard]] const MemoryPlan& plan() const { return *plan_; }
  [[nodiscard]] std::size_t arena_bytes() const {
    return arena_.size() * sizeof(float);
  }

 private:
  friend class Executor;
  const MemoryPlan* plan_;
  std::vector<float> arena_;
  // Arena views indexed by TensorId (default tensors for unplanned slots).
  std::vector<Tensor> slots_;
  // Graph inputs bound for the current Run, indexed by TensorId.
  std::vector<const Tensor*> external_;
};

enum class NumericsMode : std::uint8_t { kFp32, kFp16, kInt8 };

[[nodiscard]] constexpr std::string_view ToString(NumericsMode m) {
  switch (m) {
    case NumericsMode::kFp32: return "FP32";
    case NumericsMode::kFp16: return "FP16";
    case NumericsMode::kInt8: return "INT8";
  }
  return "?";
}

// Called after each node executes, with the node's output tensor.  Used by
// the quantizer to record activation ranges during calibration.
using NodeObserver =
    std::function<void(graph::TensorId, const Tensor&)>;

// How many node executions each dispatched microkernel family served, so
// profiles can show which microkernel ran each op (harness exports these as
// kernels.dispatch.* metrics alongside the resolved ISA name).
struct KernelDispatchCounts {
  std::uint64_t conv2d = 0;
  std::uint64_t depthwise_conv2d = 0;
  std::uint64_t fully_connected = 0;
};

class Executor {
 public:
  // `graph` and `weights` must outlive the executor.  For kInt8 mode,
  // `quant` must be non-null and is copied.  `isa` selects the SIMD kernel
  // table (kernels/registry.h): kAuto resolves to the best table the host
  // supports; an unavailable forced ISA falls back to scalar.  Depthwise
  // weights are repacked [C,KH,KW] -> [KH,KW,C] at construction so every
  // table reads channel-contiguous taps (a pure layout change — the scalar
  // table remains bit-identical to the pre-registry executor).
  //
  // `tiling` (tile_planner.h) opts the arena Run overload into fused tiled
  // segment execution: fusable conv/dw chains run crop-by-crop through
  // per-worker slabs instead of materializing full intermediates.  Tiled
  // execution is bit-identical to whole-op execution for every numerics
  // mode, kernel table, and thread count (DESIGN.md §15); the legacy
  // overloads always run whole-op and remain the oracle.
  Executor(const graph::Graph& graph, const WeightStore& weights,
           NumericsMode mode = NumericsMode::kFp32,
           const QuantParams* quant = nullptr,
           kernels::KernelIsa isa = kernels::KernelIsa::kAuto,
           const TileOptions& tiling = {});

  // Runs the graph; `inputs` must match graph.input_ids() in order and
  // shape.  Returns one tensor per graph output.
  [[nodiscard]] std::vector<Tensor> Run(std::span<const Tensor> inputs) const;

  // As Run, but invokes `observer` on every node output (pre-quantization).
  [[nodiscard]] std::vector<Tensor> Run(std::span<const Tensor> inputs,
                                        const NodeObserver& observer) const;

  // As above, additionally parallelizing kernels over independent output
  // elements on `pool` (may be null).  Results are bit-identical to the
  // serial overloads for any thread count: each output element is computed
  // by exactly one thread with the same per-element operation order, and no
  // cross-thread reductions exist.  The observer runs on the calling thread.
  [[nodiscard]] std::vector<Tensor> Run(std::span<const Tensor> inputs,
                                        const NodeObserver& observer,
                                        const ThreadPool* pool) const;

  // Arena execution: activations live in `ctx`'s preplanned arena instead
  // of per-node heap allocations; graph inputs are bound as read-only
  // views (never copied).  Bit-identical to the legacy overloads above for
  // every numerics mode and thread count.  `ctx` must have been created
  // from this executor; reuse it across calls on one thread.
  [[nodiscard]] std::vector<Tensor> Run(std::span<const Tensor> inputs,
                                        ExecutionContext& ctx,
                                        const NodeObserver& observer = {},
                                        const ThreadPool* pool = nullptr) const;

  [[nodiscard]] ExecutionContext CreateContext() const {
    return ExecutionContext(*this);
  }

  [[nodiscard]] NumericsMode mode() const { return mode_; }
  [[nodiscard]] const graph::Graph& graph() const { return graph_; }
  // The static activation plan (built once at construction; tile-aware
  // when the executor was constructed with tiling enabled).
  [[nodiscard]] const MemoryPlan& memory_plan() const { return plan_; }
  // The tile plan (empty when tiling is off or no segment qualified).
  [[nodiscard]] const TilePlan& tile_plan() const { return tile_plan_; }
  [[nodiscard]] bool tiled() const { return !tile_plan_.empty(); }

  // The resolved kernel ISA (never kAuto) and its table.
  [[nodiscard]] kernels::KernelIsa kernel_isa() const { return kernels_->isa; }
  [[nodiscard]] const kernels::KernelTable& kernels() const {
    return *kernels_;
  }
  // Snapshot of the per-kernel dispatch counters, accumulated across every
  // Run on this executor (thread-safe; counters are relaxed atomics).
  [[nodiscard]] KernelDispatchCounts dispatch_counts() const;

 private:
  [[nodiscard]] const Tensor& WeightFor(graph::TensorId id) const;

  const graph::Graph& graph_;
  NumericsMode mode_;
  QuantParams quant_;
  // Declared before plan_: the memory plan is built against the tile plan.
  TilePlan tile_plan_;
  MemoryPlan plan_;
  // Weights transformed once for the executor's numerics mode, indexed by
  // TensorId (nullptr for activation slots).
  std::vector<std::unique_ptr<Tensor>> prepared_weights_;
  // The runtime-selected kernel table (points at registry-owned statics).
  const kernels::KernelTable* kernels_;
  // Depthwise weights repacked to the table's channel-contiguous [KH,KW,C]
  // layout, indexed by weight TensorId (nullptr elsewhere).
  std::vector<std::unique_ptr<Tensor>> dw_packed_weights_;
  // conv2d / depthwise / fully-connected node executions, in that order.
  mutable std::array<std::atomic<std::uint64_t>, 3> dispatch_counts_{};
};

}  // namespace mlpm::infer
