// Result audit (paper §6.2): an independent party rebuilds the
// vendor-specific app, reproduces the run on a factory-reset device, and
// accepts the submission if its numbers land within 5% of the submitted
// scores.  Here the "independent re-run" is a fresh simulator + fresh
// functional executor driven by the same frozen inputs.
#pragma once

#include <string>
#include <vector>

#include "harness/run_session.h"

namespace mlpm::harness {

struct AuditFinding {
  std::string what;
  double submitted = 0.0;
  double reproduced = 0.0;
  double relative_delta = 0.0;
  bool within_tolerance = true;
};

struct AuditReport {
  bool accepted = true;
  std::vector<AuditFinding> findings;
};

// Re-runs the submission and compares latency / throughput / accuracy.
// `tolerance` is the acceptance band (the rules use 5%).
[[nodiscard]] AuditReport AuditSubmission(const soc::ChipsetDesc& chipset,
                                          const SubmissionResult& submitted,
                                          SuiteBundles& bundles,
                                          const RunOptions& options = {},
                                          double tolerance = 0.05);

}  // namespace mlpm::harness
