// Tests for graph validation, execution traces, and the true-integer
// convolution kernel.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "models/ssd.h"
#include "graph/validate.h"
#include "infer/executor.h"
#include "infer/int8_conv.h"
#include "infer/weights.h"
#include "models/mobilenet_edgetpu.h"
#include "models/zoo.h"
#include "backends/vendor_policy.h"
#include "soc/trace.h"

namespace mlpm {
namespace {

// ---- graph validation ----

TEST(Validate, WellFormedGraphsPass) {
  for (const auto& e : models::SuiteFor(models::SuiteVersion::kV1_0)) {
    const graph::Graph g = models::BuildReferenceGraph(
        e, models::SuiteVersion::kV1_0, models::ModelScale::kMini);
    const graph::ValidationReport r = graph::Validate(g);
    EXPECT_TRUE(r.valid) << e.id << ": "
                         << (r.problems.empty() ? "" : r.problems[0]);
  }
}

TEST(Validate, BuilderGraphHasNoDeadEnds) {
  graph::GraphBuilder b("t");
  graph::TensorId x = b.Input("in", {4});
  graph::TensorId used = b.Activate(x, graph::Activation::kRelu);
  b.MarkOutput(used);
  EXPECT_TRUE(graph::Validate(std::move(b).Build()).valid);
}

TEST(Validate, DetectsDeadEndActivation) {
  graph::GraphBuilder b("t");
  graph::TensorId x = b.Input("in", {4});
  (void)b.Activate(x, graph::Activation::kRelu);  // dangling branch
  b.MarkOutput(b.Activate(x, graph::Activation::kTanh));
  const graph::ValidationReport r = graph::Validate(std::move(b).Build());
  EXPECT_FALSE(r.valid);
  ASSERT_FALSE(r.problems.empty());
  EXPECT_NE(r.problems[0].find("never used"), std::string::npos);
}

TEST(Validate, MultiOutputGraphsPass) {
  // Detection models have two outputs; neither is a dead end.
  const models::DetectionModel m =
      models::BuildMobileDetSsd(models::ModelScale::kMini);
  EXPECT_TRUE(graph::Validate(m.graph).valid);
}

// ---- execution traces ----

TEST(Trace, EndTimeMatchesCompiledLatency) {
  const soc::ChipsetDesc chip = soc::Exynos990();
  const graph::Graph model = models::BuildReferenceGraph(
      models::SuiteFor(models::SuiteVersion::kV0_7)[2],
      models::SuiteVersion::kV0_7, models::ModelScale::kFull);
  const backends::SubmissionConfig sub = backends::GetSubmission(
      chip, models::TaskType::kImageSegmentation,
      models::SuiteVersion::kV0_7);
  const soc::CompiledModel cm =
      backends::CompileSubmission(chip, sub, model);
  const soc::ExecutionTrace trace = soc::TraceInference(cm, chip);
  EXPECT_NEAR(trace.TotalDuration(), cm.LatencySeconds(), 1e-9);
}

TEST(Trace, ExynosSegmentationShowsInterconnectTraffic) {
  // The 990 pathology must be visible in the trace: substantial time on
  // the interconnect lane.
  const soc::ChipsetDesc chip = soc::Exynos990();
  const graph::Graph model = models::BuildReferenceGraph(
      models::SuiteFor(models::SuiteVersion::kV0_7)[2],
      models::SuiteVersion::kV0_7, models::ModelScale::kFull);
  const backends::SubmissionConfig sub = backends::GetSubmission(
      chip, models::TaskType::kImageSegmentation,
      models::SuiteVersion::kV0_7);
  const soc::ExecutionTrace trace =
      soc::TraceInference(backends::CompileSubmission(chip, sub, model),
                          chip);
  double interconnect_s = 0.0;
  for (const soc::TraceEvent& e : trace.events())
    if (e.lane == "interconnect") interconnect_s += e.duration_s;
  EXPECT_GT(interconnect_s, 0.5 * trace.TotalDuration());
}

TEST(Trace, EventsAreSequentialAndNonOverlapping) {
  const soc::ChipsetDesc chip = soc::Dimensity1100();
  const graph::Graph model =
      models::BuildMobileNetEdgeTpu(models::ModelScale::kFull);
  const backends::SubmissionConfig sub = backends::GetSubmission(
      chip, models::TaskType::kImageClassification,
      models::SuiteVersion::kV1_0);
  const soc::ExecutionTrace trace =
      soc::TraceInference(backends::CompileSubmission(chip, sub, model),
                          chip, 1.0, 0.5);
  double cursor = 0.5;
  for (const soc::TraceEvent& e : trace.events()) {
    EXPECT_GE(e.begin_s, cursor - 1e-12);
    cursor = e.begin_s + e.duration_s;
  }
}

TEST(Trace, ChromeJsonIsWellFormedish) {
  soc::ExecutionTrace t;
  t.Add(soc::TraceEvent{"work", "npu", 0.0, 1e-3});
  t.Add(soc::TraceEvent{"copy", "interconnect", 1e-3, 5e-4});
  const std::string json = t.ToChromeJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"npu\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Trace, ThrottleStretchesComputeOnly) {
  const soc::ChipsetDesc chip = soc::Dimensity1100();
  const graph::Graph model =
      models::BuildMobileNetEdgeTpu(models::ModelScale::kFull);
  const backends::SubmissionConfig sub = backends::GetSubmission(
      chip, models::TaskType::kImageClassification,
      models::SuiteVersion::kV1_0);
  const soc::CompiledModel cm =
      backends::CompileSubmission(chip, sub, model);
  const double full = soc::TraceInference(cm, chip, 1.0).TotalDuration();
  const double throttled =
      soc::TraceInference(cm, chip, 0.5).TotalDuration();
  EXPECT_GT(throttled, full * 1.5);
  EXPECT_NEAR(throttled, cm.LatencySeconds(0.5), 1e-9);
}

// ---- true-integer convolution ----

infer::Tensor RandomTensor(graph::TensorShape shape, std::uint64_t seed,
                           float lo = -1.0f, float hi = 1.0f) {
  infer::Tensor t(std::move(shape));
  Rng rng(seed);
  for (auto& v : t.values())
    v = static_cast<float>(rng.NextUniform(lo, hi));
  return t;
}

// Float reference conv via the executor.
infer::Tensor FloatConv(const infer::Tensor& input,
                        const infer::Tensor& weights,
                        const infer::Tensor& bias, int stride,
                        graph::Padding pad) {
  graph::GraphBuilder b("ref");
  graph::TensorId x = b.Input("in", input.shape());
  x = b.Conv2d(x, weights.shape().dim(0),
               static_cast<int>(weights.shape().dim(1)), stride,
               graph::Activation::kNone, pad, 1, "c");
  b.MarkOutput(x);
  const graph::Graph g = std::move(b).Build();
  infer::WeightStore w;
  w.Put("c/w", weights);
  w.Put("c/b", bias);
  const infer::Executor exec(g, w);
  const std::vector<infer::Tensor> in{input};
  return exec.Run(in)[0];
}

struct ConvCase {
  std::int64_t h, c, oc;
  int kernel, stride;
  graph::Padding pad;
};

class Int8ConvEquivalence : public ::testing::TestWithParam<ConvCase> {};

TEST_P(Int8ConvEquivalence, MatchesFloatWithinQuantizationError) {
  const ConvCase& p = GetParam();
  const infer::Tensor input =
      RandomTensor(graph::TensorShape({1, p.h, p.h, p.c}), 11);
  const infer::Tensor weights = RandomTensor(
      graph::TensorShape({p.oc, p.kernel, p.kernel, p.c}), 13, -0.5f, 0.5f);
  const infer::Tensor bias =
      RandomTensor(graph::TensorShape({p.oc}), 17, -0.1f, 0.1f);

  const infer::QuantizationParams in_q =
      infer::ChooseQuantParams(-1.0f, 1.0f);
  const infer::QuantizationParams w_q =
      infer::ChooseQuantParams(-0.5f, 0.5f);
  const infer::Tensor got = infer::ConvInt8NHWC(
      input, weights, bias, p.stride, p.pad, in_q, w_q);
  const infer::Tensor want =
      FloatConv(input, weights, bias, p.stride, p.pad);
  ASSERT_EQ(got.shape(), want.shape());

  // Error budget: per-MAC quantization noise accumulates ~sqrt(K).
  const double k =
      static_cast<double>(p.kernel) * p.kernel * static_cast<double>(p.c);
  const double budget = 3.0 * std::sqrt(k) * in_q.scale * w_q.scale * 128 +
                        0.02;
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_NEAR(got.data()[i], want.data()[i], budget);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Int8ConvEquivalence,
    ::testing::Values(ConvCase{6, 3, 4, 3, 1, graph::Padding::kSame},
                      ConvCase{6, 3, 4, 3, 2, graph::Padding::kSame},
                      ConvCase{8, 4, 2, 1, 1, graph::Padding::kSame},
                      ConvCase{8, 2, 3, 3, 1, graph::Padding::kValid},
                      ConvCase{9, 2, 3, 3, 2, graph::Padding::kValid},
                      ConvCase{5, 8, 8, 5, 1, graph::Padding::kSame}));

TEST(Int8Conv, QuantParamChoiceCoversRangeWithExactZero) {
  const infer::QuantizationParams p =
      infer::ChooseQuantParams(-0.7f, 2.1f);
  EXPECT_GT(p.scale, 0.0f);
  // zero representable exactly
  const float zero_back =
      (static_cast<float>(p.zero_point) - p.zero_point) * p.scale;
  EXPECT_EQ(zero_back, 0.0f);
  EXPECT_GE(p.zero_point, 0);
  EXPECT_LE(p.zero_point, 255);
}

TEST(Int8Conv, DegenerateRangeSafe) {
  const infer::QuantizationParams p = infer::ChooseQuantParams(0.0f, 0.0f);
  EXPECT_EQ(p.scale, 1.0f);
  EXPECT_EQ(p.zero_point, 0);
}

TEST(Int8Conv, RejectsChannelMismatch) {
  const infer::Tensor input =
      RandomTensor(graph::TensorShape({1, 4, 4, 3}), 1);
  const infer::Tensor weights =
      RandomTensor(graph::TensorShape({2, 3, 3, 5}), 2);
  const infer::Tensor bias = RandomTensor(graph::TensorShape({2}), 3);
  EXPECT_THROW(
      (void)infer::ConvInt8NHWC(input, weights, bias, 1,
                                graph::Padding::kSame, {}, {}),
      CheckError);
}

}  // namespace
}  // namespace mlpm
