#include "datasets/superres_dataset.h"

#include <algorithm>

#include "datasets/preprocess.h"
#include "datasets/synthetic_image.h"
#include "metrics/psnr.h"

namespace mlpm::datasets {
namespace {
constexpr std::uint64_t kValidationSpace = 0;
constexpr std::uint64_t kCalibrationSpace = 1'000'000;
}  // namespace

SuperResDataset::SuperResDataset(SuperResDatasetConfig config)
    : cfg_(config) {
  Expects(cfg_.num_samples > 0, "dataset must be non-empty");
  Expects(cfg_.upscale == 2, "only 2x is implemented");
}

infer::Tensor SuperResDataset::HighResFor(std::uint64_t name_space,
                                          std::size_t index) const {
  SyntheticImageConfig img;
  img.height = img.width = cfg_.lr_size * cfg_.upscale;
  img.control_grid = 6;
  img.noise_level = 0.02f;
  return GenerateImage(img, cfg_.seed + name_space,
                       static_cast<std::uint64_t>(index));
}

std::vector<infer::Tensor> SuperResDataset::InputsFor(
    std::size_t index) const {
  Expects(index < cfg_.num_samples, "sample index out of range");
  std::vector<infer::Tensor> v;
  v.push_back(ResizeBilinear(HighResFor(kValidationSpace, index),
                             cfg_.lr_size, cfg_.lr_size));
  return v;
}

std::vector<infer::Tensor> SuperResDataset::CalibrationInputsFor(
    std::size_t index) const {
  std::vector<infer::Tensor> v;
  v.push_back(ResizeBilinear(HighResFor(kCalibrationSpace, index),
                             cfg_.lr_size, cfg_.lr_size));
  return v;
}

double SuperResDataset::MeanPsnrDb(
    std::span<const std::vector<infer::Tensor>> outputs) const {
  Expects(outputs.size() == cfg_.num_samples,
          "output count does not cover the dataset");
  double sum = 0.0;
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    Expects(!outputs[i].empty(), "missing model output");
    const double psnr =
        metrics::Psnr(outputs[i][0], HighResFor(kValidationSpace, i));
    sum += std::min(psnr, 60.0);  // cap infinities for the mean
  }
  return sum / static_cast<double>(outputs.size());
}

double SuperResDataset::ScoreOutputs(
    std::span<const std::vector<infer::Tensor>> outputs) const {
  return std::clamp(MeanPsnrDb(outputs) / 50.0, 0.0, 1.0);
}

}  // namespace mlpm::datasets
