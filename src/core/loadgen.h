// The Load Generator (paper §4).
//
// Creates inference requests in the scenario's pattern, measures latency /
// throughput against the test clock, selects samples with the official
// seeded RNG (precluding data-set-specific optimizations), and logs every
// issue/completion for post-run validation.  Submitters may not modify this
// component — nothing in it is backend- or vendor-specific.
#pragma once

#include <functional>
#include <vector>

#include "core/logging.h"
#include "core/query.h"
#include "core/settings.h"

namespace mlpm::loadgen {

struct TestResult {
  TestScenario scenario = TestScenario::kSingleStream;
  TestMode mode = TestMode::kPerformanceOnly;

  // Performance outcomes.
  std::vector<double> latencies_s;   // per-sample latency (seconds)
  double duration_s = 0.0;           // first issue -> last completion
  std::size_t sample_count = 0;
  double percentile_latency_s = 0.0;  // at settings.latency_percentile
  double mean_latency_s = 0.0;
  double throughput_sps = 0.0;        // samples per second

  // Run-rule validity (checked again, independently, by the submission
  // checker from the raw log).
  bool min_duration_met = false;
  bool min_query_count_met = false;
  // Server scenario: percentile latency within the latency bound.
  bool latency_bound_met = false;

  // Accuracy mode: model outputs per dataset sample index, for the
  // harness to score against the data set.
  std::vector<std::vector<infer::Tensor>> accuracy_outputs;

  TestLog log;
};

// Runs one test.  The clock must be the same one the SUT uses to report
// completions (wall clock for functional backends, the simulator's virtual
// clock otherwise).
[[nodiscard]] TestResult RunTest(SystemUnderTest& sut,
                                 QuerySampleLibrary& qsl,
                                 const TestSettings& settings, Clock& clock);

// Binary-searches the highest server QPS whose run still meets the latency
// bound.  `run_at_qps` must execute a fresh server-scenario test at the
// given rate (fresh SUT + clock per probe) and return its result.
// Returns 0 if even `lo` fails.
[[nodiscard]] double FindMaxServerQps(
    const std::function<TestResult(double qps)>& run_at_qps, double lo,
    double hi, int iterations = 10);

}  // namespace mlpm::loadgen
