// Synthetic ADE20K stand-in for the semantic-segmentation task.
//
// Ground truth per pixel is the FP32 teacher's argmax with a seeded fraction
// of pixels flipped to random classes (and a fraction relabelled to the
// catch-all/ignore class, mirroring the paper's 32-class training trick).
#pragma once

#include <cstdint>
#include <vector>

#include "datasets/task_dataset.h"
#include "graph/graph.h"
#include "infer/weights.h"
#include "metrics/miou.h"

namespace mlpm::datasets {

struct SegmentationDatasetConfig {
  std::size_t num_samples = 32;
  std::int64_t input_size = 32;
  std::int64_t num_classes = 8;
  double pixel_flip_rate = 0.03;  // pixels flipped to a random other class
  double ignore_rate = 0.05;      // pixels assigned the catch-all class
  // Pixels whose teacher top1-top2 logit gap is below this are relabelled
  // to the catch-all (ignored) class — the synthetic analogue of the
  // paper's trick of discarding the classes the network is bad at.
  double min_pixel_margin = 0.3;
  std::uint64_t seed = 0xADE20Aull;
};

class SegmentationDataset final : public TaskDataset {
 public:
  SegmentationDataset(const graph::Graph& model,
                      const infer::WeightStore& weights,
                      SegmentationDatasetConfig config);

  [[nodiscard]] std::size_t size() const override { return labels_.size(); }
  [[nodiscard]] std::vector<infer::Tensor> InputsFor(
      std::size_t index) const override;
  [[nodiscard]] double ScoreOutputs(
      std::span<const std::vector<infer::Tensor>> outputs) const override;
  [[nodiscard]] std::string_view metric_name() const override {
    return "mIoU";
  }
  [[nodiscard]] std::vector<infer::Tensor> CalibrationInputsFor(
      std::size_t index) const override;

  [[nodiscard]] const std::vector<int>& LabelMapFor(std::size_t index) const;

 private:
  [[nodiscard]] infer::Tensor MakeInput(std::uint64_t name_space,
                                        std::size_t index) const;

  SegmentationDatasetConfig cfg_;
  std::vector<std::vector<int>> labels_;  // per-sample pixel label maps
};

}  // namespace mlpm::datasets
