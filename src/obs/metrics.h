// Process-wide metrics: monotonic counters and gauges maintained by the
// LoadGen, the executor, the SoC simulator and the thread pool, snapshotted
// into the run report (DESIGN.md §11).  Unlike tracing, metrics are always
// on: every update is a short critical section on a name-keyed map, and the
// update sites are per-test or per-context, never per-element.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mlpm::obs {

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] static MetricsRegistry& Global();

  // Monotonic counter (creates at zero on first use).
  void Increment(std::string_view name, std::uint64_t delta = 1);
  // Last-write-wins gauge, and a variant that only ever raises the value
  // (peak tracking, e.g. the largest activation arena seen).
  void SetGauge(std::string_view name, double value);
  void MaxGauge(std::string_view name, double value);

  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  // Returns 0.0 for a gauge never set (report rendering skips absent ones).
  [[nodiscard]] double gauge(std::string_view name) const;

  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;  // by name
    std::vector<std::pair<std::string, double>> gauges;           // by name
  };
  [[nodiscard]] Snapshot Snap() const;

  // Drops every counter and gauge (tests; the harness never resets).
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
};

// Two-column text table of a snapshot, empty string when nothing was
// recorded.  Gauges render with their natural precision.
[[nodiscard]] std::string RenderMetricsTable(
    const MetricsRegistry::Snapshot& snapshot);

}  // namespace mlpm::obs
