// Ablation — DVFS governor model: idealized linear throttling vs a
// realistic stepped frequency ladder, under sustained segmentation load.
// The stepped governor over-throttles (it rounds the thermal excursion up
// to the next trip point), so run-rule compliance (cooldown, ambient
// temperature) matters even more on real devices than the linear model
// suggests.
#include <cstdio>

#include "backends/vendor_policy.h"
#include "common/table.h"
#include "models/zoo.h"
#include "soc/simulator.h"

namespace {

using namespace mlpm;

struct Sustained {
  double first_ms, last_ms, temp_c;
};

Sustained Run(soc::GovernorMode mode, int steps) {
  soc::ChipsetDesc chip = soc::Snapdragon888();
  chip.thermal.governor = mode;
  chip.thermal.governor_steps = steps;
  const models::BenchmarkEntry seg =
      models::SuiteFor(models::SuiteVersion::kV1_0)[2];
  const graph::Graph model = models::BuildReferenceGraph(
      seg, models::SuiteVersion::kV1_0, models::ModelScale::kFull);
  const backends::SubmissionConfig sub = backends::GetSubmission(
      chip, seg.task, models::SuiteVersion::kV1_0);
  const soc::CompiledModel plan =
      backends::CompileSubmission(chip, sub, model);

  soc::SocSimulator sim(chip);
  Sustained out{};
  out.first_ms = sim.RunInference(plan).latency_s * 1e3;
  double last = out.first_ms;
  for (int i = 0; i < 12000; ++i)
    last = sim.RunInference(plan).latency_s * 1e3;
  out.last_ms = last;
  out.temp_c = sim.thermal().temperature_c();
  return out;
}

}  // namespace

int main() {
  TextTable t(
      "governor ablation — 12k sustained segmentation inferences, SD888");
  t.SetHeader({"Governor", "first latency", "steady latency", "degradation",
               "die temp"});
  struct Config {
    const char* name;
    soc::GovernorMode mode;
    int steps;
  };
  for (const Config& c :
       {Config{"linear (idealized)", soc::GovernorMode::kLinear, 0},
        Config{"stepped, 8 levels", soc::GovernorMode::kStepped, 8},
        Config{"stepped, 4 levels", soc::GovernorMode::kStepped, 4},
        Config{"stepped, 2 levels", soc::GovernorMode::kStepped, 2}}) {
    const Sustained r = Run(c.mode, c.steps == 0 ? 4 : c.steps);
    t.AddRow({c.name, FormatDouble(r.first_ms, 2) + " ms",
              FormatDouble(r.last_ms, 2) + " ms",
              FormatPercent(r.last_ms / r.first_ms - 1.0, 1),
              FormatDouble(r.temp_c, 1) + " C"});
  }
  std::printf("%s", t.Render().c_str());
  std::printf(
      "\nstepped governors overshoot the linear ideal: the thermal\n"
      "equilibrium locks onto a discrete trip point, costing extra steady-\n"
      "state latency regardless of ladder granularity for this load — one\n"
      "more reason the run rules isolate benchmarking from thermal state\n"
      "(§6.1).\n");
  return 0;
}
