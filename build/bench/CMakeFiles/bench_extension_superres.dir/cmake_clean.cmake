file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_superres.dir/bench_extension_superres.cpp.o"
  "CMakeFiles/bench_extension_superres.dir/bench_extension_superres.cpp.o.d"
  "bench_extension_superres"
  "bench_extension_superres.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_superres.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
