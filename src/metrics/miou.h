// Mean intersection-over-union (semantic-segmentation task metric).
//
// Per the paper (§3.2), the model predicts 32 classes and the mIoU counts
// only pixels whose ground-truth label is one of the 31 frequent classes —
// label 31 (the catch-all) is treated as "ignore" for scoring.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mlpm::metrics {

// Streaming confusion-matrix accumulator over pixel label maps.
class MIoUAccumulator {
 public:
  explicit MIoUAccumulator(int num_classes, int ignore_label = -1);

  // Adds one image's per-pixel predictions/labels (same length).
  void Add(std::span<const int> predictions, std::span<const int> labels);

  // Mean IoU over classes that appear (union > 0), skipping the ignore
  // label.  Returns 0 if nothing was accumulated.
  [[nodiscard]] double MeanIoU() const;

  // Per-class IoU (NaN-free: classes with empty union report 0 and are
  // excluded from the mean).
  [[nodiscard]] std::vector<double> PerClassIoU() const;

 private:
  int num_classes_;
  int ignore_label_;
  std::vector<std::int64_t> confusion_;  // num_classes x num_classes
};

}  // namespace mlpm::metrics
