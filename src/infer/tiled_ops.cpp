#include "infer/tiled_ops.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/fp16.h"
#include "graph/bounds.h"
#include "infer/op_math.h"

namespace mlpm::infer {
namespace {

using graph::Activation;
using graph::OpType;

}  // namespace

RowBand FullBand(const Tensor& t) {
  const graph::TensorShape& s = t.shape();
  Expects(s.rank() == 4 && s.batch() == 1,
          "row bands require rank-4 batch-1 tensors");
  return RowBand{t.data(), 0, s.height(), s.height(), s.width(),
                 s.channels()};
}

void RunConv2dRows(const graph::Conv2dAttrs& a, const RowBand& in,
                   const Tensor& w, const Tensor& bias,
                   const MutableRowBand& out,
                   const kernels::KernelTable& kt) {
  const std::int64_t IH = in.height, IW = in.width, IC = in.channels;
  const std::int64_t OW = out.width, OC = out.channels;
  const std::int64_t ph = graph::SamePadBegin(IH, out.height, a.kernel_h,
                                              a.stride, a.dilation, a.padding);
  const std::int64_t pw = graph::SamePadBegin(IW, out.width, a.kernel_w,
                                              a.stride, a.dilation, a.padding);
  const float* __restrict wp = w.data();
  const float* __restrict bp = bias.data();
  const float* __restrict ip = in.data;
  float* __restrict op = out.data;

  // Global output rows; taps are skipped against the *logical* bounds
  // [0, IH) exactly as the whole-op kernel skips them, and surviving taps
  // are guaranteed in-slab by bounds inference.
  for (std::int64_t oh = out.origin; oh < out.origin + out.rows; ++oh) {
    for (std::int64_t ow = 0; ow < OW; ++ow) {
      float* out_px = op + ((oh - out.origin) * OW + ow) * OC;
      std::int64_t oc = 0;
      for (; oc + 4 <= OC; oc += 4) {
        float acc[4] = {bp[oc], bp[oc + 1], bp[oc + 2], bp[oc + 3]};
        for (int kh = 0; kh < a.kernel_h; ++kh) {
          const std::int64_t ih =
              oh * a.stride - ph + static_cast<std::int64_t>(kh) * a.dilation;
          if (ih < 0 || ih >= IH) continue;
          for (int kw = 0; kw < a.kernel_w; ++kw) {
            const std::int64_t iw =
                ow * a.stride - pw + static_cast<std::int64_t>(kw) *
                                         a.dilation;
            if (iw < 0 || iw >= IW) continue;
            const float* in_px = ip + ((ih - in.origin) * IW + iw) * IC;
            const std::int64_t woff =
                (static_cast<std::int64_t>(kh) * a.kernel_w + kw) * IC;
            const std::int64_t wstride =
                static_cast<std::int64_t>(a.kernel_h) * a.kernel_w * IC;
            const float* w0 = wp + oc * wstride + woff;
            kt.dot4_f32(in_px, w0, w0 + wstride, w0 + 2 * wstride,
                        w0 + 3 * wstride, IC, acc);
          }
        }
        out_px[oc] = ApplyActivation(acc[0], a.activation);
        out_px[oc + 1] = ApplyActivation(acc[1], a.activation);
        out_px[oc + 2] = ApplyActivation(acc[2], a.activation);
        out_px[oc + 3] = ApplyActivation(acc[3], a.activation);
      }
      for (; oc < OC; ++oc) {
        float acc = bp[oc];
        for (int kh = 0; kh < a.kernel_h; ++kh) {
          const std::int64_t ih =
              oh * a.stride - ph + static_cast<std::int64_t>(kh) * a.dilation;
          if (ih < 0 || ih >= IH) continue;
          for (int kw = 0; kw < a.kernel_w; ++kw) {
            const std::int64_t iw =
                ow * a.stride - pw + static_cast<std::int64_t>(kw) *
                                         a.dilation;
            if (iw < 0 || iw >= IW) continue;
            const float* in_px = ip + ((ih - in.origin) * IW + iw) * IC;
            const float* w_px =
                wp + ((oc * a.kernel_h + kh) * a.kernel_w + kw) * IC;
            for (std::int64_t ic = 0; ic < IC; ++ic)
              acc += in_px[ic] * w_px[ic];
          }
        }
        out_px[oc] = ApplyActivation(acc, a.activation);
      }
    }
  }
}

void RunDepthwiseConv2dRows(const graph::DepthwiseConv2dAttrs& a,
                            const RowBand& in, const Tensor& w,
                            const Tensor& bias, const MutableRowBand& out,
                            const kernels::KernelTable& kt) {
  const std::int64_t IH = in.height, IW = in.width, C = in.channels;
  const std::int64_t OW = out.width;
  const std::int64_t ph = graph::SamePadBegin(IH, out.height, a.kernel_h,
                                              a.stride, a.dilation, a.padding);
  const std::int64_t pw = graph::SamePadBegin(IW, out.width, a.kernel_w,
                                              a.stride, a.dilation, a.padding);
  const float* __restrict wp = w.data();  // [KH, KW, C]
  const float* __restrict bp = bias.data();
  const float* __restrict ip = in.data;
  float* __restrict op = out.data;

  std::vector<float> acc(static_cast<std::size_t>(C));
  for (std::int64_t oh = out.origin; oh < out.origin + out.rows; ++oh) {
    for (std::int64_t ow = 0; ow < OW; ++ow) {
      std::copy_n(bp, C, acc.data());
      for (int kh = 0; kh < a.kernel_h; ++kh) {
        const std::int64_t ih =
            oh * a.stride - ph + static_cast<std::int64_t>(kh) * a.dilation;
        if (ih < 0 || ih >= IH) continue;
        for (int kw = 0; kw < a.kernel_w; ++kw) {
          const std::int64_t iw =
              ow * a.stride - pw + static_cast<std::int64_t>(kw) * a.dilation;
          if (iw < 0 || iw >= IW) continue;
          kt.dw_madd_f32(
              ip + ((ih - in.origin) * IW + iw) * C,
              wp + (static_cast<std::int64_t>(kh) * a.kernel_w + kw) * C,
              acc.data(), C);
        }
      }
      float* out_px = op + ((oh - out.origin) * OW + ow) * C;
      for (std::int64_t c = 0; c < C; ++c)
        out_px[c] =
            ApplyActivation(acc[static_cast<std::size_t>(c)], a.activation);
    }
  }
}

void RunPoolRows(OpType op, const graph::PoolAttrs& a, const RowBand& in,
                 const MutableRowBand& out) {
  const std::int64_t IH = in.height, IW = in.width, C = in.channels;
  const std::int64_t OW = out.width;
  const float* ip = in.data;
  float* opd = out.data;
  const bool is_max = op == OpType::kMaxPool;
  for (std::int64_t oh = out.origin; oh < out.origin + out.rows; ++oh) {
    for (std::int64_t ow = 0; ow < OW; ++ow) {
      for (std::int64_t c = 0; c < C; ++c) {
        float acc = is_max ? -std::numeric_limits<float>::infinity() : 0.0f;
        int count = 0;
        for (int kh = 0; kh < a.kernel; ++kh) {
          const std::int64_t ih = oh * a.stride + kh;
          if (ih >= IH) continue;
          for (int kw = 0; kw < a.kernel; ++kw) {
            const std::int64_t iw = ow * a.stride + kw;
            if (iw >= IW) continue;
            const float v = ip[((ih - in.origin) * IW + iw) * C + c];
            if (is_max)
              acc = std::max(acc, v);
            else
              acc += v;
            ++count;
          }
        }
        opd[((oh - out.origin) * OW + ow) * C + c] =
            is_max ? acc : acc / static_cast<float>(std::max(count, 1));
      }
    }
  }
}

void RunBinaryRows(OpType op, const RowBand& x, const RowBand& y,
                   const MutableRowBand& out) {
  const std::int64_t row_elems = out.width * out.channels;
  const bool is_add = op == OpType::kAdd;
  for (std::int64_t r = out.origin; r < out.origin + out.rows; ++r) {
    const float* xr = x.data + (r - x.origin) * row_elems;
    const float* yr = y.data + (r - y.origin) * row_elems;
    float* orow = out.data + (r - out.origin) * row_elems;
    if (is_add) {
      for (std::int64_t j = 0; j < row_elems; ++j) orow[j] = xr[j] + yr[j];
    } else {
      for (std::int64_t j = 0; j < row_elems; ++j) orow[j] = xr[j] * yr[j];
    }
  }
}

void RunActivationRows(Activation act, const RowBand& in,
                       const MutableRowBand& out) {
  const std::int64_t row_elems = out.width * out.channels;
  for (std::int64_t r = out.origin; r < out.origin + out.rows; ++r) {
    const float* xr = in.data + (r - in.origin) * row_elems;
    float* orow = out.data + (r - out.origin) * row_elems;
    for (std::int64_t j = 0; j < row_elems; ++j)
      orow[j] = ApplyActivation(xr[j], act);
  }
}

void RunResizeBilinearRows(const RowBand& in, const MutableRowBand& out) {
  const std::int64_t IH = in.height, IW = in.width, C = in.channels;
  const std::int64_t OH = out.height, OW = out.width;
  const double sh = static_cast<double>(IH) / static_cast<double>(OH);
  const double sw = static_cast<double>(IW) / static_cast<double>(OW);
  const float* ip = in.data;
  float* op = out.data;
  for (std::int64_t oh = out.origin; oh < out.origin + out.rows; ++oh) {
    // Half-pixel centers, clamped to the valid range; taps land inside the
    // slab because bounds inference materialized [y0(first), y1(last)].
    const double fy =
        std::max(0.0, (static_cast<double>(oh) + 0.5) * sh - 0.5);
    const auto y0 =
        std::min<std::int64_t>(static_cast<std::int64_t>(fy), IH - 1);
    const auto y1 = std::min<std::int64_t>(y0 + 1, IH - 1);
    const float wy = static_cast<float>(fy - static_cast<double>(y0));
    for (std::int64_t ow = 0; ow < OW; ++ow) {
      const double fx =
          std::max(0.0, (static_cast<double>(ow) + 0.5) * sw - 0.5);
      const auto x0 =
          std::min<std::int64_t>(static_cast<std::int64_t>(fx), IW - 1);
      const auto x1 = std::min<std::int64_t>(x0 + 1, IW - 1);
      const float wx = static_cast<float>(fx - static_cast<double>(x0));
      for (std::int64_t c = 0; c < C; ++c) {
        const auto px = [&](std::int64_t y, std::int64_t x) {
          return ip[((y - in.origin) * IW + x) * C + c];
        };
        const float top = px(y0, x0) * (1 - wx) + px(y0, x1) * wx;
        const float bot = px(y1, x0) * (1 - wx) + px(y1, x1) * wx;
        op[((oh - out.origin) * OW + ow) * C + c] =
            top * (1 - wy) + bot * wy;
      }
    }
  }
}

void ApplyNumericsRows(NumericsMode mode, const QuantParams& quant,
                       graph::TensorId output_id, const MutableRowBand& out) {
  const std::int64_t n = out.rows * out.width * out.channels;
  switch (mode) {
    case NumericsMode::kFp32:
      break;
    case NumericsMode::kFp16:
      for (std::int64_t i = 0; i < n; ++i)
        out.data[i] = RoundToHalf(out.data[i]);
      break;
    case NumericsMode::kInt8: {
      const auto it = quant.activation_ranges.find(output_id);
      if (it != quant.activation_ranges.end())
        for (std::int64_t i = 0; i < n; ++i)
          out.data[i] =
              FakeQuantActivation(out.data[i], it->second,
                                  quant.activation_bits);
      break;
    }
  }
}

}  // namespace mlpm::infer
