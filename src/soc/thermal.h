// Lumped thermal model with DVFS-style throttling (paper §6.1: ML models
// are computationally heavy and trigger run-time thermal throttling; the
// run rules therefore mandate room temperature and cooldown intervals).
//
// Single thermal mass: dT/dt = P/C - (T - T_ambient)/(R*C).  Above the
// throttle-start temperature the effective clock scales down linearly to
// `min_throttle_factor` at the hard-limit temperature.
#pragma once

#include <cstdint>

namespace mlpm::soc {

// How the DVFS governor translates die temperature into clock scaling.
//   kLinear  — idealized proportional controller (smooth factor).
//   kStepped — realistic discrete frequency ladder: the governor drops to
//              the next operating point when temperature crosses evenly
//              spaced trip points inside the throttle band.
enum class GovernorMode : std::uint8_t { kLinear, kStepped };

struct ThermalParams {
  double ambient_c = 22.0;          // run rules: 20-25 degC room temperature
  double capacitance_j_per_c = 8.0;  // thermal mass
  double resistance_c_per_w = 9.0;   // junction-to-ambient
  double throttle_start_c = 36.0;
  double throttle_limit_c = 50.0;
  double min_throttle_factor = 0.45;
  GovernorMode governor = GovernorMode::kLinear;
  int governor_steps = 4;  // frequency ladder size for kStepped
};

class ThermalModel {
 public:
  explicit ThermalModel(ThermalParams params);

  // Advance by `dt` seconds with `power_w` being dissipated.
  void Step(double power_w, double dt_s);

  // Idle cooling for `dt` seconds (cooldown interval between tests).
  void Cool(double dt_s) { Step(0.0, dt_s); }

  [[nodiscard]] double temperature_c() const { return temp_c_; }

  // Effective clock multiplier in (0, 1]; 1 below throttle_start.
  [[nodiscard]] double ThrottleFactor() const;

  // Pins the die temperature (thermal-emergency injection; the fault model
  // uses this to jump straight to the hard limit).
  void ForceTemperature(double temp_c) { temp_c_ = temp_c; }
  [[nodiscard]] double throttle_limit_c() const { return p_.throttle_limit_c; }

  void Reset();

 private:
  ThermalParams p_;
  double temp_c_;
};

}  // namespace mlpm::soc
