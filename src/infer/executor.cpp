#include "infer/executor.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <variant>

#include "common/fp16.h"
#include "common/thread_pool.h"
#include "graph/bounds.h"
#include "infer/op_math.h"
#include "infer/tiled_ops.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mlpm::infer {
namespace {

using graph::Activation;
using graph::Graph;
using graph::Node;
using graph::OpType;
using graph::Padding;
using graph::TensorId;
using graph::TensorShape;

// Elementwise ops smaller than this run inline; the fork/join handshake
// costs more than the loop below it.
constexpr std::size_t kElementwiseCutoff = 1024;

// ApplyActivation lives in infer/op_math.h and SAME-padding offsets in
// graph::SamePadBegin so the whole-op kernels below and the tiled band
// kernels (tiled_ops.cpp) provably share one definition of both.

void RunConv2d(const Node& n, const graph::Conv2dAttrs& a, const Tensor& in,
               const Tensor& w, const Tensor& bias, Tensor& out,
               const kernels::KernelTable& kt, const ThreadPool* pool) {
  const TensorShape& is = in.shape();
  const TensorShape& os = out.shape();
  const std::int64_t N = is.batch(), IH = is.height(), IW = is.width(),
                     IC = is.channels();
  const std::int64_t OH = os.height(), OW = os.width(), OC = os.channels();
  const std::int64_t ph =
      graph::SamePadBegin(IH, OH, a.kernel_h, a.stride, a.dilation, a.padding);
  const std::int64_t pw =
      graph::SamePadBegin(IW, OW, a.kernel_w, a.stride, a.dilation, a.padding);
  const float* __restrict wp = w.data();
  const float* __restrict bp = bias.data();
  const float* __restrict ip = in.data();
  float* __restrict op = out.data();

  // Parallel over independent output rows (b, oh); within a pixel, four
  // output channels run together through the dispatched dot4 microkernel so
  // each input pixel load feeds four accumulators.  With the scalar table
  // every accumulator starts at its bias and adds terms in the same
  // (kh, kw, ic) order as the original loop — bit-identical output;
  // vectorized tables reassociate within the documented f32 tolerance.
  ParallelForRange(pool, 0, N * OH, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t row = lo; row < hi; ++row) {
      const std::int64_t b = row / OH;
      const std::int64_t oh = row % OH;
      for (std::int64_t ow = 0; ow < OW; ++ow) {
        float* out_px = op + ((b * OH + oh) * OW + ow) * OC;
        std::int64_t oc = 0;
        for (; oc + 4 <= OC; oc += 4) {
          float acc[4] = {bp[oc], bp[oc + 1], bp[oc + 2], bp[oc + 3]};
          for (int kh = 0; kh < a.kernel_h; ++kh) {
            const std::int64_t ih =
                oh * a.stride - ph + static_cast<std::int64_t>(kh) *
                                         a.dilation;
            if (ih < 0 || ih >= IH) continue;
            for (int kw = 0; kw < a.kernel_w; ++kw) {
              const std::int64_t iw =
                  ow * a.stride - pw + static_cast<std::int64_t>(kw) *
                                           a.dilation;
              if (iw < 0 || iw >= IW) continue;
              const float* in_px = ip + ((b * IH + ih) * IW + iw) * IC;
              const std::int64_t woff =
                  (static_cast<std::int64_t>(kh) * a.kernel_w + kw) * IC;
              const std::int64_t wstride =
                  static_cast<std::int64_t>(a.kernel_h) * a.kernel_w * IC;
              const float* w0 = wp + oc * wstride + woff;
              kt.dot4_f32(in_px, w0, w0 + wstride, w0 + 2 * wstride,
                          w0 + 3 * wstride, IC, acc);
            }
          }
          out_px[oc] = ApplyActivation(acc[0], a.activation);
          out_px[oc + 1] = ApplyActivation(acc[1], a.activation);
          out_px[oc + 2] = ApplyActivation(acc[2], a.activation);
          out_px[oc + 3] = ApplyActivation(acc[3], a.activation);
        }
        for (; oc < OC; ++oc) {
          float acc = bp[oc];
          for (int kh = 0; kh < a.kernel_h; ++kh) {
            const std::int64_t ih =
                oh * a.stride - ph + static_cast<std::int64_t>(kh) *
                                         a.dilation;
            if (ih < 0 || ih >= IH) continue;
            for (int kw = 0; kw < a.kernel_w; ++kw) {
              const std::int64_t iw =
                  ow * a.stride - pw + static_cast<std::int64_t>(kw) *
                                           a.dilation;
              if (iw < 0 || iw >= IW) continue;
              const float* in_px = ip + ((b * IH + ih) * IW + iw) * IC;
              const float* w_px =
                  wp + ((oc * a.kernel_h + kh) * a.kernel_w + kw) * IC;
              for (std::int64_t ic = 0; ic < IC; ++ic)
                acc += in_px[ic] * w_px[ic];
            }
          }
          out_px[oc] = ApplyActivation(acc, a.activation);
        }
      }
    }
  });
  (void)n;
}

// `w` holds the weights repacked to [KH, KW, C] at executor construction,
// so every tap is a channel-contiguous multiply-accumulate served by the
// dispatched dw_madd microkernel.  With the scalar table each channel sees
// the original bias-first, (kh, kw)-ordered accumulation (the per-tap round
// trip through the acc buffer is value-preserving) — bit-identical output.
void RunDepthwiseConv2d(const graph::DepthwiseConv2dAttrs& a, const Tensor& in,
                        const Tensor& w, const Tensor& bias, Tensor& out,
                        const kernels::KernelTable& kt,
                        const ThreadPool* pool) {
  const TensorShape& is = in.shape();
  const TensorShape& os = out.shape();
  const std::int64_t N = is.batch(), IH = is.height(), IW = is.width(),
                     C = is.channels();
  const std::int64_t OH = os.height(), OW = os.width();
  const std::int64_t ph =
      graph::SamePadBegin(IH, OH, a.kernel_h, a.stride, a.dilation, a.padding);
  const std::int64_t pw =
      graph::SamePadBegin(IW, OW, a.kernel_w, a.stride, a.dilation, a.padding);
  const float* __restrict wp = w.data();  // [KH, KW, C]
  const float* __restrict bp = bias.data();
  const float* __restrict ip = in.data();
  float* __restrict op = out.data();

  ParallelForRange(pool, 0, N * OH, [&](std::int64_t lo, std::int64_t hi) {
    std::vector<float> acc(static_cast<std::size_t>(C));
    for (std::int64_t row = lo; row < hi; ++row) {
      const std::int64_t b = row / OH;
      const std::int64_t oh = row % OH;
      for (std::int64_t ow = 0; ow < OW; ++ow) {
        std::copy_n(bp, C, acc.data());
        for (int kh = 0; kh < a.kernel_h; ++kh) {
          const std::int64_t ih =
              oh * a.stride - ph + static_cast<std::int64_t>(kh) * a.dilation;
          if (ih < 0 || ih >= IH) continue;
          for (int kw = 0; kw < a.kernel_w; ++kw) {
            const std::int64_t iw =
                ow * a.stride - pw + static_cast<std::int64_t>(kw) *
                                         a.dilation;
            if (iw < 0 || iw >= IW) continue;
            kt.dw_madd_f32(
                ip + ((b * IH + ih) * IW + iw) * C,
                wp + (static_cast<std::int64_t>(kh) * a.kernel_w + kw) * C,
                acc.data(), C);
          }
        }
        float* out_px = op + ((b * OH + oh) * OW + ow) * C;
        for (std::int64_t c = 0; c < C; ++c)
          out_px[c] = ApplyActivation(acc[static_cast<std::size_t>(c)],
                                      a.activation);
      }
    }
  });
}

void RunFullyConnected(const graph::FullyConnectedAttrs& a, const Tensor& in,
                       const Tensor& w, const Tensor& bias, Tensor& out,
                       const kernels::KernelTable& kt,
                       const ThreadPool* pool) {
  const TensorShape& is = in.shape();
  const std::int64_t in_f = is.dim(is.rank() - 1);
  const std::int64_t out_f = a.out_features;
  const std::int64_t rows = is.elements() / in_f;
  const float* __restrict ip = in.data();
  const float* __restrict wp = w.data();  // [out_f, in_f]
  const float* __restrict bp = bias.data();
  float* __restrict op = out.data();
  // Four output features share each input load through the dispatched dot4
  // microkernel; the scalar table keeps the original per-element order
  // (bias first, then i ascending).
  const auto run_rows = [&](std::int64_t r, std::int64_t o_lo,
                            std::int64_t o_hi) {
    const float* row = ip + r * in_f;
    std::int64_t o = o_lo;
    for (; o + 4 <= o_hi; o += 4) {
      const float* w0 = wp + o * in_f;
      float acc[4] = {bp[o], bp[o + 1], bp[o + 2], bp[o + 3]};
      kt.dot4_f32(row, w0, w0 + in_f, w0 + 2 * in_f, w0 + 3 * in_f, in_f,
                  acc);
      op[r * out_f + o] = ApplyActivation(acc[0], a.activation);
      op[r * out_f + o + 1] = ApplyActivation(acc[1], a.activation);
      op[r * out_f + o + 2] = ApplyActivation(acc[2], a.activation);
      op[r * out_f + o + 3] = ApplyActivation(acc[3], a.activation);
    }
    for (; o < o_hi; ++o) {
      const float* wrow = wp + o * in_f;
      float acc = bp[o];
      for (std::int64_t i = 0; i < in_f; ++i) acc += row[i] * wrow[i];
      op[r * out_f + o] = ApplyActivation(acc, a.activation);
    }
  };
  if (rows > 1) {
    // Batched / sequence input: parallel over rows.
    ParallelForRange(pool, 0, rows, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t r = lo; r < hi; ++r) run_rows(r, 0, out_f);
    });
  } else {
    // Single row (classifier heads): parallel over output features, chunked
    // in dot4-sized quads so a feature's dot4-vs-remainder path depends only
    // on its absolute index — required for bit-identical results across
    // thread counts (DESIGN.md §8).
    constexpr std::int64_t kB = kernels::kF32RowBlock;
    ParallelForRange(pool, 0, (out_f + kB - 1) / kB,
                     [&](std::int64_t lo, std::int64_t hi) {
                       run_rows(0, lo * kB, std::min(hi * kB, out_f));
                     });
  }
}

void RunPool(OpType op_type, const graph::PoolAttrs& a, const Tensor& in,
             Tensor& out, const ThreadPool* pool) {
  const TensorShape& is = in.shape();
  const TensorShape& os = out.shape();
  const std::int64_t N = is.batch(), IH = is.height(), IW = is.width(),
                     C = is.channels();
  const std::int64_t OH = os.height(), OW = os.width();
  const float* ip = in.data();
  float* op = out.data();
  const bool is_max = op_type == OpType::kMaxPool;
  ParallelForRange(pool, 0, N * OH, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t row = lo; row < hi; ++row) {
      const std::int64_t b = row / OH;
      const std::int64_t oh = row % OH;
      for (std::int64_t ow = 0; ow < OW; ++ow) {
        for (std::int64_t c = 0; c < C; ++c) {
          float acc = is_max ? -std::numeric_limits<float>::infinity() : 0.0f;
          int count = 0;
          for (int kh = 0; kh < a.kernel; ++kh) {
            const std::int64_t ih = oh * a.stride + kh;
            if (ih >= IH) continue;
            for (int kw = 0; kw < a.kernel; ++kw) {
              const std::int64_t iw = ow * a.stride + kw;
              if (iw >= IW) continue;
              const float v = ip[((b * IH + ih) * IW + iw) * C + c];
              if (is_max)
                acc = std::max(acc, v);
              else
                acc += v;
              ++count;
            }
          }
          op[((b * OH + oh) * OW + ow) * C + c] =
              is_max ? acc : acc / static_cast<float>(std::max(count, 1));
        }
      }
    }
  });
}

void RunGlobalAvgPool(const Tensor& in, Tensor& out, const ThreadPool* pool) {
  const TensorShape& is = in.shape();
  const std::int64_t N = is.batch(), H = is.height(), W = is.width(),
                     C = is.channels();
  const float* ip = in.data();
  float* op = out.data();
  ParallelForRange(pool, 0, N * C, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t f = lo; f < hi; ++f) {
      const std::int64_t b = f / C;
      const std::int64_t c = f % C;
      double acc = 0.0;
      for (std::int64_t h = 0; h < H; ++h)
        for (std::int64_t w = 0; w < W; ++w)
          acc += ip[((b * H + h) * W + w) * C + c];
      op[b * C + c] = static_cast<float>(acc / static_cast<double>(H * W));
    }
  });
}

void RunResizeBilinear(const Tensor& in, Tensor& out, const ThreadPool* pool) {
  const TensorShape& is = in.shape();
  const TensorShape& os = out.shape();
  const std::int64_t N = is.batch(), IH = is.height(), IW = is.width(),
                     C = is.channels();
  const std::int64_t OH = os.height(), OW = os.width();
  const float* ip = in.data();
  float* op = out.data();
  const double sh = static_cast<double>(IH) / static_cast<double>(OH);
  const double sw = static_cast<double>(IW) / static_cast<double>(OW);
  ParallelForRange(pool, 0, N * OH, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t row = lo; row < hi; ++row) {
      const std::int64_t b = row / OH;
      const std::int64_t oh = row % OH;
      // Half-pixel centers, clamped to the valid range.
      const double fy = std::max(
          0.0, (static_cast<double>(oh) + 0.5) * sh - 0.5);
      const auto y0 = std::min<std::int64_t>(static_cast<std::int64_t>(fy),
                                             IH - 1);
      const auto y1 = std::min<std::int64_t>(y0 + 1, IH - 1);
      const float wy = static_cast<float>(fy - static_cast<double>(y0));
      for (std::int64_t ow = 0; ow < OW; ++ow) {
        const double fx = std::max(
            0.0, (static_cast<double>(ow) + 0.5) * sw - 0.5);
        const auto x0 = std::min<std::int64_t>(static_cast<std::int64_t>(fx),
                                               IW - 1);
        const auto x1 = std::min<std::int64_t>(x0 + 1, IW - 1);
        const float wx = static_cast<float>(fx - static_cast<double>(x0));
        for (std::int64_t c = 0; c < C; ++c) {
          const auto px = [&](std::int64_t y, std::int64_t x) {
            return ip[((b * IH + y) * IW + x) * C + c];
          };
          const float top = px(y0, x0) * (1 - wx) + px(y0, x1) * wx;
          const float bot = px(y1, x0) * (1 - wx) + px(y1, x1) * wx;
          op[((b * OH + oh) * OW + ow) * C + c] = top * (1 - wy) + bot * wy;
        }
      }
    }
  });
}

void RunConcat(const Graph& g, const Node& n,
               const std::vector<const Tensor*>& ins, Tensor& out) {
  const auto& a = std::get<graph::ConcatAttrs>(n.attrs);
  const TensorShape& os = out.shape();
  const auto rank = static_cast<int>(os.rank());
  const int ax = a.axis >= 0 ? a.axis : rank + a.axis;
  // outer = product of dims before axis; inner = product after.
  std::int64_t outer = 1, inner = 1;
  for (int d = 0; d < ax; ++d) outer *= os.dim(static_cast<std::size_t>(d));
  for (int d = ax + 1; d < rank; ++d)
    inner *= os.dim(static_cast<std::size_t>(d));

  float* op = out.data();
  std::int64_t axis_offset = 0;
  for (const Tensor* t : ins) {
    const std::int64_t t_axis = t->shape().dim(static_cast<std::size_t>(ax));
    const float* ip = t->data();
    for (std::int64_t o = 0; o < outer; ++o) {
      const std::int64_t src = o * t_axis * inner;
      const std::int64_t dst =
          (o * os.dim(static_cast<std::size_t>(ax)) + axis_offset) * inner;
      std::copy_n(ip + src, t_axis * inner, op + dst);
    }
    axis_offset += t_axis;
  }
  (void)g;
}

void RunSoftmaxLastDim(const Tensor& in, Tensor& out, const ThreadPool* pool) {
  const TensorShape& s = in.shape();
  const std::int64_t d = s.dim(s.rank() - 1);
  const std::int64_t rows = s.elements() / d;
  const float* ip = in.data();
  float* op = out.data();
  ParallelForRange(pool, 0, rows, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t r = lo; r < hi; ++r) {
      const float* row = ip + r * d;
      float* orow = op + r * d;
      float m = row[0];
      for (std::int64_t i = 1; i < d; ++i) m = std::max(m, row[i]);
      double sum = 0.0;
      for (std::int64_t i = 0; i < d; ++i) {
        orow[i] = std::exp(row[i] - m);
        sum += orow[i];
      }
      const auto inv = static_cast<float>(1.0 / sum);
      for (std::int64_t i = 0; i < d; ++i) orow[i] *= inv;
    }
  });
}

void RunLayerNorm(const graph::LayerNormAttrs& a, const Tensor& in,
                  const Tensor& gamma, const Tensor& beta, Tensor& out,
                  const ThreadPool* pool) {
  const TensorShape& s = in.shape();
  const std::int64_t d = s.dim(s.rank() - 1);
  const std::int64_t rows = s.elements() / d;
  const float* ip = in.data();
  const float* gp = gamma.data();
  const float* bp = beta.data();
  float* op = out.data();
  ParallelForRange(pool, 0, rows, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t r = lo; r < hi; ++r) {
      const float* row = ip + r * d;
      double mean = 0.0;
      for (std::int64_t i = 0; i < d; ++i) mean += row[i];
      mean /= static_cast<double>(d);
      double var = 0.0;
      for (std::int64_t i = 0; i < d; ++i) {
        const double x = row[i] - mean;
        var += x * x;
      }
      var /= static_cast<double>(d);
      const double inv = 1.0 / std::sqrt(var + a.epsilon);
      float* orow = op + r * d;
      for (std::int64_t i = 0; i < d; ++i)
        orow[i] = static_cast<float>((row[i] - mean) * inv) * gp[i] + bp[i];
    }
  });
}

void RunEmbedding(const graph::EmbeddingAttrs& a, const Tensor& ids,
                  const Tensor& table, Tensor& out) {
  const std::int64_t seq = ids.shape().dim(0);
  const float* tp = table.data();
  float* op = out.data();
  for (std::int64_t s = 0; s < seq; ++s) {
    auto id = static_cast<std::int64_t>(ids.data()[s]);
    id = std::clamp<std::int64_t>(id, 0, a.vocab_size - 1);
    std::copy_n(tp + id * a.embed_dim, a.embed_dim, op + s * a.embed_dim);
  }
}

void RunAttention(const graph::AttentionAttrs& a, const Tensor& in,
                  const Tensor& wq, const Tensor& wk, const Tensor& wv,
                  const Tensor& wo, Tensor& out, const ThreadPool* pool) {
  const std::int64_t S = in.shape().dim(0);
  const std::int64_t D = in.shape().dim(1);
  const std::int64_t H = a.num_heads;
  const std::int64_t hd = a.head_dim;

  const auto project = [&](const Tensor& w) {
    std::vector<float> r(static_cast<std::size_t>(S * D));
    const float* ip = in.data();
    const float* wp = w.data();  // [D, D] as [out, in]
    ParallelForRange(pool, 0, S, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t s = lo; s < hi; ++s)
        for (std::int64_t o = 0; o < D; ++o) {
          float acc = 0.0f;
          const float* row = ip + s * D;
          const float* wrow = wp + o * D;
          for (std::int64_t i = 0; i < D; ++i) acc += row[i] * wrow[i];
          r[static_cast<std::size_t>(s * D + o)] = acc;
        }
    });
    return r;
  };
  const std::vector<float> q = project(wq);
  const std::vector<float> k = project(wk);
  const std::vector<float> v = project(wv);

  // Flattened (head, query-row) pairs are independent: each writes a
  // disjoint ctx slice.  Each chunk owns a local scores buffer.
  std::vector<float> ctx(static_cast<std::size_t>(S * D), 0.0f);
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(hd));
  ParallelForRange(pool, 0, H * S, [&](std::int64_t lo, std::int64_t hi) {
    std::vector<float> scores(static_cast<std::size_t>(S));
    for (std::int64_t f = lo; f < hi; ++f) {
      const std::int64_t h = f / S;
      const std::int64_t i = f % S;
      const std::int64_t off = h * hd;
      // scores_j = q_i . k_j / sqrt(hd), softmaxed over j.
      float m = -std::numeric_limits<float>::infinity();
      for (std::int64_t j = 0; j < S; ++j) {
        float acc = 0.0f;
        for (std::int64_t d = 0; d < hd; ++d)
          acc += q[static_cast<std::size_t>(i * D + off + d)] *
                 k[static_cast<std::size_t>(j * D + off + d)];
        scores[static_cast<std::size_t>(j)] = acc * inv_sqrt;
        m = std::max(m, scores[static_cast<std::size_t>(j)]);
      }
      double sum = 0.0;
      for (std::int64_t j = 0; j < S; ++j) {
        auto& sj = scores[static_cast<std::size_t>(j)];
        sj = std::exp(sj - m);
        sum += sj;
      }
      const auto inv = static_cast<float>(1.0 / sum);
      for (std::int64_t d = 0; d < hd; ++d) {
        float acc = 0.0f;
        for (std::int64_t j = 0; j < S; ++j)
          acc += scores[static_cast<std::size_t>(j)] *
                 v[static_cast<std::size_t>(j * D + off + d)];
        ctx[static_cast<std::size_t>(i * D + off + d)] = acc * inv;
      }
    }
  });

  // Output projection.
  const float* wop = wo.data();
  float* op = out.data();
  ParallelForRange(pool, 0, S, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t s = lo; s < hi; ++s)
      for (std::int64_t o = 0; o < D; ++o) {
        float acc = 0.0f;
        const float* row = ctx.data() + s * D;
        const float* wrow = wop + o * D;
        for (std::int64_t i = 0; i < D; ++i) acc += row[i] * wrow[i];
        op[s * D + o] = acc;
      }
  });
}

void RunLstm(const graph::LstmAttrs& a, const Tensor& in, const Tensor& wx,
             const Tensor& wh, const Tensor& bias, Tensor& out) {
  const std::int64_t seq = in.shape().dim(0);
  const std::int64_t d = in.shape().dim(1);
  const std::int64_t h = a.hidden_dim;
  const float* xp = in.data();
  const float* wxp = wx.data();  // [4H, D]
  const float* whp = wh.data();  // [4H, H]
  const float* bp = bias.data();
  float* op = out.data();

  std::vector<float> hidden(static_cast<std::size_t>(h), 0.0f);
  std::vector<float> cell(static_cast<std::size_t>(h), 0.0f);
  std::vector<float> gates(static_cast<std::size_t>(4 * h));
  const auto sigmoid = [](float v) { return 1.0f / (1.0f + std::exp(-v)); };

  for (std::int64_t t = 0; t < seq; ++t) {
    const float* x = xp + t * d;
    for (std::int64_t g = 0; g < 4 * h; ++g) {
      float acc = bp[g];
      const float* wx_row = wxp + g * d;
      for (std::int64_t i = 0; i < d; ++i) acc += wx_row[i] * x[i];
      const float* wh_row = whp + g * h;
      for (std::int64_t i = 0; i < h; ++i)
        acc += wh_row[i] * hidden[static_cast<std::size_t>(i)];
      gates[static_cast<std::size_t>(g)] = acc;
    }
    // Gate order: input, forget, cell candidate, output.
    for (std::int64_t i = 0; i < h; ++i) {
      const float ig = sigmoid(gates[static_cast<std::size_t>(i)]);
      const float fg = sigmoid(gates[static_cast<std::size_t>(h + i)]);
      const float gg = std::tanh(gates[static_cast<std::size_t>(2 * h + i)]);
      const float og = sigmoid(gates[static_cast<std::size_t>(3 * h + i)]);
      auto& c = cell[static_cast<std::size_t>(i)];
      c = fg * c + ig * gg;
      const float hv = og * std::tanh(c);
      hidden[static_cast<std::size_t>(i)] = hv;
      op[t * h + i] = hv;
    }
  }
}

void RoundTensorToHalf(Tensor& t, const ThreadPool* pool) {
  auto vals = t.values();
  if (vals.size() < kElementwiseCutoff) {
    for (auto& v : vals) v = RoundToHalf(v);
    return;
  }
  ParallelForRange(pool, 0, static_cast<std::int64_t>(vals.size()),
                   [&](std::int64_t lo, std::int64_t hi) {
                     for (std::int64_t i = lo; i < hi; ++i)
                       vals[static_cast<std::size_t>(i)] =
                           RoundToHalf(vals[static_cast<std::size_t>(i)]);
                   });
}

// Symmetric per-channel (or per-tensor) weight fake quantization; channel ==
// first dimension, matching the [out, ...] weight layouts used here.
void FakeQuantWeights(Tensor& t, bool per_channel, int bits) {
  const float qmax = static_cast<float>((1 << (bits - 1)) - 1);  // e.g. 127
  const std::int64_t channels =
      per_channel && t.shape().rank() > 1 ? t.shape().dim(0) : 1;
  const std::int64_t stride = static_cast<std::int64_t>(t.size()) / channels;
  float* p = t.data();
  for (std::int64_t c = 0; c < channels; ++c) {
    float* chan = p + c * stride;
    float amax = 0.0f;
    for (std::int64_t i = 0; i < stride; ++i)
      amax = std::max(amax, std::abs(chan[i]));
    if (amax == 0.0f) continue;
    const float scale = amax / qmax;
    for (std::int64_t i = 0; i < stride; ++i) {
      const float q = std::clamp(std::round(chan[i] / scale), -qmax, qmax);
      chan[i] = q * scale;
    }
  }
}

}  // namespace

float FakeQuantActivation(float v, const TensorRange& r, int bits) {
  // Asymmetric uint grid nudged so zero is exactly representable (TFLite
  // requirement; keeps zero-padding exact).
  float lo = std::min(r.min, 0.0f);
  float hi = std::max(r.max, 0.0f);
  if (hi - lo < 1e-12f) return v;
  const float qmax = static_cast<float>((1 << bits) - 1);  // 255
  const float scale = (hi - lo) / qmax;
  const float zp = std::round(-lo / scale);
  const float q = std::clamp(std::round(v / scale) + zp, 0.0f, qmax);
  return (q - zp) * scale;
}

Executor::Executor(const Graph& graph, const WeightStore& weights,
                   NumericsMode mode, const QuantParams* quant,
                   kernels::KernelIsa isa, const TileOptions& tiling)
    : graph_(graph),
      mode_(mode),
      tile_plan_(BuildTilePlan(graph, tiling)),
      plan_(MemoryPlan::Build(graph,
                              tile_plan_.empty() ? nullptr : &tile_plan_)),
      kernels_(&kernels::KernelRegistry::Global().Select(isa)) {
  if (mode_ == NumericsMode::kInt8) {
    Expects(quant != nullptr, "INT8 execution requires QuantParams");
    quant_ = *quant;
  }
  prepared_weights_.resize(graph_.tensors().size());
  for (graph::TensorId id = 0;
       id < static_cast<graph::TensorId>(graph_.tensors().size()); ++id) {
    const auto& info = graph_.tensor(id);
    if (info.kind != graph::TensorKind::kWeight) continue;
    auto t = std::make_unique<Tensor>(weights.Get(info.name));
    const bool is_bias_like = info.shape.rank() == 1;
    switch (mode_) {
      case NumericsMode::kFp32:
        break;
      case NumericsMode::kFp16:
        RoundTensorToHalf(*t, nullptr);
        break;
      case NumericsMode::kInt8:
        // Biases stay high precision (INT32 accumulators on real hardware).
        if (!is_bias_like)
          FakeQuantWeights(*t, quant_.per_channel_weights, quant_.weight_bits);
        break;
    }
    prepared_weights_[static_cast<std::size_t>(id)] = std::move(t);
  }
  // Prepack depthwise weights for the selected table: [C,KH,KW] ->
  // [KH,KW,C], after the numerics transform so values are the prepared
  // ones.  A pure layout change — every table reads the same values.
  dw_packed_weights_.resize(graph_.tensors().size());
  for (const Node& n : graph_.nodes()) {
    if (n.op != OpType::kDepthwiseConv2d) continue;
    const TensorId wid = n.weights[0];
    if (dw_packed_weights_[static_cast<std::size_t>(wid)] != nullptr) continue;
    const Tensor& src = WeightFor(wid);
    const auto& a = std::get<graph::DepthwiseConv2dAttrs>(n.attrs);
    const std::int64_t kh = a.kernel_h, kw = a.kernel_w;
    const std::int64_t c = static_cast<std::int64_t>(src.size()) / (kh * kw);
    auto packed =
        std::make_unique<Tensor>(graph::TensorShape({kh, kw, c}));
    const float* sp = src.data();
    float* dp = packed->data();
    for (std::int64_t ch = 0; ch < c; ++ch)
      for (std::int64_t y = 0; y < kh; ++y)
        for (std::int64_t x = 0; x < kw; ++x)
          dp[(y * kw + x) * c + ch] = sp[(ch * kh + y) * kw + x];
    dw_packed_weights_[static_cast<std::size_t>(wid)] = std::move(packed);
  }
}

KernelDispatchCounts Executor::dispatch_counts() const {
  KernelDispatchCounts counts;
  counts.conv2d = dispatch_counts_[0].load(std::memory_order_relaxed);
  counts.depthwise_conv2d = dispatch_counts_[1].load(std::memory_order_relaxed);
  counts.fully_connected = dispatch_counts_[2].load(std::memory_order_relaxed);
  return counts;
}

const Tensor& Executor::WeightFor(TensorId id) const {
  const auto& p = prepared_weights_[static_cast<std::size_t>(id)];
  Expects(p != nullptr, "missing prepared weight");
  return *p;
}


namespace {

// One node's kernel dispatch, shared by the legacy (allocate-per-node) and
// arena execution paths.  `fetch` resolves an activation TensorId to its
// backing tensor; `out` is the node's output storage (a fresh tensor or an
// arena view, possibly aliasing the first input for in-place ops).
template <typename Fetch>
void DispatchNode(const Graph& g, const Node& n, const Fetch& fetch,
                  const std::vector<std::unique_ptr<Tensor>>& prepared_weights,
                  const std::vector<std::unique_ptr<Tensor>>& dw_packed,
                  const kernels::KernelTable& kt,
                  std::array<std::atomic<std::uint64_t>, 3>& dispatch_counts,
                  Tensor& out, const ThreadPool* pool) {
  const auto weight_for = [&](TensorId id) -> const Tensor& {
    const auto& p = prepared_weights[static_cast<std::size_t>(id)];
    Expects(p != nullptr, "missing prepared weight");
    return *p;
  };
  // Elementwise loops only fork when the tensor is large enough to pay for
  // the handshake.
  const auto elementwise_pool = [&](std::size_t size) {
    return size >= kElementwiseCutoff ? pool : nullptr;
  };

  switch (n.op) {
    case OpType::kInput:
      break;
    case OpType::kConv2d:
      dispatch_counts[0].fetch_add(1, std::memory_order_relaxed);
      RunConv2d(n, std::get<graph::Conv2dAttrs>(n.attrs), fetch(n.inputs[0]),
                weight_for(n.weights[0]), weight_for(n.weights[1]), out, kt,
                pool);
      break;
    case OpType::kDepthwiseConv2d: {
      dispatch_counts[1].fetch_add(1, std::memory_order_relaxed);
      const auto& packed = dw_packed[static_cast<std::size_t>(n.weights[0])];
      Expects(packed != nullptr, "missing packed depthwise weight");
      RunDepthwiseConv2d(std::get<graph::DepthwiseConv2dAttrs>(n.attrs),
                         fetch(n.inputs[0]), *packed,
                         weight_for(n.weights[1]), out, kt, pool);
      break;
    }
    case OpType::kFullyConnected:
      dispatch_counts[2].fetch_add(1, std::memory_order_relaxed);
      RunFullyConnected(std::get<graph::FullyConnectedAttrs>(n.attrs),
                        fetch(n.inputs[0]), weight_for(n.weights[0]),
                        weight_for(n.weights[1]), out, kt, pool);
      break;
    case OpType::kAdd: {
      const Tensor& x = fetch(n.inputs[0]);
      const Tensor& y = fetch(n.inputs[1]);
      ParallelForRange(elementwise_pool(out.size()), 0,
                       static_cast<std::int64_t>(out.size()),
                       [&](std::int64_t lo, std::int64_t hi) {
                         for (std::int64_t i = lo; i < hi; ++i)
                           out.data()[i] = x.data()[i] + y.data()[i];
                       });
      break;
    }
    case OpType::kMul: {
      const Tensor& x = fetch(n.inputs[0]);
      const Tensor& y = fetch(n.inputs[1]);
      ParallelForRange(elementwise_pool(out.size()), 0,
                       static_cast<std::int64_t>(out.size()),
                       [&](std::int64_t lo, std::int64_t hi) {
                         for (std::int64_t i = lo; i < hi; ++i)
                           out.data()[i] = x.data()[i] * y.data()[i];
                       });
      break;
    }
    case OpType::kAvgPool:
    case OpType::kMaxPool:
      RunPool(n.op, std::get<graph::PoolAttrs>(n.attrs), fetch(n.inputs[0]),
              out, pool);
      break;
    case OpType::kGlobalAvgPool:
      RunGlobalAvgPool(fetch(n.inputs[0]), out, pool);
      break;
    case OpType::kResizeBilinear:
      RunResizeBilinear(fetch(n.inputs[0]), out, pool);
      break;
    case OpType::kConcat: {
      std::vector<const Tensor*> ins;
      ins.reserve(n.inputs.size());
      for (TensorId t : n.inputs) ins.push_back(&fetch(t));
      RunConcat(g, n, ins, out);
      break;
    }
    case OpType::kReshape: {
      const Tensor& x = fetch(n.inputs[0]);
      // Aliased reshape (arena path): the output *is* the input buffer.
      if (x.data() != out.data())
        std::copy_n(x.data(), x.size(), out.data());
      break;
    }
    case OpType::kSoftmax: {
      const auto& a = std::get<graph::SoftmaxAttrs>(n.attrs);
      const auto rank = static_cast<int>(out.shape().rank());
      Expects(a.axis == -1 || a.axis == rank - 1,
              "softmax supported on last axis only");
      RunSoftmaxLastDim(fetch(n.inputs[0]), out, pool);
      break;
    }
    case OpType::kActivation: {
      const auto& a = std::get<graph::ActivationAttrs>(n.attrs);
      const Tensor& x = fetch(n.inputs[0]);
      ParallelForRange(elementwise_pool(out.size()), 0,
                       static_cast<std::int64_t>(out.size()),
                       [&](std::int64_t lo, std::int64_t hi) {
                         for (std::int64_t i = lo; i < hi; ++i)
                           out.data()[i] =
                               ApplyActivation(x.data()[i], a.activation);
                       });
      break;
    }
    case OpType::kLayerNorm:
      RunLayerNorm(std::get<graph::LayerNormAttrs>(n.attrs),
                   fetch(n.inputs[0]), weight_for(n.weights[0]),
                   weight_for(n.weights[1]), out, pool);
      break;
    case OpType::kEmbeddingLookup:
      RunEmbedding(std::get<graph::EmbeddingAttrs>(n.attrs),
                   fetch(n.inputs[0]), weight_for(n.weights[0]), out);
      break;
    case OpType::kMultiHeadAttention:
      RunAttention(std::get<graph::AttentionAttrs>(n.attrs),
                   fetch(n.inputs[0]), weight_for(n.weights[0]),
                   weight_for(n.weights[1]), weight_for(n.weights[2]),
                   weight_for(n.weights[3]), out, pool);
      break;
    case OpType::kLstm:
      RunLstm(std::get<graph::LstmAttrs>(n.attrs), fetch(n.inputs[0]),
              weight_for(n.weights[0]), weight_for(n.weights[1]),
              weight_for(n.weights[2]), out);
      break;
    case OpType::kConstant: {
      // Materialized constant (transform-layer constant folding): the value
      // lives in the node's single weight tensor.
      const Tensor& value = weight_for(n.weights[0]);
      std::copy_n(value.data(), value.size(), out.data());
      break;
    }
  }
}

// Simulates the node's output numerics in place (identical for the legacy
// and arena paths; fp16 rounding and fake quantization are idempotent, so
// applying them over an aliased buffer matches the copy-then-round oracle).
void ApplyOutputNumerics(NumericsMode mode, const QuantParams& quant,
                         TensorId output_id, Tensor& out,
                         const ThreadPool* pool) {
  switch (mode) {
    case NumericsMode::kFp32:
      break;
    case NumericsMode::kFp16:
      RoundTensorToHalf(out, pool);
      break;
    case NumericsMode::kInt8: {
      const auto it = quant.activation_ranges.find(output_id);
      if (it != quant.activation_ranges.end()) {
        auto vals = out.values();
        ParallelForRange(
            vals.size() >= kElementwiseCutoff ? pool : nullptr, 0,
            static_cast<std::int64_t>(vals.size()),
            [&](std::int64_t lo, std::int64_t hi) {
              for (std::int64_t i = lo; i < hi; ++i)
                vals[static_cast<std::size_t>(i)] = FakeQuantActivation(
                    vals[static_cast<std::size_t>(i)], it->second,
                    quant.activation_bits);
            });
      }
      break;
    }
  }
}

// Per-node tracing: one complete span per executed node on the calling
// thread's lane, guarded by a single relaxed atomic load when disabled so
// the untraced hot loop keeps its PR-4 cost (bit-identical outputs either
// way — tracing only reads timestamps, never tensors).
void TraceNode(obs::TraceRecorder& rec, const Graph& graph, const Node& node,
               const Tensor& out, double t0_us, double t1_us,
               const MemoryPlan* plan) {
  std::vector<obs::TraceArg> args;
  args.reserve(3);
  args.push_back(obs::Arg("tensor", graph.tensor(node.output).name));
  args.push_back(obs::Arg("bytes", out.size() * sizeof(float)));
  if (plan != nullptr) {
    const TensorPlacement& p =
        plan->placements()[static_cast<std::size_t>(node.output)];
    if (p.kind != PlacementKind::kUnplanned)
      args.push_back(obs::Arg("arena_offset", p.offset * sizeof(float)));
  }
  rec.AddComplete(obs::Domain::kHost, {},
                  std::string(graph::ToString(node.op)), t0_us,
                  t1_us - t0_us, std::move(args), "node");
}

// Executes one fused tile segment: the segment's output rows are cut into
// row bands (the ThreadPool parallel grain), and each band is produced by
// walking the chain front-to-back through a per-worker slab that holds only
// the tile-sized slice of every interior tensor.  Input row ranges come
// from graph::InferInputBounds walked tail-to-head, so every band reads
// exactly the rows it needs — bit-identical to whole-op execution because
// each output element sees the identical kernel calls on identical data
// (tiled_ops.h).  `seg_out` is the tail node's full arena view.
template <typename Fetch>
void RunTiledSegment(const Graph& g, const TilePlan& plan, std::size_t seg_idx,
                     const Fetch& fetch,
                     const std::vector<std::unique_ptr<Tensor>>& prepared,
                     const std::vector<std::unique_ptr<Tensor>>& dw_packed,
                     const kernels::KernelTable& kt,
                     std::array<std::atomic<std::uint64_t>, 3>& dispatch_counts,
                     NumericsMode mode, const QuantParams& quant,
                     Tensor& seg_out, const ThreadPool* pool) {
  const TileSegment& s = plan.segments[seg_idx];
  const int n_nodes = static_cast<int>(s.last_node - s.first_node + 1);
  const auto weight_for = [&](TensorId id) -> const Tensor& {
    const auto& p = prepared[static_cast<std::size_t>(id)];
    Expects(p != nullptr, "missing prepared weight");
    return *p;
  };
  // Dispatch counters tick once per node per run (not per tile), matching
  // the whole-op path so profiles stay comparable.
  for (std::int32_t m = s.first_node; m <= s.last_node; ++m) {
    const Node& n = g.nodes()[static_cast<std::size_t>(m)];
    if (n.op == OpType::kConv2d)
      dispatch_counts[0].fetch_add(1, std::memory_order_relaxed);
    else if (n.op == OpType::kDepthwiseConv2d)
      dispatch_counts[1].fetch_add(1, std::memory_order_relaxed);
  }

  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  const std::int64_t tiles = s.tile_count();
  ParallelForRange(pool, 0, tiles, [&](std::int64_t lo, std::int64_t hi) {
    // One slab per chunk: every interior tensor's tile slice, packed at
    // the planner's aligned offsets.
    std::vector<float> slab(s.slab_elements);
    std::vector<graph::Interval> out_rows(static_cast<std::size_t>(n_nodes));
    for (std::int64_t t = lo; t < hi; ++t) {
      const bool traced = rec.enabled();
      const double t0_us = traced ? rec.NowUs() : 0.0;
      const std::int64_t r0 = t * s.tile_rows;
      const std::int64_t r1 = std::min(r0 + s.tile_rows, s.out_rows);
      // Tail-to-head bounds inference: node j must produce the rows node
      // j+1 consumes.
      out_rows[static_cast<std::size_t>(n_nodes - 1)] = {r0, r1};
      for (int j = n_nodes - 1; j > 0; --j) {
        const Node& n = g.nodes()[static_cast<std::size_t>(s.first_node + j)];
        const graph::TensorShape& ish = g.tensor(n.inputs[0]).shape;
        const graph::TensorShape& osh = g.tensor(n.output).shape;
        graph::Box crop = graph::Box::FromShape(osh);
        crop.dims[1] = out_rows[static_cast<std::size_t>(j)];
        out_rows[static_cast<std::size_t>(j - 1)] =
            graph::InferInputBounds(n, ish, osh, crop).dims[1];
      }
      // Head-to-tail execution over the inferred bands.
      for (int j = 0; j < n_nodes; ++j) {
        const Node& n = g.nodes()[static_cast<std::size_t>(s.first_node + j)];
        const graph::TensorShape& osh = g.tensor(n.output).shape;
        const graph::Interval rows = out_rows[static_cast<std::size_t>(j)];
        RowBand in_band;
        if (j == 0) {
          in_band = FullBand(fetch(n.inputs[0]));
        } else {
          const graph::TensorShape& ish = g.tensor(n.inputs[0]).shape;
          const graph::Interval in_rows =
              out_rows[static_cast<std::size_t>(j - 1)];
          in_band = RowBand{slab.data() + s.slab_offsets[j - 1],
                            in_rows.begin, in_rows.length(), ish.height(),
                            ish.width(), ish.channels()};
        }
        MutableRowBand out_band;
        if (j == n_nodes - 1) {
          out_band = MutableRowBand{
              seg_out.data() + rows.begin * osh.width() * osh.channels(),
              rows.begin, rows.length(), osh.height(), osh.width(),
              osh.channels()};
        } else {
          Expects(rows.length() <= s.slab_rows[static_cast<std::size_t>(j)],
                  "tile band exceeds planned slab rows");
          out_band = MutableRowBand{slab.data() + s.slab_offsets[j],
                                    rows.begin, rows.length(), osh.height(),
                                    osh.width(), osh.channels()};
        }
        switch (n.op) {
          case OpType::kConv2d:
            RunConv2dRows(std::get<graph::Conv2dAttrs>(n.attrs), in_band,
                          weight_for(n.weights[0]), weight_for(n.weights[1]),
                          out_band, kt);
            break;
          case OpType::kDepthwiseConv2d: {
            const auto& packed =
                dw_packed[static_cast<std::size_t>(n.weights[0])];
            Expects(packed != nullptr, "missing packed depthwise weight");
            RunDepthwiseConv2dRows(
                std::get<graph::DepthwiseConv2dAttrs>(n.attrs), in_band,
                *packed, weight_for(n.weights[1]), out_band, kt);
            break;
          }
          case OpType::kAvgPool:
          case OpType::kMaxPool:
            RunPoolRows(n.op, std::get<graph::PoolAttrs>(n.attrs), in_band,
                        out_band);
            break;
          case OpType::kAdd:
          case OpType::kMul:
            RunBinaryRows(n.op, in_band, FullBand(fetch(n.inputs[1])),
                          out_band);
            break;
          case OpType::kActivation:
            RunActivationRows(
                std::get<graph::ActivationAttrs>(n.attrs).activation, in_band,
                out_band);
            break;
          case OpType::kResizeBilinear:
            RunResizeBilinearRows(in_band, out_band);
            break;
          default:
            Expects(false, "unsupported op in tile segment");
        }
        ApplyNumericsRows(mode, quant, n.output, out_band);
      }
      if (traced) {
        std::vector<obs::TraceArg> args;
        args.reserve(2);
        args.push_back(obs::Arg("segment", static_cast<int>(seg_idx)));
        args.push_back(
            obs::Arg("rows", std::to_string(r0) + ":" + std::to_string(r1)));
        rec.AddComplete(obs::Domain::kHost, {}, "tile", t0_us,
                        rec.NowUs() - t0_us, std::move(args), "tile");
      }
    }
  });
}

}  // namespace

ExecutionContext::ExecutionContext(const Executor& executor)
    : plan_(&executor.memory_plan()),
      arena_(plan_->arena_elements(), 0.0f),
      slots_(executor.graph().tensors().size()),
      external_(executor.graph().tensors().size(), nullptr) {
  obs::MetricsRegistry::Global().MaxGauge(
      "infer.arena_bytes", static_cast<double>(plan_->peak_arena_bytes()));
  const Graph& g = executor.graph();
  for (std::size_t id = 0; id < slots_.size(); ++id) {
    const TensorPlacement& p = plan_->placements()[id];
    // Tile-slab tensors have no arena storage: the tiled executor
    // materializes them band-by-band in per-worker slabs.
    if (p.kind == PlacementKind::kUnplanned ||
        p.kind == PlacementKind::kTileSlab)
      continue;
    slots_[id] = Tensor::View(g.tensor(static_cast<TensorId>(id)).shape,
                              arena_.data() + p.offset);
  }
}

std::vector<Tensor> Executor::Run(std::span<const Tensor> inputs) const {
  return Run(inputs, NodeObserver{}, nullptr);
}

std::vector<Tensor> Executor::Run(std::span<const Tensor> inputs,
                                  const NodeObserver& observer) const {
  return Run(inputs, observer, nullptr);
}

std::vector<Tensor> Executor::Run(std::span<const Tensor> inputs,
                                  const NodeObserver& observer,
                                  const ThreadPool* pool) const {
  Expects(inputs.size() == graph_.input_ids().size(),
          "wrong number of graph inputs");
  std::vector<Tensor> slots(graph_.tensors().size());
  std::vector<bool> ready(graph_.tensors().size(), false);
  // Graph inputs are bound as read-only views, never copied into slots:
  // large image inputs are not duplicated per sample.
  std::vector<const Tensor*> bound(graph_.tensors().size(), nullptr);

  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const TensorId id = graph_.input_ids()[i];
    Expects(inputs[i].shape() == graph_.tensor(id).shape,
            "input shape mismatch for " + graph_.tensor(id).name);
    bound[static_cast<std::size_t>(id)] = &inputs[i];
    ready[static_cast<std::size_t>(id)] = true;
  }

  const auto fetch = [&](TensorId id) -> const Tensor& {
    Expects(ready[static_cast<std::size_t>(id)],
            "use of unready tensor " + graph_.tensor(id).name);
    if (const Tensor* ext = bound[static_cast<std::size_t>(id)]) return *ext;
    return slots[static_cast<std::size_t>(id)];
  };

  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  for (const Node& n : graph_.nodes()) {
    if (n.op == OpType::kInput) continue;
    const bool traced = rec.enabled();
    const double t0_us = traced ? rec.NowUs() : 0.0;
    Tensor out(graph_.tensor(n.output).shape);
    DispatchNode(graph_, n, fetch, prepared_weights_, dw_packed_weights_,
                 *kernels_, dispatch_counts_, out, pool);
    if (observer) observer(n.output, out);
    ApplyOutputNumerics(mode_, quant_, n.output, out, pool);
    if (traced)
      TraceNode(rec, graph_, n, out, t0_us, rec.NowUs(), nullptr);
    slots[static_cast<std::size_t>(n.output)] = std::move(out);
    ready[static_cast<std::size_t>(n.output)] = true;
  }

  std::vector<Tensor> outputs;
  outputs.reserve(graph_.output_ids().size());
  for (TensorId id : graph_.output_ids()) outputs.push_back(fetch(id));
  return outputs;
}

std::vector<Tensor> Executor::Run(std::span<const Tensor> inputs,
                                  ExecutionContext& ctx,
                                  const NodeObserver& observer,
                                  const ThreadPool* pool) const {
  Expects(ctx.plan_ == &plan_,
          "execution context belongs to a different executor");
  Expects(inputs.size() == graph_.input_ids().size(),
          "wrong number of graph inputs");
  // Observed runs (calibration) need every full intermediate, which tiled
  // segments never materialize — fall back to the whole-op oracle path.
  if (tiled() && observer) return Run(inputs, observer, pool);
  std::fill(ctx.external_.begin(), ctx.external_.end(), nullptr);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const TensorId id = graph_.input_ids()[i];
    Expects(inputs[i].shape() == graph_.tensor(id).shape,
            "input shape mismatch for " + graph_.tensor(id).name);
    ctx.external_[static_cast<std::size_t>(id)] = &inputs[i];
  }

  const auto fetch = [&](TensorId id) -> const Tensor& {
    if (const Tensor* ext = ctx.external_[static_cast<std::size_t>(id)])
      return *ext;
    const Tensor& slot = ctx.slots_[static_cast<std::size_t>(id)];
    Expects(slot.is_view(),
            "use of unplanned tensor " + graph_.tensor(id).name);
    return slot;
  };

  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  const auto& nodes = graph_.nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Node& n = nodes[i];
    if (n.op == OpType::kInput) continue;
    if (tiled()) {
      const std::int32_t seg = tile_plan_.segment_of_node[i];
      if (seg >= 0) {
        // Segment head: run the whole fused chain tile-by-tile, then jump
        // past its tail (interiors never execute as standalone nodes).
        const TileSegment& s =
            tile_plan_.segments[static_cast<std::size_t>(seg)];
        const bool traced = rec.enabled();
        const double t0_us = traced ? rec.NowUs() : 0.0;
        const Node& tail = nodes[static_cast<std::size_t>(s.last_node)];
        Tensor& seg_out = ctx.slots_[static_cast<std::size_t>(tail.output)];
        RunTiledSegment(graph_, tile_plan_, static_cast<std::size_t>(seg),
                        fetch, prepared_weights_, dw_packed_weights_,
                        *kernels_, dispatch_counts_, mode_, quant_, seg_out,
                        pool);
        if (traced) {
          std::vector<obs::TraceArg> args;
          args.reserve(3);
          args.push_back(
              obs::Arg("tensor", graph_.tensor(tail.output).name));
          args.push_back(obs::Arg("nodes", static_cast<int>(
                                               s.last_node - s.first_node +
                                               1)));
          args.push_back(
              obs::Arg("tiles", static_cast<int>(s.tile_count())));
          rec.AddComplete(obs::Domain::kHost, {}, "tiled_segment", t0_us,
                          rec.NowUs() - t0_us, std::move(args), "node");
        }
        i = static_cast<std::size_t>(s.last_node);
        continue;
      }
    }
    const bool traced = rec.enabled();
    const double t0_us = traced ? rec.NowUs() : 0.0;
    Tensor& out = ctx.slots_[static_cast<std::size_t>(n.output)];
    DispatchNode(graph_, n, fetch, prepared_weights_, dw_packed_weights_,
                 *kernels_, dispatch_counts_, out, pool);
    if (observer) observer(n.output, out);
    ApplyOutputNumerics(mode_, quant_, n.output, out, pool);
    if (traced)
      TraceNode(rec, graph_, n, out, t0_us, rec.NowUs(), ctx.plan_);
  }

  // Detach outputs from the arena: the caller keeps them, the arena is
  // overwritten by the next sample.
  std::vector<Tensor> outputs;
  outputs.reserve(graph_.output_ids().size());
  for (TensorId id : graph_.output_ids()) outputs.push_back(fetch(id).Clone());
  return outputs;
}

}  // namespace mlpm::infer
