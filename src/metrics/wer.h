// Word (token) error rate for the speech-recognition extension
// (paper App. E): Levenshtein distance between predicted and reference
// token sequences, normalized by reference length.
#pragma once

#include <span>
#include <vector>

namespace mlpm::metrics {

// Minimum number of substitutions + insertions + deletions to turn
// `prediction` into `reference`.
[[nodiscard]] std::size_t EditDistance(std::span<const int> prediction,
                                       std::span<const int> reference);

// Total edit distance over all pairs divided by total reference tokens.
// An empty reference set returns 0.  Can exceed 1 for pathological output.
[[nodiscard]] double WordErrorRate(
    std::span<const std::vector<int>> predictions,
    std::span<const std::vector<int>> references);

}  // namespace mlpm::metrics
