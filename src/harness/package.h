// Submission packaging (paper §6.2): "Submissions include all of the
// mobile benchmark app's log files, unedited.  Post submission, all of the
// results are independently audited, along with any modified models and
// code used in the respective submissions."
//
// A SubmissionPackage is that artifact: the submitted model graphs, the
// raw LoadGen logs, and the results, as named files.  AuditPackage replays
// the §6.2 review: parse every model file and fingerprint-compare it
// against the frozen reference, re-validate every log event-by-event, and
// cross-check the packaged results.
#pragma once

#include <map>
#include <string>

#include "harness/checker.h"
#include "harness/run_session.h"

namespace mlpm::harness {

struct SubmissionPackage {
  std::string chipset_name;
  models::SuiteVersion version = models::SuiteVersion::kV1_0;
  // Path -> file contents.  Layout:
  //   MANIFEST                       one line per file
  //   models/<task>.graph            submitted (frozen) model structure
  //   logs/<task>.single_stream.log  unedited LoadGen log
  //   logs/<task>.offline.log        (when the vendor submitted offline)
  //   results.csv                    machine-readable results
  std::map<std::string, std::string> files;
};

// Packages a finished submission.  Model files are the mini reference
// graphs the accuracy plane ran (what a submitter ships back).
[[nodiscard]] SubmissionPackage PackageSubmission(
    const SubmissionResult& result, SuiteBundles& bundles);

// Full package audit: model equivalence against the frozen references,
// log validation against the run rules, manifest completeness.
[[nodiscard]] CheckReport AuditPackage(
    const SubmissionPackage& package, SuiteBundles& bundles,
    const loadgen::TestSettings& expected);

}  // namespace mlpm::harness
