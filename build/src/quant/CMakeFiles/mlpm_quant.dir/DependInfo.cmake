
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quant/calibration.cpp" "src/quant/CMakeFiles/mlpm_quant.dir/calibration.cpp.o" "gcc" "src/quant/CMakeFiles/mlpm_quant.dir/calibration.cpp.o.d"
  "/root/repo/src/quant/rules.cpp" "src/quant/CMakeFiles/mlpm_quant.dir/rules.cpp.o" "gcc" "src/quant/CMakeFiles/mlpm_quant.dir/rules.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/infer/CMakeFiles/mlpm_infer.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mlpm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mlpm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
