// Execution traces of simulated inferences, exportable as Chrome trace JSON
// (chrome://tracing / Perfetto).  The transparency artifact for the
// simulator itself: one lane per engine plus an interconnect lane, so the
// Exynos-990-style transfer pathologies are literally visible.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"
#include "soc/chipset.h"
#include "soc/compile.h"

namespace mlpm::soc {

struct TraceEvent {
  std::string name;   // segment / transfer label
  std::string lane;   // engine name or "interconnect"
  double begin_s = 0.0;
  double duration_s = 0.0;
};

class ExecutionTrace {
 public:
  void Add(TraceEvent event);
  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] double TotalDuration() const;

  // Chrome trace-event JSON ("traceEvents" array of complete events; one
  // tid per lane; microsecond timestamps).  Rendered through the unified
  // obs emitter so standalone SoC traces and full-stack recordings share
  // one format (DESIGN.md §11).
  [[nodiscard]] std::string ToChromeJson() const;

  // Feeds every event into `recorder` as a kSim complete span (category
  // "soc", lane = engine name, seconds converted to microseconds).  Used by
  // SocSimulator to stream per-IP detail into the global recorder.  A
  // non-empty `lane_prefix` is prepended to every lane name ("shard-3/npu"),
  // giving concurrent simulators disjoint lanes so their spans never
  // interleave on one timeline row (DESIGN.md §16).
  void AppendTo(obs::TraceRecorder& recorder,
                std::string_view lane_prefix = {}) const;

 private:
  std::vector<TraceEvent> events_;
};

// Expands one single-stream inference of a compiled model into a trace
// starting at `t0_s` under the given throttle factor.  The trace's end time
// equals CompiledModel::LatencySeconds(throttle) + t0_s.
[[nodiscard]] ExecutionTrace TraceInference(const CompiledModel& model,
                                            const ChipsetDesc& chipset,
                                            double throttle_factor = 1.0,
                                            double t0_s = 0.0);

}  // namespace mlpm::soc
