// Internal helpers shared by the shipped passes.  Not part of the library's
// public surface.
#pragma once

#include "graph/graph.h"
#include "graph/ops.h"
#include "transform/pass.h"

namespace mlpm::transform::detail {

// RedirectUses plus the bookkeeping the locality gate needs: records the
// edge replacement in the context so untouched downstream consumers are
// diffed modulo the declared rewiring.
inline void Rewire(MutableGraph& g, PassContext& ctx, graph::TensorId from,
                   graph::TensorId to) {
  ctx.edge_renames[g.tensor(from).name] = g.tensor(to).name;
  g.RedirectUses(from, to);
}

inline bool IsConvLike(graph::OpType op) {
  return op == graph::OpType::kConv2d ||
         op == graph::OpType::kDepthwiseConv2d ||
         op == graph::OpType::kFullyConnected;
}

// The activation fused into a conv-like node's attrs (kNone if the node is
// not conv-like).
inline graph::Activation FusedActivation(const graph::Node& n) {
  if (const auto* a = std::get_if<graph::Conv2dAttrs>(&n.attrs))
    return a->activation;
  if (const auto* a = std::get_if<graph::DepthwiseConv2dAttrs>(&n.attrs))
    return a->activation;
  if (const auto* a = std::get_if<graph::FullyConnectedAttrs>(&n.attrs))
    return a->activation;
  return graph::Activation::kNone;
}

inline void SetFusedActivation(graph::Node& n, graph::Activation act) {
  if (auto* conv = std::get_if<graph::Conv2dAttrs>(&n.attrs))
    conv->activation = act;
  else if (auto* dw = std::get_if<graph::DepthwiseConv2dAttrs>(&n.attrs))
    dw->activation = act;
  else if (auto* fc = std::get_if<graph::FullyConnectedAttrs>(&n.attrs))
    fc->activation = act;
}

// relu/relu6 are clamps with binary16-representable bounds, so they commute
// exactly with FP16 rounding: rnd(clamp(rnd(x))) == rnd(clamp(x)).  That
// lemma is what lets clamp-family rewrites through the FP16 numerics gate.
inline bool IsClampFamily(graph::Activation a) {
  return a == graph::Activation::kRelu || a == graph::Activation::kRelu6;
}

// Reverse reachability from the graph outputs — the same liveness notion
// GRAPH002 uses.  reachable[i] is true iff live node i has a dataflow path
// to a graph output.  Passes that *create* nodes consult this so they never
// mint a new unreachable node out of already-dead code (a new GRAPH002
// finding the XFM007 gate would veto); passes that remove dead code use it
// to agree with the analysis layer on what "dead" means.
inline std::vector<bool> ReachableNodes(const MutableGraph& g) {
  const std::vector<std::int32_t> producers = g.BuildProducers();
  std::vector<bool> reachable(g.nodes().size(), false);
  std::vector<std::size_t> stack;
  const auto visit = [&](graph::TensorId id) {
    const std::int32_t p =
        (id >= 0 && static_cast<std::size_t>(id) < producers.size())
            ? producers[static_cast<std::size_t>(id)]
            : -1;
    if (p >= 0 && !reachable[static_cast<std::size_t>(p)]) {
      reachable[static_cast<std::size_t>(p)] = true;
      stack.push_back(static_cast<std::size_t>(p));
    }
  };
  for (const graph::TensorId out : g.output_ids()) visit(out);
  while (!stack.empty()) {
    const std::size_t ni = stack.back();
    stack.pop_back();
    for (const graph::TensorId in : g.nodes()[ni].inputs) visit(in);
  }
  return reachable;
}

}  // namespace mlpm::transform::detail
