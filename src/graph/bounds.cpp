#include "graph/bounds.h"

#include <algorithm>
#include <variant>

#include "common/check.h"

namespace mlpm::graph {
namespace {

// Input rows a strided window op touches for output rows [begin, end):
// first tap of the first row through last tap of the last row, clamped.
Interval WindowSpan(const Interval& out, std::int64_t in_size, int kernel,
                    int stride, int dilation, std::int64_t pad_begin) {
  const std::int64_t eff_k =
      static_cast<std::int64_t>(dilation) * (kernel - 1) + 1;
  const std::int64_t lo = out.begin * stride - pad_begin;
  const std::int64_t hi = (out.end - 1) * stride - pad_begin + eff_k;
  return Interval{std::max<std::int64_t>(0, lo),
                  std::min<std::int64_t>(in_size, hi)};
}

// Source rows a bilinear band reads: the first tap (y0) of the first
// output row through the second tap (y1 = y0 + 1, clamped) of the last,
// with the whole-op kernel's half-pixel center math reproduced verbatim.
Interval ResizeSpan(const Interval& out, std::int64_t in_size,
                    std::int64_t out_size) {
  const double s =
      static_cast<double>(in_size) / static_cast<double>(out_size);
  const auto tap0 = [&](std::int64_t o) {
    const double f = std::max(0.0, (static_cast<double>(o) + 0.5) * s - 0.5);
    return std::min<std::int64_t>(static_cast<std::int64_t>(f), in_size - 1);
  };
  const std::int64_t lo = tap0(out.begin);
  const std::int64_t hi =
      std::min<std::int64_t>(tap0(out.end - 1) + 1, in_size - 1) + 1;
  return Interval{lo, hi};
}

}  // namespace

std::int64_t SamePadBegin(std::int64_t in, std::int64_t out, int kernel,
                          int stride, int dilation, Padding pad) {
  if (pad == Padding::kValid) return 0;
  const std::int64_t eff_k =
      static_cast<std::int64_t>(dilation) * (kernel - 1) + 1;
  const std::int64_t total =
      std::max<std::int64_t>(0, (out - 1) * stride + eff_k - in);
  return total / 2;
}

bool SupportsBoundsInference(OpType op) {
  switch (op) {
    case OpType::kConv2d:
    case OpType::kDepthwiseConv2d:
    case OpType::kAvgPool:
    case OpType::kMaxPool:
    case OpType::kAdd:
    case OpType::kMul:
    case OpType::kActivation:
    case OpType::kResizeBilinear:
      return true;
    default:
      return false;
  }
}

Box InferInputBounds(const Node& n, const TensorShape& in_shape,
                     const TensorShape& out_shape, const Box& crop) {
  Expects(SupportsBoundsInference(n.op),
          "bounds inference unsupported for op");
  Expects(crop.rank() == out_shape.rank(),
          "crop rank does not match output shape");
  Expects(Box::FromShape(out_shape).Contains(crop),
          "crop outside the output shape");

  switch (n.op) {
    case OpType::kAdd:
    case OpType::kMul:
    case OpType::kActivation:
      // Elementwise: the input box is the crop itself.
      return crop;

    case OpType::kConv2d: {
      const auto& a = std::get<Conv2dAttrs>(n.attrs);
      Box in = crop;
      in.dims[1] = WindowSpan(
          crop.dims[1], in_shape.height(), a.kernel_h, a.stride, a.dilation,
          SamePadBegin(in_shape.height(), out_shape.height(), a.kernel_h,
                       a.stride, a.dilation, a.padding));
      in.dims[2] = WindowSpan(
          crop.dims[2], in_shape.width(), a.kernel_w, a.stride, a.dilation,
          SamePadBegin(in_shape.width(), out_shape.width(), a.kernel_w,
                       a.stride, a.dilation, a.padding));
      in.dims[3] = {0, in_shape.channels()};  // every input channel
      return in;
    }

    case OpType::kDepthwiseConv2d: {
      const auto& a = std::get<DepthwiseConv2dAttrs>(n.attrs);
      Box in = crop;
      in.dims[1] = WindowSpan(
          crop.dims[1], in_shape.height(), a.kernel_h, a.stride, a.dilation,
          SamePadBegin(in_shape.height(), out_shape.height(), a.kernel_h,
                       a.stride, a.dilation, a.padding));
      in.dims[2] = WindowSpan(
          crop.dims[2], in_shape.width(), a.kernel_w, a.stride, a.dilation,
          SamePadBegin(in_shape.width(), out_shape.width(), a.kernel_w,
                       a.stride, a.dilation, a.padding));
      return in;
    }

    case OpType::kResizeBilinear: {
      Box in = crop;
      in.dims[1] =
          ResizeSpan(crop.dims[1], in_shape.height(), out_shape.height());
      in.dims[2] =
          ResizeSpan(crop.dims[2], in_shape.width(), out_shape.width());
      // Channels map 1:1; the crop's channel span carries over.
      return in;
    }

    case OpType::kAvgPool:
    case OpType::kMaxPool: {
      // The pool kernel anchors windows at oh*stride with no pad offset and
      // skips taps past the end (executor RunPool); the span math matches.
      const auto& a = std::get<PoolAttrs>(n.attrs);
      Box in = crop;
      in.dims[1] =
          WindowSpan(crop.dims[1], in_shape.height(), a.kernel, a.stride,
                     /*dilation=*/1, /*pad_begin=*/0);
      in.dims[2] = WindowSpan(crop.dims[2], in_shape.width(), a.kernel,
                              a.stride, /*dilation=*/1, /*pad_begin=*/0);
      return in;
    }

    default:
      break;
  }
  return crop;  // unreachable: guarded by the Expects above
}

}  // namespace mlpm::graph
