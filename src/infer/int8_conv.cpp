#include "infer/int8_conv.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "graph/graph.h"
#include "infer/int8_gemm.h"

namespace mlpm::infer {

QuantizationParams ChooseQuantParams(float min, float max) {
  min = std::min(min, 0.0f);
  max = std::max(max, 0.0f);
  QuantizationParams p;
  if (max - min < 1e-12f) {
    p.scale = 1.0f;
    p.zero_point = 0;
    return p;
  }
  p.scale = (max - min) / 255.0f;
  p.zero_point = static_cast<std::int32_t>(std::lround(-min / p.scale));
  p.zero_point = std::clamp(p.zero_point, 0, 255);
  return p;
}

Tensor ConvInt8NHWC(const Tensor& input, const Tensor& weights,
                    const Tensor& bias, int stride, graph::Padding padding,
                    const QuantizationParams& input_params,
                    const QuantizationParams& weight_params) {
  const auto& is = input.shape();
  const auto& ws = weights.shape();
  Expects(is.rank() == 4 && is.batch() == 1, "input must be [1,H,W,C]");
  Expects(ws.rank() == 4, "weights must be [O,KH,KW,C]");
  Expects(ws.dim(1) == ws.dim(2), "square kernels only");
  Expects(ws.dim(3) == is.channels(), "channel mismatch");
  const std::int64_t ih = is.height(), iw = is.width(), c = is.channels();
  const std::int64_t oc = ws.dim(0);
  const int k = static_cast<int>(ws.dim(1));
  const std::int64_t oh = graph::ConvOutDim(ih, k, stride, 1, padding);
  const std::int64_t ow = graph::ConvOutDim(iw, k, stride, 1, padding);
  Expects(static_cast<std::int64_t>(bias.size()) == oc,
          "bias size mismatch");

  // Quantize inputs and weights.
  std::vector<std::uint8_t> in_q(input.size());
  QuantizeU8(input.values(), input_params.scale, input_params.zero_point,
             in_q);
  std::vector<std::uint8_t> w_q(weights.size());
  QuantizeU8(weights.values(), weight_params.scale,
             weight_params.zero_point, w_q);

  // im2col: rows = output pixels, cols = k*k*c patch; padding cells hold
  // the input zero-point (exact quantized 0).
  const std::int64_t patch = static_cast<std::int64_t>(k) * k * c;
  const std::int64_t rows = oh * ow;
  std::vector<std::uint8_t> cols(
      static_cast<std::size_t>(rows * patch),
      static_cast<std::uint8_t>(input_params.zero_point));
  const std::int64_t pad_h =
      padding == graph::Padding::kSame
          ? std::max<std::int64_t>(0, ((oh - 1) * stride + k - ih) / 2)
          : 0;
  const std::int64_t pad_w =
      padding == graph::Padding::kSame
          ? std::max<std::int64_t>(0, ((ow - 1) * stride + k - iw) / 2)
          : 0;
  for (std::int64_t y = 0; y < oh; ++y) {
    for (std::int64_t x = 0; x < ow; ++x) {
      std::uint8_t* row = cols.data() + (y * ow + x) * patch;
      for (int ky = 0; ky < k; ++ky) {
        const std::int64_t sy = y * stride - pad_h + ky;
        if (sy < 0 || sy >= ih) continue;
        for (int kx = 0; kx < k; ++kx) {
          const std::int64_t sx = x * stride - pad_w + kx;
          if (sx < 0 || sx >= iw) continue;
          std::copy_n(in_q.data() + (sy * iw + sx) * c, c,
                      row + (static_cast<std::int64_t>(ky) * k + kx) * c);
        }
      }
    }
  }

  // GEMM: [rows, patch] x [oc, patch]^T -> int32 accumulators.
  std::vector<std::int32_t> acc(static_cast<std::size_t>(rows * oc));
  GemmU8U8I32(cols, input_params.zero_point, w_q, weight_params.zero_point,
              static_cast<std::size_t>(rows), static_cast<std::size_t>(oc),
              static_cast<std::size_t>(patch), acc);

  // Requantize to float and add the (float/INT32-precision) bias.
  Tensor out(graph::TensorShape({1, oh, ow, oc}));
  for (std::int64_t r = 0; r < rows; ++r)
    for (std::int64_t o = 0; o < oc; ++o)
      out.data()[r * oc + o] =
          DequantizeAcc(acc[static_cast<std::size_t>(r * oc + o)],
                        input_params.scale, weight_params.scale) +
          bias.data()[o];
  return out;
}

}  // namespace mlpm::infer
