#include "backends/fault_tolerant_backend.h"

#include <cstdio>
#include <utility>

#include "backends/framework.h"
#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mlpm::backends {

FaultTolerantBackend::FaultTolerantBackend(
    std::string name, soc::SocSimulator simulator, soc::CompiledModel primary,
    soc::CompiledModel cpu_fallback,
    std::vector<soc::CompiledModel> offline_replicas,
    loadgen::VirtualClock& clock, FaultToleranceOptions options,
    EndToEndCosts end_to_end)
    : name_(std::move(name)),
      simulator_(std::move(simulator)),
      primary_(std::move(primary)),
      cpu_fallback_(std::move(cpu_fallback)),
      offline_replicas_(std::move(offline_replicas)),
      clock_(clock),
      options_(options),
      end_to_end_(end_to_end),
      backoff_rng_(options.backoff_seed) {
  Expects(options_.max_attempts >= 1, "need at least one attempt");
  Expects(options_.crash_fallback_threshold >= 1,
          "crash fallback threshold must be positive");
  Expects(options_.backoff_jitter_frac >= 0.0 &&
              options_.backoff_jitter_frac < 2.0,
          "backoff jitter fraction must be in [0, 2)");
  Expects(simulator_.IsCpuOnly(cpu_fallback_),
          "the fallback plan must run entirely on the CPU");
}

void FaultTolerantBackend::Record(RecoveryAction action,
                                 std::uint64_t query_id, int attempt) {
  events_.push_back(
      DegradationEvent{action, query_id, clock_.Now().count(), attempt});
  obs::MetricsRegistry::Global().Increment("backend.recovery_actions");
  if (obs::TraceRecorder& rec = obs::TraceRecorder::Global(); rec.enabled())
    rec.AddInstant(obs::Domain::kLoadGen, "recovery",
                   "recovery:" + std::string(ToString(action)),
                   clock_.Now().count() * 1e6,
                   {obs::Arg("query", query_id), obs::Arg("attempt", attempt)},
                   "recovery");
}

void FaultTolerantBackend::RunOne(const loadgen::QuerySample& sample,
                                  loadgen::ResponseSink& sink) {
  for (int attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    const soc::CompiledModel& model =
        stats_.degraded_to_cpu ? cpu_fallback_ : primary_;
    const soc::InferenceResult r = simulator_.RunInference(model);
    total_energy_j_ += r.energy_j;
    clock_.Advance(loadgen::Seconds{r.latency_s});

    switch (r.outcome) {
      case soc::InferenceOutcome::kOk:
      case soc::InferenceOutcome::kThermalEmergency:
        consecutive_crashes_ = 0;
        clock_.Advance(loadgen::Seconds{end_to_end_.Total()});
        ++stats_.completed;
        sink.Complete(loadgen::QuerySampleResponse{sample.id, {}});
        if (r.outcome == soc::InferenceOutcome::kThermalEmergency) {
          // Cool down before the next query — an emergency trip means the
          // governor already dropped to its floor; pressing on would only
          // burn time at the minimum clock.
          ++stats_.thermal_emergencies;
          Record(RecoveryAction::kEmergencyCooldown, sample.id, attempt);
          simulator_.Cooldown(options_.emergency_cooldown_s);
          clock_.Advance(loadgen::Seconds{options_.emergency_cooldown_s});
        }
        return;

      case soc::InferenceOutcome::kDropped:
        // The work ran; only the signal was lost.  Retrying would execute
        // (and potentially score) the sample twice — leave the expiry to
        // the LoadGen watchdog.
        consecutive_crashes_ = 0;
        ++stats_.lost_completions;
        Record(RecoveryAction::kLostCompletion, sample.id, attempt);
        return;

      case soc::InferenceOutcome::kStalledRetryable:
        consecutive_crashes_ = 0;
        ++stats_.transient_stalls;
        break;  // retry below

      case soc::InferenceOutcome::kDriverCrash:
        ++stats_.driver_crashes;
        ++consecutive_crashes_;
        if (!stats_.degraded_to_cpu &&
            consecutive_crashes_ >= options_.crash_fallback_threshold) {
          // The accelerator plan is broken; degrade to the CPU path and
          // keep serving.  Faults do not apply to CPU-only plans, so from
          // here on the run completes — slower, but valid-degraded.
          stats_.degraded_to_cpu = true;
          Record(RecoveryAction::kCpuFallback, sample.id, attempt);
        }
        break;  // retry below
    }

    if (attempt == options_.max_attempts) {
      ++stats_.gave_up;
      Record(RecoveryAction::kGaveUp, sample.id, attempt);
      return;  // the LoadGen watchdog expires the query
    }
    // Exponential backoff before the retry, with seeded jitter so shards
    // retrying the same fault don't synchronize into a retry storm.
    ++stats_.retries;
    Record(RecoveryAction::kRetry, sample.id, attempt);
    const double jitter =
        1.0 + options_.backoff_jitter_frac * (backoff_rng_.NextDouble() - 0.5);
    clock_.Advance(loadgen::Seconds{options_.backoff_base_s *
                                    static_cast<double>(1 << (attempt - 1)) *
                                    jitter});
  }
}

void FaultTolerantBackend::IssueQuery(
    std::span<const loadgen::QuerySample> samples,
    loadgen::ResponseSink& sink) {
  Expects(!samples.empty(), "empty query");
  if (samples.size() == 1) {
    RunOne(samples[0], sink);
    return;
  }

  // Offline burst: ALP across the replica set — or the CPU fallback alone
  // once the accelerator plans have been abandoned.
  std::span<const soc::CompiledModel> replicas = offline_replicas_;
  if (stats_.degraded_to_cpu || replicas.empty())
    replicas = {stats_.degraded_to_cpu ? &cpu_fallback_ : &primary_, 1};
  const soc::BatchResult batch =
      simulator_.RunBatch(replicas, samples.size());
  total_energy_j_ += batch.energy_j;
  const loadgen::Seconds start = clock_.Now();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    clock_.AdvanceTo(start + loadgen::Seconds{batch.completion_times_s[i] +
                                              end_to_end_.Total()});
    if (batch.SampleCompleted(i)) {
      ++stats_.completed;
      sink.Complete(loadgen::QuerySampleResponse{samples[i].id, {}});
    } else {
      ++stats_.lost_completions;
      Record(RecoveryAction::kLostCompletion, samples[i].id, 1);
    }
  }
}

std::string FaultTolerantBackend::EventLogText() const {
  std::string out;
  char line[128];
  for (const DegradationEvent& e : events_) {
    std::snprintf(line, sizeof line, "recovery %s query=%llu t=%.9f try=%d\n",
                  std::string(ToString(e.action)).c_str(),
                  static_cast<unsigned long long>(e.query_id), e.time_s,
                  e.attempt);
    out += line;
  }
  return out;
}

soc::CompiledModel CompileCpuFallback(const soc::ChipsetDesc& chipset,
                                      const graph::Graph& model,
                                      DataType preferred) {
  const soc::AcceleratorDesc* cpu = nullptr;
  for (const soc::AcceleratorDesc& e : chipset.engines)
    if (e.cls == soc::EngineClass::kCpuBig ||
        e.cls == soc::EngineClass::kCpuLittle) {
      cpu = &e;
      break;
    }
  Expects(cpu != nullptr, "chipset has no CPU engine for fallback");
  soc::ExecutionPolicy policy;
  policy.engines.push_back(cpu->name);
  // Broken-driver territory is exactly where NNAPI's generic CPU path
  // lives (App. D); reuse its overhead profile, including HAL-granularity
  // partitioning.
  const FrameworkTraits traits = NnapiTraits("cpu-fallback");
  policy.force_partition_every = traits.force_partition_every;
  const DataType numerics =
      cpu->Supports(preferred) ? preferred : DataType::kFloat32;
  return soc::Compile(model, numerics, chipset, policy, traits.ToOverheads());
}

}  // namespace mlpm::backends
