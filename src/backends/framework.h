// Framework / runtime layer descriptions (paper §2.2, §5.2, §7.4).
//
// A framework choice determines the runtime overheads and the graph
// partitioning a model suffers on a given chipset:
//   * vendor SDKs (SNPE, ENN, Neuron) execute the compiled graph directly —
//     few partitions, cheap boundaries, full accelerator control, ALP in
//     offline mode;
//   * NNAPI inserts a hardware-abstraction layer — per-partition
//     synchronization, HAL buffer copies, possible op-coverage holes with
//     CPU fallback (the 7x "buggy delegate" pathology, §8 / App. D);
//   * the TFLite GPU delegate runs FP16 on the mobile GPU;
//   * OpenVINO is the laptop path (code path 3 of Fig. 5).
#pragma once

#include <cstdint>
#include <string>

#include "soc/compile.h"

namespace mlpm::backends {

enum class FrameworkKind : std::uint8_t {
  kVendorSdk,
  kNnapi,
  kTfliteDelegate,
  kOpenVino,
};

struct FrameworkTraits {
  std::string name;  // display label, e.g. "SNPE" / "NNAPI (neuron-ann)"
  FrameworkKind kind = FrameworkKind::kVendorSdk;
  double per_inference_overhead_us = 50.0;
  double per_partition_sync_us = 0.0;
  int force_partition_every = 0;  // HAL partition granularity (NNAPI)
  bool copies_boundary_tensors = false;
  // Fraction of ops the runtime must fall back to CPU for; >0 only for
  // generic runtimes with incomplete accelerator coverage.
  double cpu_fallback_fraction = 0.0;
  // Whether offline mode may run several accelerators concurrently (ALP).
  bool multi_accelerator_offline = true;
  // Vendor compilers fuse elementwise ops into the preceding kernel.
  bool fuses_elementwise = false;

  [[nodiscard]] soc::RuntimeOverheads ToOverheads() const {
    return soc::RuntimeOverheads{per_inference_overhead_us * 1e-6,
                                 per_partition_sync_us * 1e-6,
                                 copies_boundary_tensors,
                                 fuses_elementwise};
  }
};

// Canonical trait sets.
[[nodiscard]] FrameworkTraits VendorSdkTraits(std::string name);
[[nodiscard]] FrameworkTraits NnapiTraits(std::string driver_label);
// `buggy_fallback_fraction` > 0 reproduces the poor/buggy-op pathology that
// makes NNAPI up to 7x slower than the vendor path (App. D).
[[nodiscard]] FrameworkTraits NnapiBuggyTraits(std::string driver_label,
                                               double fallback_fraction);
[[nodiscard]] FrameworkTraits TfliteGpuDelegateTraits();
[[nodiscard]] FrameworkTraits OpenVinoTraits();

}  // namespace mlpm::backends
