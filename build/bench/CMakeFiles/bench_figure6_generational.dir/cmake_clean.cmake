file(REMOVE_RECURSE
  "CMakeFiles/bench_figure6_generational.dir/bench_figure6_generational.cpp.o"
  "CMakeFiles/bench_figure6_generational.dir/bench_figure6_generational.cpp.o.d"
  "bench_figure6_generational"
  "bench_figure6_generational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure6_generational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
