// The approved calibration set (paper §5.1): a fixed ~500-sample subset of
// the training split that is the only data submitters may use for PTQ.
#pragma once

#include <cstdint>
#include <vector>

#include "datasets/task_dataset.h"
#include "quant/calibration.h"

namespace mlpm::datasets {

// The officially approved calibration indices: a seeded, fixed selection.
// All submitters (and the audit) derive the identical set.
[[nodiscard]] std::vector<std::size_t> ApprovedCalibrationIndices(
    std::size_t pool_size, std::size_t count, std::uint64_t official_seed);

// Materializes calibration samples from a dataset for the given indices.
[[nodiscard]] std::vector<quant::CalibrationSample> GatherCalibrationSamples(
    const TaskDataset& dataset, std::span<const std::size_t> indices);

}  // namespace mlpm::datasets
