#include "harness/checker.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "common/statistics.h"
#include "common/table.h"
#include "datasets/calibration_set.h"
#include "harness/task_bundle.h"

namespace mlpm::harness {
namespace {

bool Near(double a, double b, double rel_tol) {
  const double scale = std::max(std::abs(a), std::abs(b));
  return scale == 0.0 || std::abs(a - b) <= rel_tol * scale;
}

}  // namespace

CheckReport CheckPerformanceLog(const std::string& serialized_log,
                                const loadgen::TestSettings& expected) {
  CheckReport report;
  loadgen::TestLog log;
  try {
    log = loadgen::TestLog::Parse(serialized_log);
  } catch (const CheckError& e) {
    report.Problem(std::string("unparseable log: ") + e.what());
    return report;
  }

  const auto field = [&](const std::string& key) -> std::string {
    const std::string* v = log.FieldOrNull(key);
    if (v == nullptr) {
      report.Problem("missing log field: " + key);
      return {};
    }
    return *v;
  };

  if (field("seed") != std::to_string(expected.seed))
    report.Problem("seed differs from the official seed");
  if (field("scenario") != std::string(ToString(expected.scenario)))
    report.Problem("scenario mismatch");
  if (field("mode") != std::string(ToString(expected.mode)))
    report.Problem("mode mismatch");

  // Reconstruct per-query latencies from raw events.  Shed and rejected
  // queries (DESIGN.md §12) resolve without a completion: shed queries
  // were never issued to the SUT at all, rejected ones were fast-failed
  // by an open breaker — neither contributes a latency sample, and
  // neither may be double-counted as never-completed.
  std::unordered_map<std::uint64_t, double> issued;
  std::vector<double> latencies;
  std::size_t shed_events = 0, rejected_events = 0;
  double first_issue = -1.0, last_complete = 0.0;
  double last_issue_time = -1.0;
  bool outstanding = false;
  bool serialized = true;
  for (const loadgen::LogEvent& e : log.events()) {
    const double t = e.timestamp.count();
    if (e.kind == loadgen::LogEventKind::kQueryIssued) {
      if (issued.contains(e.query_id)) {
        report.Problem("query " + std::to_string(e.query_id) +
                       " issued twice");
      }
      if (outstanding) serialized = false;
      outstanding = true;
      issued[e.query_id] = t;
      if (first_issue < 0) first_issue = t;
      if (t < last_issue_time)
        report.Problem("issue timestamps are not monotonic");
      last_issue_time = t;
    } else if (e.kind == loadgen::LogEventKind::kQueryShed) {
      if (issued.contains(e.query_id))
        report.Problem("query " + std::to_string(e.query_id) +
                       " both issued and shed");
      ++shed_events;
    } else if (e.kind == loadgen::LogEventKind::kQueryRejected) {
      const auto it = issued.find(e.query_id);
      if (it == issued.end()) {
        report.Problem("rejection for unknown query " +
                       std::to_string(e.query_id));
        continue;
      }
      ++rejected_events;
      issued.erase(it);
      if (issued.empty()) outstanding = false;
    } else {
      const auto it = issued.find(e.query_id);
      if (it == issued.end()) {
        report.Problem("completion for unknown query " +
                       std::to_string(e.query_id));
        continue;
      }
      if (t < it->second)
        report.Problem("query " + std::to_string(e.query_id) +
                       " completed before it was issued");
      latencies.push_back(t - it->second);
      last_complete = std::max(last_complete, t);
      issued.erase(it);
      if (issued.empty()) outstanding = false;
    }
  }
  const std::size_t never_completed = issued.size();
  if (never_completed > 0)
    report.Problem(std::to_string(never_completed) +
                   " queries were never completed");
  if (latencies.empty()) {
    report.Problem("log contains no completed queries");
    return report;
  }

  const double duration = last_complete - first_issue;
  switch (expected.scenario) {
    case loadgen::TestScenario::kSingleStream:
      if (!serialized)
        report.Problem("single-stream queries overlapped in flight");
      if (latencies.size() < expected.min_query_count)
        report.Problem("fewer than " +
                       std::to_string(expected.min_query_count) +
                       " samples");
      if (duration + 1e-9 < expected.min_duration.count())
        report.Problem("run shorter than the 60 s minimum");
      break;
    case loadgen::TestScenario::kOffline:
      if (latencies.size() != expected.offline_sample_count)
        report.Problem("offline sample count is not " +
                       std::to_string(expected.offline_sample_count));
      break;
    case loadgen::TestScenario::kServer: {
      // Every offered query must be accounted for exactly once: completed,
      // shed by admission control, rejected by the breaker, or flagged
      // above as never completed (DESIGN.md §12).
      const std::size_t accounted =
          latencies.size() + shed_events + rejected_events + never_completed;
      if (accounted != expected.server_query_count)
        report.Problem("server query accounting is " +
                       std::to_string(accounted) + ", not " +
                       std::to_string(expected.server_query_count));
      if (expected.server_max_queue_depth > 0 &&
          static_cast<double>(shed_events + rejected_events) >
              expected.server_max_shed_fraction *
                      static_cast<double>(expected.server_query_count) +
                  1e-9)
        report.Problem("server shed/rejected more than the allowed " +
                       FormatDouble(expected.server_max_shed_fraction * 100,
                                    1) +
                       "% of offered queries");
      // The latency SLO applies to the accepted queries only; shed
      // queries were refused precisely so the accepted ones could meet it.
      const double pct =
          Percentile(latencies, expected.latency_percentile);
      if (pct > expected.server_latency_bound.count() + 1e-9)
        report.Problem("server percentile latency exceeds the bound");
      break;
    }
    case loadgen::TestScenario::kMultiStream: {
      const std::size_t expected_samples =
          expected.multistream_query_count *
          expected.multistream_samples_per_query;
      if (latencies.size() != expected_samples)
        report.Problem("multi-stream sample count is not " +
                       std::to_string(expected_samples));
      // Re-derive per-query latency: samples of one query share the
      // scheduled issue timestamp; the query finishes with its last sample.
      std::map<double, double> per_query;  // scheduled -> max completion
      std::unordered_map<std::uint64_t, double> issue_at;
      for (const loadgen::LogEvent& e : log.events()) {
        if (e.kind == loadgen::LogEventKind::kQueryIssued) {
          issue_at[e.query_id] = e.timestamp.count();
        } else if (issue_at.contains(e.query_id)) {
          const double sched = issue_at[e.query_id];
          auto [it, inserted] =
              per_query.try_emplace(sched, e.timestamp.count());
          if (!inserted)
            it->second = std::max(it->second, e.timestamp.count());
        }
      }
      std::vector<double> query_lat;
      query_lat.reserve(per_query.size());
      for (const auto& [sched, done] : per_query)
        query_lat.push_back(done - sched);
      if (!query_lat.empty() &&
          Percentile(query_lat, expected.latency_percentile) >
              expected.multistream_interval.count() + 1e-9)
        report.Problem("multi-stream queries overflow the frame interval");
      break;
    }
  }

  // Cross-check the reported summary against the raw events.
  // (Multi-stream reports a per-query percentile, recomputed above.)
  if (const std::string* rep = log.FieldOrNull("result_percentile_latency_s");
      rep != nullptr &&
      (expected.scenario == loadgen::TestScenario::kSingleStream ||
       expected.scenario == loadgen::TestScenario::kServer)) {
    const double recomputed =
        Percentile(latencies, expected.latency_percentile);
    if (!Near(std::stod(*rep), recomputed, 1e-3))
      report.Problem("reported percentile latency does not match events");
  }
  if (const std::string* rep = log.FieldOrNull("result_throughput_sps");
      rep != nullptr) {
    const double recomputed =
        duration > 0 ? static_cast<double>(latencies.size()) / duration : 0;
    if (!Near(std::stod(*rep), recomputed, 1e-3))
      report.Problem("reported throughput does not match events");
  }
  return report;
}

CheckReport CheckTaskRun(const TaskRunResult& task,
                         const loadgen::TestSettings& expected) {
  CheckReport report;

  // Quality gate: performance results only count above the threshold.
  // (dataset_size == 0 means accuracy mode was skipped, e.g. an
  // engineering performance-only run, which is not a submission.)
  if (task.dataset_size > 0 && !task.quality_passed)
    report.Problem(task.entry.id + ": accuracy " +
                   std::to_string(task.ratio_to_fp32) +
                   " of FP32 is below the quality target " +
                   std::to_string(task.entry.quality_target));

  // Accuracy mode must cover the entire validation set (§4.1).
  if (task.dataset_size > 0 &&
      task.accuracy_sample_count != task.dataset_size)
    report.Problem(task.entry.id + ": accuracy mode scored " +
                   std::to_string(task.accuracy_sample_count) + " of " +
                   std::to_string(task.dataset_size) +
                   " validation samples");

  // Calibration legality (INT8 submissions only).
  if (IsQuantized(task.numerics)) {
    const std::vector<std::size_t> approved =
        datasets::ApprovedCalibrationIndices(
            kCalibrationPoolSize, kCalibrationSetSize, kCalibrationSeed);
    const quant::LegalityReport cal =
        quant::CheckCalibrationSet(approved, task.calibration_indices);
    for (const std::string& v : cal.violations) report.Problem(v);
  }

  if (task.single_stream) {
    loadgen::TestSettings ss = expected;
    ss.scenario = loadgen::TestScenario::kSingleStream;
    ss.mode = loadgen::TestMode::kPerformanceOnly;
    CheckReport log_report =
        CheckPerformanceLog(task.single_stream->log.Serialize(), ss);
    for (std::string& p : log_report.problems)
      report.Problem(task.entry.id + ": " + p);
  }
  if (task.offline) {
    loadgen::TestSettings off = expected;
    off.scenario = loadgen::TestScenario::kOffline;
    off.mode = loadgen::TestMode::kPerformanceOnly;
    CheckReport log_report =
        CheckPerformanceLog(task.offline->log.Serialize(), off);
    for (std::string& p : log_report.problems)
      report.Problem(task.entry.id + " (offline): " + p);
  }
  return report;
}

CheckReport CheckSubmission(const SubmissionResult& submission,
                            const loadgen::TestSettings& expected) {
  CheckReport report;
  if (submission.tasks.empty()) report.Problem("submission has no tasks");
  for (const TaskRunResult& t : submission.tasks) {
    CheckReport task_report = CheckTaskRun(t, expected);
    for (std::string& p : task_report.problems) report.Problem(std::move(p));
  }
  return report;
}

}  // namespace mlpm::harness
