// Extension — power measurement (paper App. E: "evaluating mobile AI's
// power draw is important... most smartphone chipsets are capped at a 3 W
// TDP").  Reports per-inference energy, average power and efficiency
// (inferences per joule) for every v1.0 smartphone submission, plus the
// generational efficiency gain.
#include <cstdio>

#include "backends/vendor_policy.h"
#include "soc/battery.h"
#include "common/table.h"
#include "models/zoo.h"
#include "soc/simulator.h"

namespace {

using namespace mlpm;

struct PowerNumbers {
  double latency_s;
  double energy_j;
};

PowerNumbers Measure(const soc::ChipsetDesc& chip, models::TaskType task,
                     models::SuiteVersion version) {
  const auto suite = models::SuiteFor(version);
  const models::BenchmarkEntry* entry = nullptr;
  for (const auto& e : suite)
    if (e.task == task) entry = &e;
  const graph::Graph model = models::BuildReferenceGraph(
      *entry, version, models::ModelScale::kFull);
  const backends::SubmissionConfig sub =
      backends::GetSubmission(chip, task, version);
  const soc::CompiledModel m =
      backends::CompileSubmission(chip, sub, model);
  return PowerNumbers{m.LatencySeconds(), m.EnergyJoules()};
}

}  // namespace

int main() {
  const auto version = models::SuiteVersion::kV1_0;
  TextTable t("power extension — v1.0 smartphone submissions");
  t.SetHeader({"Chipset", "Task", "latency", "mJ/inference", "avg W",
               "inf/J"});
  for (const soc::ChipsetDesc& chip :
       {soc::Dimensity1100(), soc::Exynos2100(), soc::Snapdragon888()}) {
    for (const models::BenchmarkEntry& e : models::SuiteFor(version)) {
      const PowerNumbers p = Measure(chip, e.task, version);
      t.AddRow({chip.name, e.id, FormatMs(p.latency_s),
                FormatDouble(p.energy_j * 1e3, 2),
                FormatDouble(p.energy_j / p.latency_s, 2),
                FormatDouble(1.0 / p.energy_j, 0)});
    }
    t.AddSeparator();
  }
  std::printf("%s\n", t.Render().c_str());

  // Generational efficiency: energy per classification inference.
  TextTable g("energy per image-classification inference, v0.7 vs v1.0");
  g.SetHeader({"Family", "v0.7 mJ", "v1.0 mJ", "efficiency gain"});
  const std::pair<soc::ChipsetDesc, soc::ChipsetDesc> fams[] = {
      {soc::Dimensity820(), soc::Dimensity1100()},
      {soc::Exynos990(), soc::Exynos2100()},
      {soc::Snapdragon865Plus(), soc::Snapdragon888()},
  };
  for (const auto& [v07, v10] : fams) {
    const double e07 =
        Measure(v07, models::TaskType::kImageClassification,
                models::SuiteVersion::kV0_7)
            .energy_j;
    const double e10 =
        Measure(v10, models::TaskType::kImageClassification,
                models::SuiteVersion::kV1_0)
            .energy_j;
    g.AddRow({v07.name + " -> " + v10.name, FormatDouble(e07 * 1e3, 2),
              FormatDouble(e10 * 1e3, 2),
              FormatDouble(e07 / e10, 2) + "x"});
  }
  std::printf("%s\n", g.Render().c_str());

  // Battery impact of a sustained assistant-style workload: 5 NLP queries
  // per minute plus a 1 Hz camera classification stream.
  TextTable b("battery estimate — 15 Wh battery, assistant workload");
  b.SetHeader({"Chipset", "avg AI power", "hours per charge",
               "AI inferences per charge"});
  for (const soc::ChipsetDesc& chip :
       {soc::Dimensity1100(), soc::Exynos2100(), soc::Snapdragon888()}) {
    const PowerNumbers nlp = Measure(
        chip, models::TaskType::kQuestionAnswering, version);
    const PowerNumbers ic = Measure(
        chip, models::TaskType::kImageClassification, version);
    soc::WorkloadDraw mix;
    mix.inferences_per_second = 5.0 / 60.0 + 1.0;
    mix.energy_per_inference_j =
        ((5.0 / 60.0) * nlp.energy_j + 1.0 * ic.energy_j) /
        mix.inferences_per_second;
    const soc::BatterySpec battery;
    b.AddRow({chip.name,
              FormatDouble(soc::AveragePowerWatts(mix) * 1e3, 1) + " mW",
              FormatDouble(soc::HoursOfOperation(battery, mix), 1),
              FormatDouble(soc::InferencesPerCharge(battery, mix) / 1e3, 0) +
                  "k"});
  }
  std::printf("%s", b.Render().c_str());
  std::printf(
      "\nall phone submissions stay under the ~3 W TDP ceiling; efficiency\n"
      "roughly doubles per generation alongside latency (App. E).\n");
  return 0;
}
