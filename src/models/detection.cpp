#include "models/detection.h"

#include <algorithm>
#include <cmath>

namespace mlpm::models {

float BBox::IoU(const BBox& o) const {
  const float iy0 = std::max(ymin, o.ymin);
  const float ix0 = std::max(xmin, o.xmin);
  const float iy1 = std::min(ymax, o.ymax);
  const float ix1 = std::min(xmax, o.xmax);
  if (iy1 <= iy0 || ix1 <= ix0) return 0.0f;
  const float inter = (iy1 - iy0) * (ix1 - ix0);
  const float uni = Area() + o.Area() - inter;
  return uni > 0.0f ? inter / uni : 0.0f;
}

AnchorSet AnchorSet::Build(std::span<const FeatureMapSpec> maps) {
  AnchorSet set;
  for (const FeatureMapSpec& m : maps) {
    Expects(m.grid > 0, "feature map grid must be positive");
    Expects(!m.scales.empty() && !m.aspect_ratios.empty(),
            "feature map needs scales and aspect ratios");
    const float step = 1.0f / static_cast<float>(m.grid);
    for (std::int64_t gy = 0; gy < m.grid; ++gy) {
      for (std::int64_t gx = 0; gx < m.grid; ++gx) {
        const float cy = (static_cast<float>(gy) + 0.5f) * step;
        const float cx = (static_cast<float>(gx) + 0.5f) * step;
        for (float s : m.scales) {
          for (float ar : m.aspect_ratios) {
            const float root = std::sqrt(ar);
            set.anchors_.push_back(Anchor{cy, cx, s / root, s * root});
          }
        }
      }
    }
  }
  return set;
}

std::vector<Detection> DecodeDetections(std::span<const float> box_deltas,
                                        std::span<const float> class_logits,
                                        const AnchorSet& anchors,
                                        std::int64_t num_classes,
                                        const DecodeConfig& cfg) {
  const std::size_t n = anchors.size();
  Expects(box_deltas.size() == n * 4, "box delta count mismatch");
  Expects(class_logits.size() == n * static_cast<std::size_t>(num_classes),
          "class logit count mismatch");

  std::vector<Detection> raw;
  std::vector<float> probs(static_cast<std::size_t>(num_classes));
  for (std::size_t i = 0; i < n; ++i) {
    // Softmax over this anchor's class logits.
    const float* lg = class_logits.data() + i * num_classes;
    float m = lg[0];
    for (std::int64_t c = 1; c < num_classes; ++c) m = std::max(m, lg[c]);
    double sum = 0.0;
    for (std::int64_t c = 0; c < num_classes; ++c) {
      probs[static_cast<std::size_t>(c)] = std::exp(lg[c] - m);
      sum += probs[static_cast<std::size_t>(c)];
    }
    // Best non-background class.
    int best = -1;
    float best_p = 0.0f;
    for (std::int64_t c = 1; c < num_classes; ++c) {
      const float p =
          static_cast<float>(probs[static_cast<std::size_t>(c)] / sum);
      if (p > best_p) {
        best_p = p;
        best = static_cast<int>(c);
      }
    }
    if (best < 0 || best_p < cfg.score_threshold) continue;

    // Box decode (SSD faster-rcnn box coder).
    const Anchor& a = anchors.anchors()[i];
    const float ty = box_deltas[i * 4 + 0] / cfg.scale_xy;
    const float tx = box_deltas[i * 4 + 1] / cfg.scale_xy;
    const float th = box_deltas[i * 4 + 2] / cfg.scale_hw;
    const float tw = box_deltas[i * 4 + 3] / cfg.scale_hw;
    const float cy = ty * a.h + a.cy;
    const float cx = tx * a.w + a.cx;
    const float h = std::exp(std::min(th, 8.0f)) * a.h;
    const float w = std::exp(std::min(tw, 8.0f)) * a.w;
    BBox box{cy - h / 2, cx - w / 2, cy + h / 2, cx + w / 2};
    box.ymin = std::clamp(box.ymin, 0.0f, 1.0f);
    box.xmin = std::clamp(box.xmin, 0.0f, 1.0f);
    box.ymax = std::clamp(box.ymax, 0.0f, 1.0f);
    box.xmax = std::clamp(box.xmax, 0.0f, 1.0f);
    raw.push_back(Detection{box, best, best_p});
  }
  return Nms(std::move(raw), cfg.nms_iou_threshold, cfg.max_detections);
}

std::vector<Detection> Nms(std::vector<Detection> dets, float iou_threshold,
                           int max_detections) {
  std::sort(dets.begin(), dets.end(),
            [](const Detection& a, const Detection& b) {
              return a.score > b.score;
            });
  std::vector<Detection> kept;
  for (const Detection& d : dets) {
    if (static_cast<int>(kept.size()) >= max_detections) break;
    bool suppressed = false;
    for (const Detection& k : kept) {
      if (k.class_id == d.class_id && k.box.IoU(d.box) > iou_threshold) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) kept.push_back(d);
  }
  return kept;
}

}  // namespace mlpm::models
