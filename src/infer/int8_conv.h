// True-integer INT8 convolution: im2col + uint8 GEMM with INT32
// accumulation and float requantization — the production-style kernel path
// mobile inference stacks actually execute (the accuracy plane's fake-quant
// float kernels model its *numerics*; this is the *arithmetic*).
//
// Padding inserts the input zero-point (the quantized representation of
// 0.0), exactly as TFLite does, so SAME-padded borders stay exact.
//
// Weights are quantized once via PackConvWeights and reused across calls;
// ConvScratch lets a caller reuse the im2col / accumulator buffers between
// invocations instead of reallocating per call.  The legacy all-in-one
// overload packs on every call and is kept for compatibility.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/ops.h"
#include "infer/tensor.h"

namespace mlpm {
class ThreadPool;
}

namespace mlpm::infer::kernels {
struct KernelTable;
}

namespace mlpm::infer {

struct QuantizationParams {
  float scale = 1.0f;
  std::int32_t zero_point = 0;
};

// Derives asymmetric uint8 quantization parameters covering [min, max]
// (range widened to include zero; zero-point exact).
[[nodiscard]] QuantizationParams ChooseQuantParams(float min, float max);

// Weights quantized ahead of time: [O, KH*KW*C] row-major uint8, ready to
// be the transposed-B operand of the im2col GEMM.
struct PackedConvWeights {
  std::vector<std::uint8_t> data;
  QuantizationParams params;
  std::int64_t out_channels = 0;
  int kernel = 0;  // square kernel side
  std::int64_t in_channels = 0;
};

// Quantizes [O,KH,KW,C] float weights with the given parameters.
[[nodiscard]] PackedConvWeights PackConvWeights(
    const Tensor& weights, const QuantizationParams& weight_params);

// Reusable per-call working memory (grown on demand, never shrunk).
struct ConvScratch {
  std::vector<std::uint8_t> input_q;
  std::vector<std::uint8_t> cols;
  std::vector<std::int32_t> acc;
};

// Integer conv on a float input [1,H,W,C] against prepacked weights: the
// input is quantized with `input_params`, the GEMM runs in uint8/int32, and
// the result is dequantized back to float with the bias added.  Only
// SAME/VALID padding, square kernels, dilation 1.  `scratch` (optional)
// avoids per-call allocation; `pool` (optional) parallelizes im2col, GEMM
// row blocks, and requantization over independent output rows.  `table`
// (optional) runs the u8 GEMM through a runtime-dispatched SIMD kernel
// table (kernels/registry.h) — results are bit-identical for every table.
[[nodiscard]] Tensor ConvInt8NHWC(const Tensor& input,
                                  const PackedConvWeights& packed,
                                  const Tensor& bias, int stride,
                                  graph::Padding padding,
                                  const QuantizationParams& input_params,
                                  ConvScratch* scratch = nullptr,
                                  const ThreadPool* pool = nullptr,
                                  const kernels::KernelTable* table = nullptr);

// Legacy overload: packs the weights on every call, then runs the
// prepacked kernel.  Kept for callers without a prepack cache.
[[nodiscard]] Tensor ConvInt8NHWC(const Tensor& input, const Tensor& weights,
                                  const Tensor& bias, int stride,
                                  graph::Padding padding,
                                  const QuantizationParams& input_params,
                                  const QuantizationParams& weight_params);

}  // namespace mlpm::infer
