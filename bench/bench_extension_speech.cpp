// Extension — mobile speech recognition (paper App. E: "a mobile version of
// RNN-T for speech is in the works").
//
// Functional plane: FP32 / FP16 / INT8-PTQ token-error-rate ratios for the
// mini RNN-T encoder.  Performance plane: simulated single-stream latency
// of the full encoder on the v1.0 chipsets (CPU and NPU-class engines —
// recurrent layers are sequential, so this is also a stress test of
// low-parallelism scheduling).
#include <cstdio>

#include "backends/framework.h"
#include "common/table.h"
#include "datasets/calibration_set.h"
#include "datasets/speech_dataset.h"
#include "graph/cost.h"
#include "infer/executor.h"
#include "quant/calibration.h"
#include "soc/chipset.h"
#include "soc/compile.h"

int main() {
  using namespace mlpm;

  // Functional accuracy study.
  const models::RnntConfig mini_cfg = models::MiniRnntConfig();
  const graph::Graph mini = models::BuildMobileRnnt(mini_cfg);
  const infer::WeightStore weights = infer::InitializeWeights(mini, 7);
  const datasets::SpeechDataset dataset(mini, weights, mini_cfg, {});

  const auto score = [&](const infer::Executor& exec) {
    std::vector<std::vector<infer::Tensor>> outs;
    for (std::size_t i = 0; i < dataset.size(); ++i)
      outs.push_back(exec.Run(dataset.InputsFor(i)));
    return dataset.ScoreOutputs(outs);
  };
  const infer::Executor fp32(mini, weights);
  const infer::Executor fp16(mini, weights, infer::NumericsMode::kFp16);
  const auto idx = datasets::ApprovedCalibrationIndices(1000, 64, 0xCA11B);
  const auto samples = datasets::GatherCalibrationSamples(dataset, idx);
  const infer::QuantParams qp = quant::CalibratePtq(mini, weights, samples);
  const infer::Executor int8(mini, weights, infer::NumericsMode::kInt8, &qp);

  const double s32 = score(fp32);
  TextTable acc("mobile RNN-T encoder prototype — functional quality "
                "(1 - token error rate)");
  acc.SetHeader({"numerics", "1-WER", "ratio to FP32"});
  acc.AddRow({"FP32", FormatDouble(s32, 4), "100.0%"});
  acc.AddRow({"FP16", FormatDouble(score(fp16), 4),
              FormatPercent(score(fp16) / s32, 1)});
  acc.AddRow({"INT8 PTQ", FormatDouble(score(int8), 4),
              FormatPercent(score(int8) / s32, 1)});
  std::printf("%s\n", acc.Render().c_str());

  // Performance plane: the full encoder on phone engines.
  const graph::Graph full = models::BuildMobileRnnt(models::ModelScale::kFull);
  const graph::GraphCost cost = graph::AnalyzeGraph(full);
  std::printf("full encoder: %.1fM params, %.2f GMACs per utterance\n\n",
              static_cast<double>(full.ParameterCount()) / 1e6,
              cost.TotalGMacs());

  TextTable perf("simulated per-utterance latency (vendor SDK, FP16)");
  perf.SetHeader({"Chipset", "engine", "latency", "mJ/utterance"});
  struct Target {
    soc::ChipsetDesc chip;
    const char* engine;
  };
  const Target targets[] = {
      {soc::Dimensity1100(), "gpu"},  {soc::Exynos2100(), "gpu"},
      {soc::Snapdragon888(), "gpu"},  {soc::AppleA14(), "ane"},
      {soc::CoreI7_11375H(), "cpu"},
  };
  for (const Target& t : targets) {
    soc::ExecutionPolicy p;
    p.engines = {t.engine};
    const soc::CompiledModel m = soc::Compile(
        full, DataType::kFloat16, t.chip, p,
        backends::VendorSdkTraits("vendor").ToOverheads());
    perf.AddRow({t.chip.name, t.engine, FormatMs(m.LatencySeconds()),
                 FormatDouble(m.EnergyJoules() * 1e3, 1)});
  }
  std::printf("%s", perf.Render().c_str());
  std::printf(
      "\nspeech favors FP16 like the paper's NLP task; the recurrent "
      "encoder's\nsequential gemms make it a scheduling stress test for "
      "mobile accelerators.\n");
  return 0;
}
