file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_delegates.dir/bench_table3_delegates.cpp.o"
  "CMakeFiles/bench_table3_delegates.dir/bench_table3_delegates.cpp.o.d"
  "bench_table3_delegates"
  "bench_table3_delegates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_delegates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
