// Tests for the quality metrics: Top-1, COCO mAP, mIoU, SQuAD span F1.
#include <gtest/gtest.h>

#include "metrics/classification.h"
#include "metrics/f1.h"
#include "metrics/map.h"
#include "metrics/miou.h"

namespace mlpm::metrics {
namespace {

using models::BBox;
using models::Detection;

// ---- classification ----

TEST(Classification, ArgMaxPicksLargest) {
  const float logits[] = {0.1f, 0.9f, 0.3f};
  EXPECT_EQ(ArgMax(logits), 1);
}

TEST(Classification, ArgMaxTieBreaksLow) {
  const float logits[] = {0.5f, 0.5f};
  EXPECT_EQ(ArgMax(logits), 0);
}

TEST(Classification, TopKMembership) {
  const float logits[] = {0.1f, 0.9f, 0.3f, 0.05f};
  EXPECT_TRUE(InTopK(logits, 1, 1));
  EXPECT_FALSE(InTopK(logits, 2, 1));
  EXPECT_TRUE(InTopK(logits, 2, 2));
  EXPECT_FALSE(InTopK(logits, 3, 3));
  EXPECT_TRUE(InTopK(logits, 3, 4));
}

TEST(Classification, AccuracyCounts) {
  const int preds[] = {1, 2, 3, 4};
  const int labels[] = {1, 2, 0, 0};
  EXPECT_DOUBLE_EQ(TopOneAccuracy(preds, labels), 0.5);
}

TEST(Classification, AccuracyRejectsMismatch) {
  const std::vector<int> preds{1};
  const std::vector<int> labels{1, 2};
  EXPECT_THROW((void)TopOneAccuracy(preds, labels), CheckError);
}

// ---- IoU / mAP ----

TEST(BBoxIoU, IdenticalBoxesIouOne) {
  const BBox b{0.1f, 0.1f, 0.5f, 0.5f};
  EXPECT_FLOAT_EQ(b.IoU(b), 1.0f);
}

TEST(BBoxIoU, DisjointBoxesIouZero) {
  const BBox a{0.0f, 0.0f, 0.2f, 0.2f};
  const BBox b{0.5f, 0.5f, 0.9f, 0.9f};
  EXPECT_FLOAT_EQ(a.IoU(b), 0.0f);
}

TEST(BBoxIoU, HalfOverlap) {
  const BBox a{0.0f, 0.0f, 1.0f, 0.5f};
  const BBox b{0.0f, 0.0f, 1.0f, 1.0f};
  EXPECT_NEAR(a.IoU(b), 0.5f, 1e-6f);
}

TEST(BBoxIoU, Symmetric) {
  const BBox a{0.0f, 0.0f, 0.6f, 0.6f};
  const BBox b{0.3f, 0.3f, 0.9f, 0.9f};
  EXPECT_FLOAT_EQ(a.IoU(b), b.IoU(a));
}

ImageGroundTruth OneGt(int cls) {
  return {GroundTruthBox{BBox{0.2f, 0.2f, 0.6f, 0.6f}, cls}};
}

ImageDetections OneDet(int cls, float score,
                       BBox box = BBox{0.2f, 0.2f, 0.6f, 0.6f}) {
  return {Detection{box, cls, score}};
}

TEST(MeanAp, PerfectDetectionScoresOne) {
  const std::vector<ImageDetections> dets{OneDet(1, 0.9f)};
  const std::vector<ImageGroundTruth> gts{OneGt(1)};
  EXPECT_NEAR(MeanAveragePrecision(dets, gts, 0.5), 1.0, 1e-2);
}

TEST(MeanAp, WrongClassScoresZero) {
  const std::vector<ImageDetections> dets{OneDet(2, 0.9f)};
  const std::vector<ImageGroundTruth> gts{OneGt(1)};
  EXPECT_NEAR(MeanAveragePrecision(dets, gts, 0.5), 0.0, 1e-9);
}

TEST(MeanAp, MissedBoxLowersRecall) {
  std::vector<ImageDetections> dets{OneDet(1, 0.9f), {}};
  std::vector<ImageGroundTruth> gts{OneGt(1), OneGt(1)};
  const double ap = MeanAveragePrecision(dets, gts, 0.5);
  EXPECT_GT(ap, 0.3);
  EXPECT_LT(ap, 0.7);
}

TEST(MeanAp, FalsePositiveLowersPrecision) {
  std::vector<ImageDetections> dets{OneDet(1, 0.9f)};
  dets[0].push_back(
      Detection{BBox{0.7f, 0.7f, 0.9f, 0.9f}, 1, 0.95f});  // spurious, higher
  std::vector<ImageGroundTruth> gts{OneGt(1)};
  EXPECT_LT(MeanAveragePrecision(dets, gts, 0.5), 1.0);
}

TEST(MeanAp, DuplicateDetectionCountsOnceAsTp) {
  std::vector<ImageDetections> dets{
      {Detection{BBox{0.2f, 0.2f, 0.6f, 0.6f}, 1, 0.9f},
       Detection{BBox{0.2f, 0.2f, 0.6f, 0.6f}, 1, 0.8f}}};
  std::vector<ImageGroundTruth> gts{OneGt(1)};
  // Second detection is a false positive (GT already matched) but ranked
  // below the true positive, so AP stays at 1 over the recall range.
  EXPECT_NEAR(MeanAveragePrecision(dets, gts, 0.5), 1.0, 1e-2);
}

TEST(MeanAp, LooseBoxFailsAtHighThresholdOnly) {
  // Detection overlaps GT with IoU ~ 0.6.
  std::vector<ImageDetections> dets{
      OneDet(1, 0.9f, BBox{0.2f, 0.2f, 0.6f, 0.72f})};
  std::vector<ImageGroundTruth> gts{OneGt(1)};
  EXPECT_GT(MeanAveragePrecision(dets, gts, 0.5), 0.9);
  EXPECT_LT(MeanAveragePrecision(dets, gts, 0.9), 0.1);
}

TEST(MeanAp, CocoMapAveragesThresholds) {
  std::vector<ImageDetections> dets{
      OneDet(1, 0.9f, BBox{0.2f, 0.2f, 0.6f, 0.72f})};
  std::vector<ImageGroundTruth> gts{OneGt(1)};
  const double coco = CocoMap(dets, gts);
  EXPECT_GT(coco, 0.1);
  EXPECT_LT(coco, 0.9);
}

TEST(MeanAp, EmptyGroundTruthGivesZero) {
  std::vector<ImageDetections> dets{OneDet(1, 0.9f)};
  std::vector<ImageGroundTruth> gts{{}};
  EXPECT_EQ(MeanAveragePrecision(dets, gts, 0.5), 0.0);
}

TEST(MeanAp, ImageCountMismatchThrows) {
  std::vector<ImageDetections> dets{OneDet(1, 0.9f)};
  std::vector<ImageGroundTruth> gts;
  EXPECT_THROW((void)AveragePrecision(dets, gts, 1, 0.5), CheckError);
}

// ---- mIoU ----

TEST(MIoU, PerfectPredictionScoresOne) {
  MIoUAccumulator acc(3);
  const int labels[] = {0, 1, 2, 1, 0};
  acc.Add(labels, labels);
  EXPECT_DOUBLE_EQ(acc.MeanIoU(), 1.0);
}

TEST(MIoU, AllWrongScoresZero) {
  MIoUAccumulator acc(2);
  const int preds[] = {1, 1, 1};
  const int labels[] = {0, 0, 0};
  acc.Add(preds, labels);
  EXPECT_DOUBLE_EQ(acc.MeanIoU(), 0.0);
}

TEST(MIoU, KnownConfusionValue) {
  MIoUAccumulator acc(2);
  // class0: 2 TP, 1 FN (pred 1); class1: 1 TP, 1 FP.
  const int preds[] = {0, 0, 1, 1};
  const int labels[] = {0, 0, 0, 1};
  acc.Add(preds, labels);
  // IoU0 = 2/(2+0+1)=2/3 ; IoU1 = 1/(1+1+0)=1/2.
  EXPECT_NEAR(acc.MeanIoU(), (2.0 / 3.0 + 0.5) / 2.0, 1e-9);
}

TEST(MIoU, IgnoreLabelExcluded) {
  MIoUAccumulator acc(3, /*ignore_label=*/2);
  const int preds[] = {0, 1, 0};
  const int labels[] = {0, 2, 2};  // two ignored pixels
  acc.Add(preds, labels);
  EXPECT_DOUBLE_EQ(acc.MeanIoU(), 1.0);
}

TEST(MIoU, AbsentClassesDoNotDiluteMean) {
  MIoUAccumulator acc(10);
  const int labels[] = {0, 0, 1};
  acc.Add(labels, labels);
  EXPECT_DOUBLE_EQ(acc.MeanIoU(), 1.0);
}

TEST(MIoU, OutOfRangeLabelThrows) {
  MIoUAccumulator acc(2);
  const int preds[] = {0};
  const int labels[] = {5};
  EXPECT_THROW(acc.Add(preds, labels), CheckError);
}

TEST(MIoU, StreamingAccumulationMatchesBatch) {
  MIoUAccumulator one(3);
  MIoUAccumulator two(3);
  const int p1[] = {0, 1, 2};
  const int l1[] = {0, 1, 1};
  const int p2[] = {2, 2};
  const int l2[] = {2, 0};
  one.Add(p1, l1);
  one.Add(p2, l2);
  std::vector<int> pall{0, 1, 2, 2, 2};
  std::vector<int> lall{0, 1, 1, 2, 0};
  two.Add(pall, lall);
  EXPECT_DOUBLE_EQ(one.MeanIoU(), two.MeanIoU());
}

// ---- F1 ----

TEST(SpanF1, ExactMatchScoresOne) {
  EXPECT_DOUBLE_EQ(SpanF1({3, 7}, {3, 7}), 1.0);
}

TEST(SpanF1, DisjointScoresZero) {
  EXPECT_DOUBLE_EQ(SpanF1({0, 2}, {5, 9}), 0.0);
}

TEST(SpanF1, PartialOverlapKnownValue) {
  // pred [0,3] (4 tokens), truth [2,5] (4 tokens), overlap 2.
  // P = 2/4, R = 2/4, F1 = 0.5.
  EXPECT_DOUBLE_EQ(SpanF1({0, 3}, {2, 5}), 0.5);
}

TEST(SpanF1, AsymmetricLengths) {
  // pred [2,2] (1 token) inside truth [0,9] (10 tokens): P=1, R=0.1.
  EXPECT_NEAR(SpanF1({2, 2}, {0, 9}), 2 * 1.0 * 0.1 / 1.1, 1e-9);
}

TEST(SpanF1, MeanAndExactMatch) {
  const std::vector<TokenSpan> preds{{0, 1}, {4, 6}};
  const std::vector<TokenSpan> truths{{0, 1}, {0, 1}};
  EXPECT_DOUBLE_EQ(MeanSpanF1(preds, truths), 0.5);
  EXPECT_DOUBLE_EQ(ExactMatch(preds, truths), 0.5);
}

TEST(BestSpan, PicksArgmaxPair) {
  const float start[] = {0.0f, 5.0f, 0.0f, 0.0f};
  const float end[] = {0.0f, 0.0f, 4.0f, 0.0f};
  const TokenSpan s = BestSpan(start, end);
  EXPECT_EQ(s.start, 1);
  EXPECT_EQ(s.end, 2);
}

TEST(BestSpan, RespectsEndAfterStart) {
  const float start[] = {0.0f, 0.0f, 9.0f};
  const float end[] = {9.0f, 0.0f, 0.0f};
  const TokenSpan s = BestSpan(start, end);
  EXPECT_LE(s.start, s.end);
}

TEST(BestSpan, RespectsMaxLength) {
  const float start[] = {9.0f, 0.0f, 0.0f, 0.0f, 0.0f};
  const float end[] = {0.0f, 0.0f, 0.0f, 0.0f, 9.0f};
  const TokenSpan s = BestSpan(start, end, /*max_length=*/2);
  EXPECT_LE(s.length(), 2);
}

}  // namespace
}  // namespace mlpm::metrics
