// Identity cancellation: removes nodes that provably copy their input —
// kActivation with kNone, kReshape whose output shape equals its input
// shape, and single-input kConcat.  A copy of an already-rounded tensor is
// idempotent under every numerics mode (re-rounding / re-fake-quantizing a
// value that sits on the grid is a no-op), so cancellation is exact —
// EXCEPT when the copy consumes a raw graph input: the executor applies
// numerics only at node outputs, so that copy is the input's *first*
// rounding point and removing it changes FP16/INT8 results.  That case is
// numerics-gated instead.
//
// Same-size kResizeBilinear is deliberately NOT cancelled: its arithmetic
// path can normalize -0.0 to +0.0, so it is not a bit-exact copy.  1x1/s1
// pools are left alone for the same conservatism.

#include "transform/pass_util.h"
#include "transform/passes.h"

namespace mlpm::transform {
namespace {

class IdentityCancelPass final : public TransformPass {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "identity-cancel";
  }
  [[nodiscard]] std::span<const Invariant> preserved() const override {
    return kAllInvariants;
  }

  void Run(MutableGraph& g, PassContext& ctx) const override {
    using graph::OpType;
    // Cancelling a *dead* identity would strand its input's producer (a new
    // GRAPH001 finding the XFM007 gate would veto); dead code belongs to
    // dead-node-elim.  Kills only rewire through surviving edges, so the
    // upfront reachability stays valid across the loop.
    const std::vector<bool> reachable = detail::ReachableNodes(g);
    for (std::size_t i = 0; i < g.nodes().size(); ++i) {
      if (!g.alive(i) || !reachable[i]) continue;
      const graph::Node& n = g.nodes()[i];
      bool identity = false;
      switch (n.op) {
        case OpType::kActivation:
          identity = std::get<graph::ActivationAttrs>(n.attrs).activation ==
                     graph::Activation::kNone;
          break;
        case OpType::kReshape:
          identity = n.inputs.size() == 1 &&
                     g.tensor(n.output).shape == g.tensor(n.inputs[0]).shape;
          break;
        case OpType::kConcat:
          identity = n.inputs.size() == 1;
          break;
        default:
          break;
      }
      if (!identity) continue;

      const graph::TensorId in = n.inputs[0];
      const graph::TensorId out = n.output;
      // Cancelling a node that bridges a graph input straight to a graph
      // output would alias the two; keep it as an explicit copy.
      if (g.IsGraphInput(in) && g.IsGraphOutput(out)) continue;
      // A copy fed by a raw graph input is that input's first numerics
      // point (see header comment) — only a no-op at FP32.
      if (ctx.mode != infer::NumericsMode::kFp32 && g.IsGraphInput(in)) {
        ctx.Skip("cancelling '" + n.name +
                 "' would drop the first numerics point after graph input '" +
                 g.tensor(in).name + "'");
        continue;
      }

      detail::Rewire(g, ctx, out, in);
      g.Kill(i);
      ctx.Touch(n.name);
      ++ctx.rewrites;
    }
  }
};

}  // namespace

std::unique_ptr<TransformPass> MakeIdentityCancelPass() {
  return std::make_unique<IdentityCancelPass>();
}

}  // namespace mlpm::transform
