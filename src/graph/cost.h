// Static cost analysis of a graph: multiply-accumulate counts, parameter
// bytes and activation traffic per node.
//
// These numbers drive the SoC performance model (src/soc): per-layer latency
// is max(compute-time, memory-time) for the op's MACs and bytes on the
// assigned accelerator.  They also back the paper-fidelity checks (Table 1
// parameter counts: 4M / 17M / 4M / 2M / 25M).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"

namespace mlpm::graph {

struct NodeCost {
  std::int64_t macs = 0;          // multiply-accumulates
  std::int64_t weight_elems = 0;  // parameter elements read
  std::int64_t input_elems = 0;   // activation elements read
  std::int64_t output_elems = 0;  // activation elements written
  OpClass op_class = OpClass::kElementwise;
  // Dilated (atrous) convolution — mobile accelerators often run these at a
  // fraction of their dense-conv rate (DeepLab's ASPP-era backbones).
  bool dilated = false;

  // Bytes moved for a given numerics choice (weights + activations share the
  // format in this model, as they do in TFLite INT8 / FP16 deployments).
  [[nodiscard]] std::int64_t TotalBytes(DataType dtype) const {
    return static_cast<std::int64_t>(ByteSize(dtype)) *
           (weight_elems + input_elems + output_elems);
  }
};

struct GraphCost {
  std::vector<NodeCost> per_node;  // parallel to graph.nodes()
  std::int64_t total_macs = 0;
  std::int64_t total_weight_elems = 0;

  [[nodiscard]] double TotalGMacs() const {
    return static_cast<double>(total_macs) * 1e-9;
  }
};

// Cost of a single node within its graph.
[[nodiscard]] NodeCost AnalyzeNode(const Graph& g, const Node& n);

// Cost of every node plus totals.
[[nodiscard]] GraphCost AnalyzeGraph(const Graph& g);

}  // namespace mlpm::graph
