file(REMOVE_RECURSE
  "CMakeFiles/mlpm_soc.dir/battery.cpp.o"
  "CMakeFiles/mlpm_soc.dir/battery.cpp.o.d"
  "CMakeFiles/mlpm_soc.dir/catalog.cpp.o"
  "CMakeFiles/mlpm_soc.dir/catalog.cpp.o.d"
  "CMakeFiles/mlpm_soc.dir/compile.cpp.o"
  "CMakeFiles/mlpm_soc.dir/compile.cpp.o.d"
  "CMakeFiles/mlpm_soc.dir/simulator.cpp.o"
  "CMakeFiles/mlpm_soc.dir/simulator.cpp.o.d"
  "CMakeFiles/mlpm_soc.dir/thermal.cpp.o"
  "CMakeFiles/mlpm_soc.dir/thermal.cpp.o.d"
  "CMakeFiles/mlpm_soc.dir/trace.cpp.o"
  "CMakeFiles/mlpm_soc.dir/trace.cpp.o.d"
  "libmlpm_soc.a"
  "libmlpm_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlpm_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
