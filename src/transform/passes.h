// The shipped pass set (DESIGN.md §14).
//
// Pipeline order matters and DefaultPipeline (pass_manager.h) encodes it:
//
//   split-activations      canonicalization: un-fuses conv/fc activations
//                          into standalone kActivation nodes so the fusion
//                          pass has a uniform pattern to match (the frozen
//                          reference models ship pre-fused).  Marks every
//                          node it creates as synthetic.
//   constant-fold          evaluates nodes whose inputs are all constants
//                          through the reference executor (FP32 only) and
//                          replaces them with kConstant nodes.
//   identity-cancel        removes provable copies: no-op activations,
//                          same-shape reshapes, single-input concats.
//   elementwise-chain      collapses adjacent relu/relu6 chains whose
//                          composition is itself a single clamp.
//   fuse-conv-activation   fuses a standalone activation back into its
//                          producing conv/dwconv/fc.  Synthetic activations
//                          fuse in every numerics mode (exact round trip);
//                          pre-existing ones are gated per mode because
//                          fusing them removes a quantization point.
//   dead-node-elim         drops nodes with no dataflow path to an output.
//
// Numerics gates (XFM004): every rewrite here is bit-exact under FP32.
// Under FP16 only clamp-family rewrites (relu/relu6) commute with the
// per-node rounding and are kept.  Under INT8 any rewrite that adds or
// removes a fake-quantization point is refused; only identity cancellation,
// synthetic re-fusion and dead-node elimination survive the gate.
#pragma once

#include <memory>

#include "transform/pass.h"

namespace mlpm::transform {

[[nodiscard]] std::unique_ptr<TransformPass> MakeSplitActivationsPass();
[[nodiscard]] std::unique_ptr<TransformPass> MakeConstantFoldPass();
[[nodiscard]] std::unique_ptr<TransformPass> MakeIdentityCancelPass();
[[nodiscard]] std::unique_ptr<TransformPass> MakeElementwiseChainPass();
[[nodiscard]] std::unique_ptr<TransformPass> MakeFuseConvActivationPass();
[[nodiscard]] std::unique_ptr<TransformPass> MakeDeadNodeElimPass();

}  // namespace mlpm::transform
