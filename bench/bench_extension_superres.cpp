// Extension — super-resolution (paper App. E: an important evolving use
// case left out of the initial suite).  The one task with real ground
// truth: PSNR against the original high-resolution image.
//
// Functional plane: the untrained residual CNN vs the bilinear baseline
// (the network adds residual detail on top of bilinear upsampling, so even
// random residual weights stay near the baseline — and numerics effects
// are measured exactly as the suite measures them).  Performance plane:
// the full 240->480 model across the v1.0 phones.
#include <cstdio>

#include "backends/framework.h"
#include "common/table.h"
#include "datasets/calibration_set.h"
#include "datasets/preprocess.h"
#include "datasets/superres_dataset.h"
#include "graph/cost.h"
#include "infer/executor.h"
#include "infer/weights.h"
#include "models/superres.h"
#include "quant/calibration.h"
#include "soc/chipset.h"
#include "soc/compile.h"

int main() {
  using namespace mlpm;

  const models::SuperResConfig mini_cfg = models::MiniSuperResConfig();
  const graph::Graph mini = models::BuildSuperResolution(mini_cfg);
  const infer::WeightStore weights =
      models::InitializeSuperResWeights(mini, 7);
  datasets::SuperResDatasetConfig dc;
  dc.lr_size = mini_cfg.lr_size;
  const datasets::SuperResDataset dataset(dc);

  const auto run_all = [&](const infer::Executor& exec) {
    std::vector<std::vector<infer::Tensor>> outs;
    for (std::size_t i = 0; i < dataset.size(); ++i)
      outs.push_back(exec.Run(dataset.InputsFor(i)));
    return outs;
  };

  // Bilinear baseline: just upsample the LR input.
  std::vector<std::vector<infer::Tensor>> baseline;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    std::vector<infer::Tensor> o;
    o.push_back(datasets::ResizeBilinear(dataset.InputsFor(i)[0],
                                         dc.lr_size * 2, dc.lr_size * 2));
    baseline.push_back(std::move(o));
  }

  const infer::Executor fp32(mini, weights);
  const infer::Executor fp16(mini, weights, infer::NumericsMode::kFp16);
  const auto idx = datasets::ApprovedCalibrationIndices(1000, 64, 0xCA11B);
  const auto samples = datasets::GatherCalibrationSamples(dataset, idx);
  const infer::QuantParams qp = quant::CalibratePtq(mini, weights, samples);
  const infer::Executor int8(mini, weights, infer::NumericsMode::kInt8, &qp);

  TextTable acc("super-resolution prototype — mean PSNR (dB), 2x upscale");
  acc.SetHeader({"pipeline", "PSNR"});
  acc.AddRow({"bilinear baseline", FormatDouble(
                                       dataset.MeanPsnrDb(baseline), 2)});
  acc.AddRow({"model FP32", FormatDouble(dataset.MeanPsnrDb(run_all(fp32)),
                                         2)});
  acc.AddRow({"model FP16", FormatDouble(dataset.MeanPsnrDb(run_all(fp16)),
                                         2)});
  acc.AddRow({"model INT8 PTQ",
              FormatDouble(dataset.MeanPsnrDb(run_all(int8)), 2)});
  std::printf("%s\n", acc.Render().c_str());

  const graph::Graph full =
      models::BuildSuperResolution(models::ModelScale::kFull);
  const graph::GraphCost cost = graph::AnalyzeGraph(full);
  std::printf("full model (240->480): %.2fM params, %.1f GMACs per frame\n\n",
              static_cast<double>(full.ParameterCount()) / 1e6,
              cost.TotalGMacs());

  TextTable perf("simulated per-frame latency (vendor SDK, INT8)");
  perf.SetHeader({"Chipset", "engine", "latency", "fps"});
  struct Target {
    soc::ChipsetDesc chip;
    const char* engine;
  };
  for (const Target& t :
       {Target{soc::Dimensity1100(), "apu"}, Target{soc::Exynos2100(), "npu"},
        Target{soc::Snapdragon888(), "hta"},
        Target{soc::AppleA14(), "ane"}}) {
    soc::ExecutionPolicy p;
    p.engines = {t.engine};
    const soc::CompiledModel m = soc::Compile(
        full, DataType::kInt8, t.chip, p,
        backends::VendorSdkTraits("vendor").ToOverheads());
    perf.AddRow({t.chip.name, t.engine, FormatMs(m.LatencySeconds()),
                 FormatDouble(1.0 / m.LatencySeconds(), 1)});
  }
  std::printf("%s", perf.Render().c_str());
  std::printf(
      "\nSR is the \"heavy-weight\" end of the paper's use-case spectrum\n"
      "(§3.1): ~10x the compute of classification per frame, pushing\n"
      "sustained-rate (and thermal) limits rather than single-shot "
      "latency.\n");
  return 0;
}
