#include "models/rnnt.h"

#include <string>

namespace mlpm::models {

RnntConfig MiniRnntConfig() {
  RnntConfig c;
  c.frames = 32;
  c.feature_dim = 8;
  c.hidden_dim = 16;
  c.encoder_layers = 2;
  c.time_reduction_after = 1;
  c.vocab_size = 24;
  return c;
}

graph::Graph BuildMobileRnnt(ModelScale scale) {
  return BuildMobileRnnt(scale == ModelScale::kFull ? RnntConfig{}
                                                    : MiniRnntConfig());
}

graph::Graph BuildMobileRnnt(const RnntConfig& cfg) {
  Expects(cfg.frames % 2 == 0, "frame count must be even (time reduction)");
  Expects(cfg.time_reduction_after >= 1 &&
              cfg.time_reduction_after < cfg.encoder_layers,
          "time reduction must fall inside the encoder stack");
  graph::GraphBuilder b("mobile_rnnt_encoder");
  graph::TensorId x = b.Input("features", {cfg.frames, cfg.feature_dim});

  for (int layer = 0; layer < cfg.encoder_layers; ++layer) {
    x = b.Lstm(x, cfg.hidden_dim, "enc" + std::to_string(layer));
    if (layer + 1 == cfg.time_reduction_after) {
      // Streaming time reduction: stack adjacent frame pairs.
      const auto& s = b.ShapeOf(x);
      x = b.Reshape(x, {s.dim(0) / 2, s.dim(1) * 2}, "time_reduce");
    }
  }
  x = b.FullyConnected(x, cfg.vocab_size, graph::Activation::kNone,
                       "token_logits");
  b.MarkOutput(x);
  return std::move(b).Build();
}

std::vector<int> GreedyCtcDecode(const infer::Tensor& logits) {
  const std::int64_t frames = logits.shape().dim(0);
  const std::int64_t vocab = logits.shape().dim(1);
  std::vector<int> tokens;
  int prev = -1;
  for (std::int64_t t = 0; t < frames; ++t) {
    const float* row = logits.data() + t * vocab;
    int best = 0;
    for (std::int64_t v = 1; v < vocab; ++v)
      if (row[v] > row[best]) best = static_cast<int>(v);
    if (best != prev && best != 0) tokens.push_back(best);
    prev = best;
  }
  return tokens;
}

}  // namespace mlpm::models
