// The SoC simulator: executes compiled models against a chipset's thermal
// state, in single-stream (one inference at a time) or offline batch mode
// with accelerator-level parallelism (paper §7.3: vendors run multiple
// accelerators concurrently to maximize offline throughput).
#pragma once

#include <span>
#include <vector>

#include "soc/chipset.h"
#include "soc/compile.h"
#include "soc/thermal.h"

namespace mlpm::soc {

struct InferenceResult {
  double latency_s = 0.0;
  double energy_j = 0.0;
  double throttle_factor = 1.0;  // at the start of the inference
  double temperature_c = 0.0;    // at the end of the inference
};

struct BatchOptions {
  // Offline batches amortize kernel dispatch (larger effective batch per
  // accelerator command) and runtime dispatch.
  double dispatch_scale = 0.25;
  double per_inference_overhead_scale = 0.1;
  // Utilization gain from large effective batches (weights stay staged,
  // pipelines stay full); multiplies each replica's throughput.
  double batched_efficiency_gain = 1.28;
  // Thermal integration step for long batch runs.
  double step_s = 0.25;
};

struct BatchResult {
  double makespan_s = 0.0;
  double energy_j = 0.0;
  // Completion time of each sample (monotonic), length == sample_count.
  std::vector<double> completion_times_s;
  double final_temperature_c = 0.0;
};

class SocSimulator {
 public:
  explicit SocSimulator(ChipsetDesc chipset);

  // Runs one single-stream inference; advances the thermal state.
  InferenceResult RunInference(const CompiledModel& model);

  // Runs `sample_count` samples split across the given replicas with
  // data-parallel ALP: each replica consumes samples at its own throughput
  // and all run concurrently.  Replicas are typically one per engine
  // (e.g. Exynos: NPU replica + CPU replica; Snapdragon: HTA + HVX).
  BatchResult RunBatch(std::span<const CompiledModel> replicas,
                       std::size_t sample_count,
                       const BatchOptions& options = {});

  // Cooldown interval between tests (run rules §6.1: 0-5 minutes).
  void Cooldown(double seconds) { thermal_.Cool(seconds); }

  [[nodiscard]] const ThermalModel& thermal() const { return thermal_; }
  [[nodiscard]] const ChipsetDesc& chipset() const { return chipset_; }
  void ResetThermal() { thermal_.Reset(); }

 private:
  ChipsetDesc chipset_;
  ThermalModel thermal_;
};

}  // namespace mlpm::soc
