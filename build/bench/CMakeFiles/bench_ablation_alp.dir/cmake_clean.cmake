file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_alp.dir/bench_ablation_alp.cpp.o"
  "CMakeFiles/bench_ablation_alp.dir/bench_ablation_alp.cpp.o.d"
  "bench_ablation_alp"
  "bench_ablation_alp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_alp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
