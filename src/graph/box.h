// Half-open index intervals and multi-dimensional boxes.
//
// The tiled execution engine (DESIGN.md §15) reasons about *crops*: a box
// selects, per dimension, the half-open index range [begin, end) of a
// tensor that a pipeline stage must produce or consume.  Bounds inference
// (graph/bounds.h) maps an output crop backwards through an op to the input
// box it requires; the tile planner partitions a tensor's full box into
// disjoint crops that exactly cover it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/shape.h"

namespace mlpm::graph {

// A half-open index range [begin, end).  Empty when end <= begin.
struct Interval {
  std::int64_t begin = 0;
  std::int64_t end = 0;

  [[nodiscard]] std::int64_t length() const {
    return end > begin ? end - begin : 0;
  }
  [[nodiscard]] bool empty() const { return end <= begin; }
  [[nodiscard]] bool Contains(std::int64_t i) const {
    return i >= begin && i < end;
  }
  [[nodiscard]] bool Contains(const Interval& o) const {
    return o.empty() || (o.begin >= begin && o.end <= end);
  }
  [[nodiscard]] Interval Intersect(const Interval& o) const {
    const std::int64_t b = begin > o.begin ? begin : o.begin;
    const std::int64_t e = end < o.end ? end : o.end;
    return {b, e < b ? b : e};
  }
  [[nodiscard]] bool operator==(const Interval& o) const = default;
};

// One interval per dimension, in the tensor's own dimension order (NHWC for
// vision tensors).  A box built from a shape spans the whole tensor.
struct Box {
  std::vector<Interval> dims;

  [[nodiscard]] static Box FromShape(const TensorShape& s) {
    Box b;
    b.dims.reserve(s.rank());
    for (std::size_t d = 0; d < s.rank(); ++d)
      b.dims.push_back({0, s.dim(d)});
    return b;
  }

  [[nodiscard]] std::size_t rank() const { return dims.size(); }
  [[nodiscard]] std::int64_t elements() const {
    std::int64_t n = 1;
    for (const Interval& i : dims) n *= i.length();
    return n;
  }
  [[nodiscard]] bool empty() const {
    for (const Interval& i : dims)
      if (i.empty()) return true;
    return dims.empty();
  }
  [[nodiscard]] bool Contains(const Box& o) const {
    if (o.rank() != rank()) return false;
    for (std::size_t d = 0; d < dims.size(); ++d)
      if (!dims[d].Contains(o.dims[d])) return false;
    return true;
  }
  [[nodiscard]] bool operator==(const Box& o) const = default;

  [[nodiscard]] std::string ToString() const {
    std::string s = "[";
    for (std::size_t d = 0; d < dims.size(); ++d) {
      if (d != 0) s += ", ";
      s += std::to_string(dims[d].begin) + ":" + std::to_string(dims[d].end);
    }
    return s + "]";
  }
};

}  // namespace mlpm::graph
