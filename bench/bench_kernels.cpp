// Engineering microbenchmarks for the execution engine: optimized
// (register-tiled, optionally threaded) GEMM kernels against the scalar
// references, the prepacked conv path against the pack-every-call legacy
// path, the threaded executor and the sample-level accuracy fan-out.  The
// INT8-vs-FP32 arithmetic gap motivates the paper's numerics discussion
// (§7.5).
//
// Standalone (no benchmark framework): adaptive wall-clock timing, a table
// on stdout, and a machine-readable BENCH_kernels.json for CI artifacts.
// Every optimized-vs-reference pair is asserted correct before being timed
// (bit-identical for integer kernels; to a documented tolerance for SIMD
// f32, which reassociates), so a speedup can never come from a wrong
// answer.  The dispatch section times every kernel table the runtime
// registry reports available on this host (DESIGN.md §13).
//
// Usage: bench_kernels [--json PATH] [--smoke]
//   --json PATH  output file (default BENCH_kernels.json)
//   --smoke      reduced timing budget for CI; every section (including
//                runtime kernel dispatch) and every exactness assertion
//                still runs at full strength
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <cmath>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "infer/executor.h"
#include "infer/int8_conv.h"
#include "infer/int8_gemm.h"
#include "infer/kernels/registry.h"
#include "infer/memory_plan.h"
#include "infer/prepared_model.h"
#include "infer/tile_planner.h"
#include "infer/weights.h"
#include "models/mobilenet_edgetpu.h"
#include "models/zoo.h"
#include "obs/trace.h"
#include "transform/pass_manager.h"

namespace {

using namespace mlpm;

// Wall-clock budget per measurement; --smoke shrinks it for CI where the
// artifact matters more than the noise floor.
double g_time_budget_s = 0.15;

// Times `fn` adaptively: repeats until the budget is spent, reports the
// best per-iteration seconds (least-noise estimator for microbenchmarks).
template <typename Fn>
double TimeSeconds(Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  fn();  // warm-up (page faults, caches)
  double best = 1e300;
  double total = 0.0;
  int batch = 1;
  while (total < g_time_budget_s) {
    const auto t0 = Clock::now();
    for (int i = 0; i < batch; ++i) fn();
    const double s =
        std::chrono::duration<double>(Clock::now() - t0).count() / batch;
    best = std::min(best, s);
    total += s * batch;
    if (s * batch < 0.01) batch *= 2;  // too fast to time; grow the batch
  }
  return best;
}

struct BenchRecord {
  std::string name;
  double value = 0.0;
  std::string unit;
};

std::vector<BenchRecord> g_records;

void Record(const std::string& name, double value, const std::string& unit) {
  g_records.push_back({name, value, unit});
  std::printf("  %-44s %12.3f %s\n", name.c_str(), value, unit.c_str());
}

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FATAL: bit-exactness check failed: %s\n", what);
    std::exit(1);
  }
}

void BenchGemmF32(const ThreadPool& pool) {
  std::printf("GEMM f32 (B transposed, square n):\n");
  for (const std::size_t n : {64u, 128u, 256u, 384u}) {
    Rng rng(1);
    std::vector<float> a(n * n), b(n * n), c_ref(n * n), c_opt(n * n);
    for (auto& v : a) v = static_cast<float>(rng.NextGaussian());
    for (auto& v : b) v = static_cast<float>(rng.NextGaussian());

    infer::GemmF32Ref(a, b, n, n, n, c_ref);
    infer::GemmF32(a, b, n, n, n, c_opt, &pool);
    Check(c_ref == c_opt, "GemmF32 tiled != reference");

    const double flops = 2.0 * static_cast<double>(n) * n * n;
    const double s_ref =
        TimeSeconds([&] { infer::GemmF32Ref(a, b, n, n, n, c_ref); });
    const double s_opt =
        TimeSeconds([&] { infer::GemmF32(a, b, n, n, n, c_opt); });
    const double s_par =
        TimeSeconds([&] { infer::GemmF32(a, b, n, n, n, c_opt, &pool); });
    const std::string tag = "gemm_f32_n" + std::to_string(n);
    Record(tag + "_ref_gflops", flops / s_ref / 1e9, "GFLOP/s");
    Record(tag + "_opt_gflops", flops / s_opt / 1e9, "GFLOP/s");
    Record(tag + "_threaded_gflops", flops / s_par / 1e9, "GFLOP/s");
    Record(tag + "_opt_speedup", s_ref / s_opt, "x");
    Record(tag + "_threaded_speedup", s_ref / s_par, "x");
  }
}

void BenchGemmU8(const ThreadPool& pool) {
  std::printf("GEMM u8*u8 -> i32 (zero-point 128):\n");
  for (const std::size_t n : {64u, 128u, 256u, 384u}) {
    Rng rng(1);
    std::vector<std::uint8_t> a(n * n), b(n * n);
    std::vector<std::int32_t> c_ref(n * n), c_opt(n * n);
    for (auto& v : a) v = static_cast<std::uint8_t>(rng.NextBelow(256));
    for (auto& v : b) v = static_cast<std::uint8_t>(rng.NextBelow(256));

    infer::GemmU8U8I32Ref(a, 128, b, 128, n, n, n, c_ref);
    infer::GemmU8U8I32(a, 128, b, 128, n, n, n, c_opt, &pool);
    Check(c_ref == c_opt, "GemmU8U8I32 tiled != reference");

    const double ops = 2.0 * static_cast<double>(n) * n * n;
    const double s_ref = TimeSeconds(
        [&] { infer::GemmU8U8I32Ref(a, 128, b, 128, n, n, n, c_ref); });
    const double s_opt = TimeSeconds(
        [&] { infer::GemmU8U8I32(a, 128, b, 128, n, n, n, c_opt); });
    const double s_par = TimeSeconds(
        [&] { infer::GemmU8U8I32(a, 128, b, 128, n, n, n, c_opt, &pool); });
    const std::string tag = "gemm_u8_n" + std::to_string(n);
    Record(tag + "_ref_gops", ops / s_ref / 1e9, "GOP/s");
    Record(tag + "_opt_gops", ops / s_opt / 1e9, "GOP/s");
    Record(tag + "_threaded_gops", ops / s_par / 1e9, "GOP/s");
    Record(tag + "_opt_speedup", s_ref / s_opt, "x");
    Record(tag + "_threaded_speedup", s_ref / s_par, "x");
  }
}

// Runtime-dispatched kernel tables (DESIGN.md §13): every ISA the registry
// reports available, on a square shape and on a large reference-model shape
// (the 784x864x192 im2col GEMM of a MobileNetEdgeTPU mid-network 3x3 conv).
// INT8 results must be bit-identical to the scalar oracle on every table;
// f32 SIMD tables may reassociate, so they are checked to a relative
// tolerance instead.
void BenchGemmDispatch() {
  const infer::kernels::KernelRegistry& reg =
      infer::kernels::KernelRegistry::Global();
  std::printf("dispatched GEMM kernels (host: %s):\n",
              std::string(infer::kernels::ToString(
                              reg.Resolve(infer::kernels::KernelIsa::kAuto)))
                  .c_str());

  struct Shape {
    const char* tag;
    std::size_t m, k, n;
  };
  // The second entry is the acceptance shape: a full-scale conv lowered to
  // im2col, big enough that the GEMM dominates and prefetch/tile effects
  // are visible.
  const Shape shapes[] = {{"n256", 256, 256, 256},
                          {"mobilenet_784x864x192", 784, 864, 192}};

  for (const Shape& sh : shapes) {
    Rng rng(1);
    std::vector<float> a(sh.m * sh.k), b(sh.n * sh.k);
    std::vector<float> c_ref(sh.m * sh.n), c_isa(sh.m * sh.n);
    for (auto& v : a) v = static_cast<float>(rng.NextGaussian());
    for (auto& v : b) v = static_cast<float>(rng.NextGaussian());
    std::vector<std::uint8_t> qa(sh.m * sh.k), qb(sh.n * sh.k);
    for (auto& v : qa) v = static_cast<std::uint8_t>(rng.NextBelow(256));
    for (auto& v : qb) v = static_cast<std::uint8_t>(rng.NextBelow(256));
    std::vector<std::int32_t> i_ref(sh.m * sh.n), i_isa(sh.m * sh.n);

    infer::GemmF32Ref(a, b, sh.m, sh.n, sh.k, c_ref);
    infer::GemmU8U8I32Ref(qa, 128, qb, 3, sh.m, sh.n, sh.k, i_ref);
    const double flops = 2.0 * static_cast<double>(sh.m) * sh.n * sh.k;
    const double s_f32_ref = TimeSeconds(
        [&] { infer::GemmF32Ref(a, b, sh.m, sh.n, sh.k, c_isa); });
    const double s_u8_ref = TimeSeconds([&] {
      infer::GemmU8U8I32Ref(qa, 128, qb, 3, sh.m, sh.n, sh.k, i_isa);
    });

    for (const infer::kernels::KernelIsa isa : reg.AvailableIsas()) {
      const infer::kernels::KernelTable& table = reg.Select(isa);
      const std::string tag = std::string("dispatch_") + sh.tag + "_" +
                              std::string(infer::kernels::ToString(isa));

      infer::GemmF32(a, b, sh.m, sh.n, sh.k, c_isa, table);
      for (std::size_t i = 0; i < c_ref.size(); ++i) {
        // f32 SIMD kernels reassociate and contract (FMA): exactness is
        // not required, closeness is.  |ref| ~ sqrt(k) for Gaussian data.
        const double tol = 1e-4 * std::sqrt(static_cast<double>(sh.k));
        Check(std::fabs(c_isa[i] - c_ref[i]) <= tol,
              "dispatched f32 GEMM outside tolerance vs scalar oracle");
      }
      infer::GemmU8U8I32(qa, 128, qb, 3, sh.m, sh.n, sh.k, i_isa, table);
      Check(i_isa == i_ref, "dispatched u8 GEMM != scalar oracle");

      const double s_f32 = TimeSeconds(
          [&] { infer::GemmF32(a, b, sh.m, sh.n, sh.k, c_isa, table); });
      const double s_u8 = TimeSeconds([&] {
        infer::GemmU8U8I32(qa, 128, qb, 3, sh.m, sh.n, sh.k, i_isa, table);
      });
      Record(tag + "_f32_gflops", flops / s_f32 / 1e9, "GFLOP/s");
      Record(tag + "_f32_speedup", s_f32_ref / s_f32, "x");
      Record(tag + "_u8_gops", flops / s_u8 / 1e9, "GOP/s");
      Record(tag + "_u8_speedup", s_u8_ref / s_u8, "x");
    }
  }
}

void BenchConvInt8(const ThreadPool& pool) {
  std::printf("conv int8 im2col 16x16 3x3 (legacy vs prepacked+scratch):\n");
  for (const std::int64_t c : {16, 32, 64}) {
    Rng rng(7);
    infer::Tensor input(graph::TensorShape({1, 16, 16, c}));
    infer::Tensor weights(graph::TensorShape({c, 3, 3, c}));
    infer::Tensor bias(graph::TensorShape({c}));
    for (auto& v : input.values())
      v = static_cast<float>(rng.NextUniform(-1, 1));
    for (auto& v : weights.values())
      v = static_cast<float>(rng.NextUniform(-0.5, 0.5));
    const infer::QuantizationParams in_q =
        infer::ChooseQuantParams(-1.0f, 1.0f);
    const infer::QuantizationParams w_q =
        infer::ChooseQuantParams(-0.5f, 0.5f);

    const infer::PackedConvWeights packed =
        infer::PackConvWeights(weights, w_q);
    infer::ConvScratch scratch;
    const infer::Tensor legacy = infer::ConvInt8NHWC(
        input, weights, bias, 1, graph::Padding::kSame, in_q, w_q);
    const infer::Tensor prepacked =
        infer::ConvInt8NHWC(input, packed, bias, 1, graph::Padding::kSame,
                            in_q, &scratch, &pool);
    Check(legacy.size() == prepacked.size(), "conv size mismatch");
    for (std::size_t i = 0; i < legacy.size(); ++i)
      Check(legacy.at(i) == prepacked.at(i), "prepacked conv != legacy");

    const double s_legacy = TimeSeconds([&] {
      auto out = infer::ConvInt8NHWC(input, weights, bias, 1,
                                     graph::Padding::kSame, in_q, w_q);
    });
    const double s_packed = TimeSeconds([&] {
      auto out = infer::ConvInt8NHWC(input, packed, bias, 1,
                                     graph::Padding::kSame, in_q, &scratch,
                                     &pool);
    });
    const std::string tag = "conv_int8_c" + std::to_string(c);
    Record(tag + "_legacy_ms", s_legacy * 1e3, "ms");
    Record(tag + "_prepacked_ms", s_packed * 1e3, "ms");
    Record(tag + "_speedup", s_legacy / s_packed, "x");
  }
}

void BenchExecutor(const ThreadPool& pool) {
  std::printf("mini MobileNetEdgeTPU inference (serial vs threaded):\n");
  const graph::Graph g =
      models::BuildMobileNetEdgeTpu(models::ModelScale::kMini);
  const infer::WeightStore w = infer::InitializeWeights(g, 7);
  const infer::Executor exec(g, w);
  infer::Tensor input(g.tensor(g.input_ids()[0]).shape);
  Rng rng(3);
  for (auto& v : input.values()) v = static_cast<float>(rng.NextDouble());
  const std::vector<infer::Tensor> inputs{input};

  const auto serial_out = exec.Run(inputs);
  const auto threaded_out = exec.Run(inputs, infer::NodeObserver{}, &pool);
  for (std::size_t o = 0; o < serial_out.size(); ++o)
    for (std::size_t i = 0; i < serial_out[o].size(); ++i)
      Check(serial_out[o].at(i) == threaded_out[o].at(i),
            "threaded executor != serial");

  const double s_serial = TimeSeconds([&] { auto out = exec.Run(inputs); });
  const double s_thread = TimeSeconds(
      [&] { auto out = exec.Run(inputs, infer::NodeObserver{}, &pool); });
  Record("executor_mini_classifier_serial_ms", s_serial * 1e3, "ms");
  Record("executor_mini_classifier_threaded_ms", s_thread * 1e3, "ms");
  Record("executor_mini_classifier_speedup", s_serial / s_thread, "x");

  // Sample-level fan-out (the accuracy-mode regime): 8 samples per batch.
  std::vector<std::vector<infer::Tensor>> sample_inputs;
  for (int s = 0; s < 8; ++s) {
    infer::Tensor t(g.tensor(g.input_ids()[0]).shape);
    for (auto& v : t.values()) v = static_cast<float>(rng.NextDouble());
    sample_inputs.push_back({std::move(t)});
  }
  const auto inputs_for = [&](std::size_t i) { return sample_inputs[i]; };
  const double s_loop = TimeSeconds([&] {
    auto out = infer::RunSamplesParallel(exec, sample_inputs.size(),
                                         inputs_for, nullptr);
  });
  const double s_fan = TimeSeconds([&] {
    auto out = infer::RunSamplesParallel(exec, sample_inputs.size(),
                                         inputs_for, &pool);
  });
  Record("accuracy_fanout_8samples_serial_ms", s_loop * 1e3, "ms");
  Record("accuracy_fanout_8samples_threaded_ms", s_fan * 1e3, "ms");
  Record("accuracy_fanout_8samples_speedup", s_loop / s_fan, "x");
}

// Single-sample latency with per-node allocation (legacy) vs the planned
// arena context, after asserting bit-identical outputs.  Small models are
// where per-node malloc/zero-fill is the largest fraction of the sample.
void BenchArena(const models::BenchmarkEntry& entry,
                models::SuiteVersion version, const std::string& tag) {
  const graph::Graph g =
      models::BuildReferenceGraph(entry, version, models::ModelScale::kMini);
  const infer::WeightStore w = infer::InitializeWeights(g, 11);
  const infer::Executor exec(g, w);

  Rng rng(5);
  std::vector<infer::Tensor> inputs;
  for (const graph::TensorId id : g.input_ids()) {
    infer::Tensor t(g.tensor(id).shape);
    for (auto& v : t.values()) v = static_cast<float>(rng.NextDouble());
    inputs.push_back(std::move(t));
  }

  infer::ExecutionContext ctx = exec.CreateContext();
  const auto legacy_out = exec.Run(inputs);
  const auto arena_out = exec.Run(inputs, ctx);
  Check(legacy_out.size() == arena_out.size(), "arena output count != legacy");
  for (std::size_t o = 0; o < legacy_out.size(); ++o)
    for (std::size_t i = 0; i < legacy_out[o].size(); ++i)
      Check(legacy_out[o].at(i) == arena_out[o].at(i),
            "arena executor != legacy");

  const double s_legacy = TimeSeconds([&] { auto out = exec.Run(inputs); });
  const double s_arena =
      TimeSeconds([&] { auto out = exec.Run(inputs, ctx); });
  const infer::MemoryPlan& plan = exec.memory_plan();
  Record(tag + "_legacy_ms", s_legacy * 1e3, "ms");
  Record(tag + "_arena_ms", s_arena * 1e3, "ms");
  Record(tag + "_arena_speedup", s_legacy / s_arena, "x");
  Record(tag + "_arena_kib",
         static_cast<double>(plan.peak_arena_bytes()) / 1024.0, "KiB");
  Record(tag + "_arena_savings",
         100.0 * plan.savings_ratio(), "%");
}

void BenchArenaExecution() {
  std::printf("arena vs legacy execution (mini models, single sample):\n");
  for (const auto version :
       {models::SuiteVersion::kV1_0, models::SuiteVersion::kV0_7}) {
    for (const models::BenchmarkEntry& entry : models::SuiteFor(version)) {
      // v1.0 classification is MobileNetEdgeTPU; v0.7 detection is
      // SSD-MobileNet v2 — the two small models the planner targets most.
      const bool wanted =
          (version == models::SuiteVersion::kV1_0 &&
           entry.task == models::TaskType::kImageClassification) ||
          (version == models::SuiteVersion::kV0_7 &&
           entry.task == models::TaskType::kObjectDetection);
      if (!wanted) continue;
      BenchArena(entry, version, "arena_" + entry.model_name);
    }
  }
}

// Trace-recorder overhead on the hot arena path (DESIGN.md §11 budget):
// enabling tracing must not change any output bit, and the disabled cost
// is one relaxed atomic load per node — recorded here so a regression in
// either direction shows up in the CI artifact.
void BenchTraceOverhead() {
  std::printf("trace recorder overhead (arena execution, mini model):\n");
  models::BenchmarkEntry entry;
  for (const models::BenchmarkEntry& e :
       models::SuiteFor(models::SuiteVersion::kV1_0))
    if (e.task == models::TaskType::kImageClassification) entry = e;
  const graph::Graph g = models::BuildReferenceGraph(
      entry, models::SuiteVersion::kV1_0, models::ModelScale::kMini);
  const infer::WeightStore w = infer::InitializeWeights(g, 11);
  const infer::Executor exec(g, w);

  Rng rng(7);
  std::vector<infer::Tensor> inputs;
  for (const graph::TensorId id : g.input_ids()) {
    infer::Tensor t(g.tensor(id).shape);
    for (auto& v : t.values()) v = static_cast<float>(rng.NextDouble());
    inputs.push_back(std::move(t));
  }
  infer::ExecutionContext ctx = exec.CreateContext();

  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  rec.Disable();
  const auto out_off = exec.Run(inputs, ctx);
  rec.Enable();
  const auto out_on = exec.Run(inputs, ctx);
  rec.Disable();
  Check(out_off.size() == out_on.size(), "traced output count != untraced");
  for (std::size_t o = 0; o < out_off.size(); ++o)
    for (std::size_t i = 0; i < out_off[o].size(); ++i)
      Check(out_off[o].at(i) == out_on[o].at(i),
            "traced run output != untraced (tracing must be read-only)");

  const double s_off = TimeSeconds([&] { auto out = exec.Run(inputs, ctx); });
  rec.Enable();
  const double s_on = TimeSeconds([&] { auto out = exec.Run(inputs, ctx); });
  rec.Disable();
  rec.Enable();  // drop the events accumulated while timing
  rec.Disable();
  Record("trace_disabled_ms", s_off * 1e3, "ms");
  Record("trace_enabled_ms", s_on * 1e3, "ms");
  Record("trace_enabled_overhead", 100.0 * (s_on - s_off) / s_off, "%");
}

// Planner-only sweep over every reference model at full scale: records the
// packed arena footprint against the naive per-tensor sum and hard-fails
// if packing ever loses to naive allocation (CI gate).
void BenchMemoryPlans() {
  std::printf("static memory plans (full-scale reference models):\n");
  for (const auto version :
       {models::SuiteVersion::kV0_7, models::SuiteVersion::kV1_0}) {
    for (const models::BenchmarkEntry& entry : models::SuiteFor(version)) {
      const graph::Graph g = models::BuildReferenceGraph(
          entry, version, models::ModelScale::kFull);
      const infer::MemoryPlan plan = infer::MemoryPlan::Build(g);
      Check(plan.peak_arena_bytes() < plan.naive_bytes(),
            "planned arena not smaller than naive activation footprint");
      const std::string tag = std::string("memplan_") +
                              std::string(ToString(version)) + "_" +
                              entry.id;
      Record(tag + "_peak_mib",
             static_cast<double>(plan.peak_arena_bytes()) / (1024.0 * 1024.0),
             "MiB");
      Record(tag + "_naive_mib",
             static_cast<double>(plan.naive_bytes()) / (1024.0 * 1024.0),
             "MiB");
      Record(tag + "_savings",
             100.0 * plan.savings_ratio(), "%");
    }
  }
}

// Verified transform pipeline (DESIGN.md §14) over every mini reference
// model at FP32: the fused graph must execute strictly fewer nodes than the
// canonical (split) form, produce bit-identical outputs, and not regress
// single-sample latency grossly (>2x is a hard CI failure; the speedup
// itself is recorded so smaller drifts show up in the artifact).
void BenchTransform() {
  std::printf("graph-transform pipeline (mini reference models, fp32):\n");
  std::vector<std::string> seen;
  for (const auto version :
       {models::SuiteVersion::kV1_0, models::SuiteVersion::kV0_7}) {
    for (const models::BenchmarkEntry& entry : models::SuiteFor(version)) {
      bool dup = false;
      for (const std::string& s : seen) dup = dup || s == entry.model_name;
      if (dup) continue;
      seen.push_back(entry.model_name);

      const graph::Graph g = models::BuildReferenceGraph(
          entry, version, models::ModelScale::kMini);
      const infer::WeightStore w = infer::InitializeWeights(g, 13);
      const transform::TransformResult res =
          transform::MakeDefaultPipeline(
              transform::TransformOptions{.mode = infer::NumericsMode::kFp32})
              .Run(g, w);
      Check(!res.diagnostics.HasErrors() && !res.AnyRolledBack(),
            "transform pipeline reported errors on a reference model");
      Check(res.nodes_after < res.nodes_canonical,
            "fusion did not reduce executed node count");

      const infer::Executor base(g, w);
      const infer::Executor fused(res.graph, res.weights);
      Rng rng(17);
      std::vector<infer::Tensor> inputs;
      for (const graph::TensorId id : g.input_ids()) {
        infer::Tensor t(g.tensor(id).shape);
        for (auto& v : t.values())
          v = static_cast<float>(rng.NextUniform(-1, 1));
        inputs.push_back(std::move(t));
      }
      const auto out_base = base.Run(inputs);
      const auto out_fused = fused.Run(inputs);
      Check(out_base.size() == out_fused.size(),
            "transformed output count != untransformed");
      for (std::size_t o = 0; o < out_base.size(); ++o)
        for (std::size_t i = 0; i < out_base[o].size(); ++i)
          Check(out_base[o].at(i) == out_fused[o].at(i),
                "transformed graph != untransformed (fp32 must be bit-exact)");

      const double s_base = TimeSeconds([&] { auto out = base.Run(inputs); });
      const double s_fused =
          TimeSeconds([&] { auto out = fused.Run(inputs); });
      Check(s_fused <= 2.0 * s_base,
            "fused path grossly slower than untransformed graph");
      const std::string tag = "transform_" + entry.model_name;
      Record(tag + "_nodes_removed",
             static_cast<double>(res.nodes_canonical - res.nodes_after),
             "nodes");
      Record(tag + "_base_ms", s_base * 1e3, "ms");
      Record(tag + "_fused_ms", s_fused * 1e3, "ms");
      Record(tag + "_speedup", s_base / s_fused, "x");
    }
  }
}

// Tiled, fused pipeline execution (DESIGN.md §15).  Three hard CI gates:
// the tile-aware plan must strictly shrink the packed arena on every
// full-scale reference model that has a fusable segment; tiled execution
// must stay bit-identical to the whole-op oracle; and tiled single-sample
// latency must not grossly regress (>1.5x the whole-op arena path fails).
// The speedups themselves are recorded so smaller drifts show in the
// artifact.
void BenchTiledPlans() {
  std::printf("tiled memory plans (full-scale reference models):\n");
  infer::TileOptions on;
  on.enabled = true;
  for (const auto version :
       {models::SuiteVersion::kV0_7, models::SuiteVersion::kV1_0}) {
    int shrunk = 0;
    for (const models::BenchmarkEntry& entry : models::SuiteFor(version)) {
      const graph::Graph g = models::BuildReferenceGraph(
          entry, version, models::ModelScale::kFull);
      const infer::TilePlan tiles = infer::BuildTilePlan(g, on);
      if (tiles.empty()) {
        continue;  // no chain survived the planner (e.g. MobileBERT)
      }
      const infer::MemoryPlan untiled = infer::MemoryPlan::Build(g);
      const infer::MemoryPlan tiled = infer::MemoryPlan::Build(g, &tiles);
      // The planner's footprint gate guarantees never-worse; a strictly
      // equal peak is legitimate where a graph-output interval pins it
      // (DeepLab's 512x512 logits dominate any packing).
      Check(tiled.peak_arena_bytes() <= untiled.peak_arena_bytes(),
            "tiled plan packs worse than the untiled arena");
      shrunk += tiled.peak_arena_bytes() < untiled.peak_arena_bytes();
      const std::string tag = std::string("tile_plan_") +
                              std::string(ToString(version)) + "_" + entry.id;
      Record(tag + "_segments",
             static_cast<double>(tiles.segments.size()), "segments");
      Record(tag + "_arena_mib",
             static_cast<double>(tiled.peak_arena_bytes()) / (1024.0 * 1024.0),
             "MiB");
      Record(tag + "_untiled_arena_mib",
             static_cast<double>(untiled.peak_arena_bytes()) /
                 (1024.0 * 1024.0),
             "MiB");
      Record(tag + "_slab_kib",
             static_cast<double>(tiled.tile_slab_bytes()) / 1024.0, "KiB");
    }
    Check(shrunk >= 2, "tiling shrank the arena on fewer than two models");
  }
}

void BenchTiledExecution(const ThreadPool& pool) {
  std::printf("tiled vs whole-op execution (mini models, single sample):\n");
  infer::TileOptions on;
  on.enabled = true;
  for (const models::BenchmarkEntry& entry :
       models::SuiteFor(models::SuiteVersion::kV1_0)) {
    const graph::Graph g = models::BuildReferenceGraph(
        entry, models::SuiteVersion::kV1_0, models::ModelScale::kMini);
    if (!infer::HasFusableSegment(g)) continue;
    const infer::WeightStore w = infer::InitializeWeights(g, 11);
    const infer::Executor whole(g, w);
    const infer::Executor tiled(g, w, infer::NumericsMode::kFp32, nullptr,
                                infer::kernels::KernelIsa::kAuto, on);
    Check(tiled.tiled(), "tiling requested but no segment planned");

    Rng rng(5);
    std::vector<infer::Tensor> inputs;
    for (const graph::TensorId id : g.input_ids()) {
      infer::Tensor t(g.tensor(id).shape);
      for (auto& v : t.values()) v = static_cast<float>(rng.NextDouble());
      inputs.push_back(std::move(t));
    }
    infer::ExecutionContext ctx_whole = whole.CreateContext();
    infer::ExecutionContext ctx_tiled = tiled.CreateContext();
    const auto oracle = whole.Run(inputs);
    const auto out_tiled = tiled.Run(inputs, ctx_tiled);
    Check(oracle.size() == out_tiled.size(), "tiled output count != oracle");
    for (std::size_t o = 0; o < oracle.size(); ++o)
      for (std::size_t i = 0; i < oracle[o].size(); ++i)
        Check(oracle[o].at(i) == out_tiled[o].at(i),
              "tiled execution != whole-op oracle");

    const double s_whole =
        TimeSeconds([&] { auto out = whole.Run(inputs, ctx_whole); });
    const double s_tiled =
        TimeSeconds([&] { auto out = tiled.Run(inputs, ctx_tiled); });
    const double s_tiled_thr = TimeSeconds(
        [&] { auto out = tiled.Run(inputs, ctx_tiled, {}, &pool); });
    Check(s_tiled <= 1.5 * s_whole,
          "tiled execution grossly slower than the whole-op arena path");
    const std::string tag = "tile_exec_" + entry.model_name;
    Record(tag + "_whole_ms", s_whole * 1e3, "ms");
    Record(tag + "_tiled_ms", s_tiled * 1e3, "ms");
    Record(tag + "_speedup", s_whole / s_tiled, "x");
    Record(tag + "_threaded_speedup", s_whole / s_tiled_thr, "x");
  }
}

// Band-size sweep on the classification mini model: every band is asserted
// bit-exact against the oracle, then timed, so the locality/overhead
// trade-off is visible in the artifact (band size never changes results).
void BenchTileSweep() {
  std::printf("tile-size sweep (classification mini model):\n");
  models::BenchmarkEntry entry;
  for (const models::BenchmarkEntry& e :
       models::SuiteFor(models::SuiteVersion::kV1_0))
    if (e.task == models::TaskType::kImageClassification) entry = e;
  const graph::Graph g = models::BuildReferenceGraph(
      entry, models::SuiteVersion::kV1_0, models::ModelScale::kMini);
  const infer::WeightStore w = infer::InitializeWeights(g, 11);
  Rng rng(5);
  std::vector<infer::Tensor> inputs;
  for (const graph::TensorId id : g.input_ids()) {
    infer::Tensor t(g.tensor(id).shape);
    for (auto& v : t.values()) v = static_cast<float>(rng.NextDouble());
    inputs.push_back(std::move(t));
  }
  const infer::Executor whole(g, w);
  const auto oracle = whole.Run(inputs);

  for (const std::int64_t rows :
       {std::int64_t{1}, std::int64_t{2}, std::int64_t{4}, std::int64_t{8},
        std::int64_t{-1}}) {
    infer::TileOptions opt;
    opt.enabled = true;
    opt.rows = rows;
    const infer::Executor tiled(g, w, infer::NumericsMode::kFp32, nullptr,
                                infer::kernels::KernelIsa::kAuto, opt);
    infer::ExecutionContext ctx = tiled.CreateContext();
    const auto out = tiled.Run(inputs, ctx);
    for (std::size_t o = 0; o < oracle.size(); ++o)
      for (std::size_t i = 0; i < oracle[o].size(); ++i)
        Check(oracle[o].at(i) == out[o].at(i),
              "tile-size sweep band != whole-op oracle");
    const double s = TimeSeconds([&] { auto r = tiled.Run(inputs, ctx); });
    const std::string tag =
        "tile_sweep_rows" + (rows == -1 ? std::string("_auto")
                                        : std::to_string(rows));
    Record(tag + "_ms", s * 1e3, "ms");
  }
}

// A depthwise stage feeding pointwise-projection + activation pairs at
// narrow channels — the bandwidth-bound regime tiling exists for.  The
// interiors are all zero-halo (1x1 convs and elementwise), so fused row
// bands eliminate every intermediate's round trip to outer cache levels
// at no recompute cost; with 4 MiB intermediates against a 1.5 MiB slab
// budget that is a measured speedup, and the headline tile_* record.
void BenchTiledChain(const ThreadPool& pool) {
  std::printf("tiled dw/pw chain (2048x64x8, 7-node segment):\n");
  graph::GraphBuilder b("deep_chain");
  const auto in = b.Input("in", graph::TensorShape({1, 2048, 64, 8}));
  auto x = b.DepthwiseConv2d(in, 3, 1);
  for (int i = 0; i < 3; ++i) {
    x = b.Conv2d(x, 8, 1, 1);
    x = b.Activate(x, graph::Activation::kRelu6);
  }
  b.MarkOutput(x);
  const graph::Graph g = std::move(b).Build();
  const infer::WeightStore w = infer::InitializeWeights(g, 19);

  infer::TileOptions on;
  on.enabled = true;
  on.cache_bytes = 1536 * 1024;
  const infer::Executor whole(g, w);
  const infer::Executor tiled(g, w, infer::NumericsMode::kFp32, nullptr,
                              infer::kernels::KernelIsa::kAuto, on);
  Check(tiled.tiled(), "deep chain did not form a segment");

  Rng rng(23);
  std::vector<infer::Tensor> inputs;
  inputs.emplace_back(g.tensor(in).shape);
  for (auto& v : inputs[0].values()) v = static_cast<float>(rng.NextDouble());

  infer::ExecutionContext ctx_whole = whole.CreateContext();
  infer::ExecutionContext ctx_tiled = tiled.CreateContext();
  const auto oracle = whole.Run(inputs, ctx_whole);
  const auto out = tiled.Run(inputs, ctx_tiled);
  for (std::size_t i = 0; i < oracle[0].size(); ++i)
    Check(oracle[0].at(i) == out[0].at(i), "tiled chain != whole-op oracle");

  const double s_whole =
      TimeSeconds([&] { auto r = whole.Run(inputs, ctx_whole); });
  const double s_tiled =
      TimeSeconds([&] { auto r = tiled.Run(inputs, ctx_tiled); });
  const double s_whole_thr =
      TimeSeconds([&] { auto r = whole.Run(inputs, ctx_whole, {}, &pool); });
  const double s_tiled_thr =
      TimeSeconds([&] { auto r = tiled.Run(inputs, ctx_tiled, {}, &pool); });
  // Zero-halo interiors mean tiling has no recompute downside here; the
  // small slack only absorbs timer noise.  Anything slower is a real
  // regression in the tiled path.
  Check(s_tiled <= 1.05 * s_whole,
        "tiled dw/pw chain lost its locality speedup");
  Record("tile_chain_whole_ms", s_whole * 1e3, "ms");
  Record("tile_chain_tiled_ms", s_tiled * 1e3, "ms");
  Record("tile_chain_speedup", s_whole / s_tiled, "x");
  Record("tile_chain_threaded_speedup", s_whole_thr / s_tiled_thr, "x");
  Record("tile_chain_slab_kib",
         static_cast<double>(tiled.memory_plan().tile_slab_bytes()) / 1024.0,
         "KiB");
  Record("tile_chain_arena_kib",
         static_cast<double>(tiled.memory_plan().peak_arena_bytes()) / 1024.0,
         "KiB");
  Record("tile_chain_untiled_arena_kib",
         static_cast<double>(whole.memory_plan().peak_arena_bytes()) / 1024.0,
         "KiB");
}

void WriteJson(const std::string& path, const ThreadPool& pool) {
  std::ofstream out(path);
  out << "{\n  \"host_threads\": " << pool.thread_count()
      << ",\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < g_records.size(); ++i) {
    const BenchRecord& r = g_records[i];
    char value[64];
    std::snprintf(value, sizeof value, "%.6g", r.value);
    out << "    {\"name\": \"" << r.name << "\", \"value\": " << value
        << ", \"unit\": \"" << r.unit << "\"}"
        << (i + 1 < g_records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s (%zu benchmarks)\n", path.c_str(),
              g_records.size());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_kernels.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--smoke") {
      g_time_budget_s = 0.02;
    } else {
      std::fprintf(stderr, "usage: bench_kernels [--json PATH] [--smoke]\n");
      return 2;
    }
  }

  const ThreadPool pool;  // hardware concurrency
  std::printf("bench_kernels: %zu execution lane(s)\n", pool.thread_count());
  BenchGemmF32(pool);
  BenchGemmU8(pool);
  BenchGemmDispatch();
  BenchConvInt8(pool);
  BenchExecutor(pool);
  BenchArenaExecution();
  BenchTraceOverhead();
  BenchMemoryPlans();
  BenchTransform();
  BenchTiledPlans();
  BenchTiledExecution(pool);
  BenchTileSweep();
  BenchTiledChain(pool);
  WriteJson(json_path, pool);
  return 0;
}
