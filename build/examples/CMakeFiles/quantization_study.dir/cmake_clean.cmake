file(REMOVE_RECURSE
  "CMakeFiles/quantization_study.dir/quantization_study.cpp.o"
  "CMakeFiles/quantization_study.dir/quantization_study.cpp.o.d"
  "quantization_study"
  "quantization_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quantization_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
