// Multi-stream scenario — the camera pattern: N concurrent 20 Hz streams
// each delivering a frame per 50 ms interval (think multi-camera object
// detection, one of the deployment scenarios §2.4 motivates).
//
// For each v1.0 phone: the largest stream count whose p90 per-query latency
// still fits inside the 50 ms frame interval.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"

namespace {

using namespace mlpm;

loadgen::TestResult RunMultiStream(const soc::ChipsetDesc& chip,
                                   std::size_t streams) {
  const models::SuiteVersion version = models::SuiteVersion::kV1_0;
  const auto suite = models::SuiteFor(version);
  const graph::Graph model = models::BuildReferenceGraph(
      suite[1], version, models::ModelScale::kFull);  // object detection
  const backends::SubmissionConfig sub = backends::GetSubmission(
      chip, models::TaskType::kObjectDetection, version);

  loadgen::VirtualClock clock;
  backends::SimulatedBackend sut(
      chip.name, soc::SocSimulator(chip),
      backends::CompileSubmission(chip, sub, model),
      backends::CompileOfflineReplicas(chip, sub, model), clock);
  benchutil::StubDataset stub;
  loadgen::DatasetQsl qsl(stub);
  loadgen::TestSettings s;
  s.scenario = loadgen::TestScenario::kMultiStream;
  s.multistream_samples_per_query = streams;
  s.multistream_interval = loadgen::Seconds{0.050};
  s.multistream_query_count = 256;
  s.latency_percentile = 90.0;
  return loadgen::RunTest(sut, qsl, s, clock);
}

std::size_t MaxStreams(const soc::ChipsetDesc& chip) {
  std::size_t best = 0;
  for (std::size_t n = 1; n <= 32; ++n) {
    if (RunMultiStream(chip, n).latency_bound_met)
      best = n;
    else
      break;
  }
  return best;
}

}  // namespace

int main() {
  TextTable t(
      "multi-stream scenario — object detection, 20 Hz frame interval");
  t.SetHeader({"Chipset", "max streams @50 ms", "p90 at max",
               "p90 one stream"});
  for (const soc::ChipsetDesc& chip :
       {soc::Dimensity1100(), soc::Exynos2100(), soc::Snapdragon888()}) {
    const std::size_t n = MaxStreams(chip);
    const loadgen::TestResult at_max = RunMultiStream(chip, n);
    const loadgen::TestResult one = RunMultiStream(chip, 1);
    t.AddRow({chip.name, std::to_string(n),
              FormatMs(at_max.percentile_latency_s),
              FormatMs(one.percentile_latency_s)});
  }
  std::printf("%s", t.Render().c_str());
  std::printf(
      "\nhow many concurrent camera streams a phone sustains is the\n"
      "multi-frame deployment question behind the offline scenario's\n"
      "album-processing story (paper §4.2).\n");
  return 0;
}
