#include "harness/task_bundle.h"

#include "datasets/calibration_set.h"
#include "datasets/classification_dataset.h"
#include "datasets/detection_dataset.h"
#include "datasets/qa_dataset.h"
#include "datasets/segmentation_dataset.h"
#include "models/deeplab.h"
#include "models/mobilebert.h"
#include "models/mobilenet_edgetpu.h"
#include "quant/calibration.h"

namespace mlpm::harness {

std::unique_ptr<TaskBundle> TaskBundle::Create(
    const models::BenchmarkEntry& e, models::SuiteVersion version,
    std::uint64_t weight_seed) {
  auto b = std::unique_ptr<TaskBundle>(new TaskBundle());
  b->entry_ = e;
  b->version_ = version;

  switch (e.task) {
    case models::TaskType::kImageClassification: {
      b->owned_graph_ = std::make_unique<graph::Graph>(
          models::BuildMobileNetEdgeTpu(models::ModelScale::kMini));
      b->graph_ = b->owned_graph_.get();
      b->weights_ = infer::InitializeWeights(*b->graph_, weight_seed);
      b->dataset_ = std::make_unique<datasets::ClassificationDataset>(
          *b->graph_, b->weights_, datasets::ClassificationDatasetConfig{});
      break;
    }
    case models::TaskType::kObjectDetection: {
      b->detection_model_ = std::make_unique<models::DetectionModel>(
          version == models::SuiteVersion::kV0_7
              ? models::BuildSsdMobileNetV2(models::ModelScale::kMini)
              : models::BuildMobileDetSsd(models::ModelScale::kMini));
      b->graph_ = &b->detection_model_->graph;
      b->weights_ = infer::InitializeWeights(*b->graph_, weight_seed);
      b->dataset_ = std::make_unique<datasets::DetectionDataset>(
          *b->detection_model_, b->weights_,
          datasets::DetectionDatasetConfig{});
      break;
    }
    case models::TaskType::kImageSegmentation: {
      b->owned_graph_ = std::make_unique<graph::Graph>(
          models::BuildDeepLabV3Plus(models::ModelScale::kMini));
      b->graph_ = b->owned_graph_.get();
      b->weights_ = infer::InitializeWeights(*b->graph_, weight_seed);
      b->dataset_ = std::make_unique<datasets::SegmentationDataset>(
          *b->graph_, b->weights_, datasets::SegmentationDatasetConfig{});
      break;
    }
    case models::TaskType::kQuestionAnswering: {
      const models::MobileBertConfig cfg = models::MiniMobileBertConfig();
      b->owned_graph_ = std::make_unique<graph::Graph>(
          models::BuildMobileBert(cfg));
      b->graph_ = b->owned_graph_.get();
      b->weights_ = infer::InitializeWeights(*b->graph_, weight_seed);
      b->dataset_ = std::make_unique<datasets::QaDataset>(
          *b->graph_, b->weights_, cfg, datasets::QaDatasetConfig{});
      break;
    }
  }
  return b;
}

TaskBundle::PreparedModel TaskBundle::Prepare(
    infer::NumericsMode mode, bool use_qat_weights,
    infer::kernels::KernelIsa isa) const {
  const int key = (static_cast<int>(mode) * 2 + (use_qat_weights ? 1 : 0)) *
                      8 +
                  static_cast<int>(isa);
  if (const auto it = prepared_cache_.find(key); it != prepared_cache_.end())
    return it->second;

  PreparedModel p;
  const infer::WeightStore* weights = &weights_;
  if (use_qat_weights) {
    if (!qat_weights_)
      qat_weights_ = quant::RefineWeightsMseOptimal(*graph_, weights_);
    weights = &*qat_weights_;
  }
  if (mode == infer::NumericsMode::kInt8) {
    p.calibration_indices = datasets::ApprovedCalibrationIndices(
        kCalibrationPoolSize, kCalibrationSetSize, kCalibrationSeed);
    const std::vector<quant::CalibrationSample> samples =
        datasets::GatherCalibrationSamples(*dataset_, p.calibration_indices);
    const infer::QuantParams qp =
        quant::CalibratePtq(*graph_, *weights, samples);
    p.model = std::make_shared<infer::PreparedModel>(*graph_, *weights, mode,
                                                     &qp, isa);
  } else {
    p.model = std::make_shared<infer::PreparedModel>(*graph_, *weights, mode,
                                                     nullptr, isa);
  }
  p.executor = &p.model->executor();
  prepared_cache_.emplace(key, p);
  return p;
}

double TaskBundle::ScoreAccuracy(const infer::Executor& executor,
                                 const ThreadPool* pool) const {
  std::vector<std::vector<infer::Tensor>> outputs = infer::RunSamplesParallel(
      executor, dataset_->size(),
      [&](std::size_t i) { return dataset_->InputsFor(i); }, pool);
  return dataset_->ScoreOutputs(outputs);
}

double TaskBundle::Fp32Score(const ThreadPool* pool,
                             infer::kernels::KernelIsa isa) const {
  const int key = static_cast<int>(isa);
  if (const auto it = fp32_scores_.find(key); it != fp32_scores_.end())
    return it->second;
  const infer::Executor fp32(*graph_, weights_, infer::NumericsMode::kFp32,
                             nullptr, isa);
  const double score = ScoreAccuracy(fp32, pool);
  fp32_scores_.emplace(key, score);
  return score;
}

}  // namespace mlpm::harness
