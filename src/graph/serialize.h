// Frozen-model serialization (paper §5.1: "the reference models are frozen
// TensorFlow FP32 checkpoints, and valid submissions must begin from these
// frozen graphs").  This is the repo's checkpoint format: a line-oriented
// text encoding of the graph structure that round-trips exactly, so the
// audit can load a submitted model file and fingerprint-compare it against
// the reference.
//
// Weights are serialized separately (infer/weights.h side); the graph file
// carries structure only — which is precisely what the equivalence rules
// constrain.
#pragma once

#include <string>

#include "graph/graph.h"

namespace mlpm::graph {

// Serializes the full structure: tensors (name/shape/kind), nodes
// (op/attrs/inputs/weights/output), graph inputs/outputs.
[[nodiscard]] std::string SerializeGraph(const Graph& g);

// Parses a serialized graph; throws CheckError on malformed input.  The
// result satisfies Validate() and has the same StructuralFingerprint() as
// the original.
[[nodiscard]] Graph ParseGraph(const std::string& text);

// As ParseGraph, but skips the Validate() gate: the text must be
// syntactically well-formed, but the resulting graph may violate any
// structural invariant (dangling ids, cycles, dead tensors, ...).  This is
// the loader for the static-analysis layer (src/analysis), which needs to
// ingest defective submitted models and *diagnose* them rather than throw
// at the first problem.  Never feed an unchecked graph to an executor.
[[nodiscard]] Graph ParseGraphUnchecked(const std::string& text);

}  // namespace mlpm::graph
