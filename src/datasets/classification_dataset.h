// Synthetic ImageNet-2012 stand-in for the image-classification task.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "datasets/task_dataset.h"
#include "graph/graph.h"
#include "infer/executor.h"
#include "infer/weights.h"

namespace mlpm::datasets {

struct ClassificationDatasetConfig {
  std::size_t num_samples = 128;
  std::int64_t input_size = 32;    // model input resolution
  std::int64_t num_classes = 16;
  // Probability a ground-truth label equals the FP32 teacher's prediction;
  // the remainder is a random *other* class.  Sets FP32 Top-1 accuracy
  // (paper: 76.19%).
  double teacher_agreement = 0.7619;
  // Minimum top1-top2 logit gap for a sample to enter the validation set.
  // Trained classifiers have large decision margins on most images;
  // filtering reproduces that property for the synthetic set (margins are
  // what make INT8 flips rare, i.e. what makes the 98%-of-FP32 target
  // reachable by PTQ).
  double min_teacher_margin = 0.4;
  std::uint64_t seed = 0x1234'5678;
};

class ClassificationDataset final : public TaskDataset {
 public:
  // `model` must be the FP32 reference classifier; labels are derived from
  // it at construction time.  Both references must outlive the dataset.
  ClassificationDataset(const graph::Graph& model,
                        const infer::WeightStore& weights,
                        ClassificationDatasetConfig config);

  [[nodiscard]] std::size_t size() const override { return labels_.size(); }
  [[nodiscard]] std::vector<infer::Tensor> InputsFor(
      std::size_t index) const override;
  [[nodiscard]] double ScoreOutputs(
      std::span<const std::vector<infer::Tensor>> outputs) const override;
  [[nodiscard]] std::string_view metric_name() const override {
    return "Top-1";
  }
  [[nodiscard]] std::vector<infer::Tensor> CalibrationInputsFor(
      std::size_t index) const override;

  [[nodiscard]] int LabelFor(std::size_t index) const;

 private:
  [[nodiscard]] infer::Tensor MakeInput(std::uint64_t name_space,
                                        std::size_t index) const;

  ClassificationDatasetConfig cfg_;
  std::vector<int> labels_;
  // Generator index per accepted sample (margin filtering may skip some).
  std::vector<std::size_t> image_indices_;
};

}  // namespace mlpm::datasets
