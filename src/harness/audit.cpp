#include "harness/audit.h"

#include <cmath>

namespace mlpm::harness {
namespace {

AuditFinding Compare(std::string what, double submitted, double reproduced,
                     double tolerance) {
  AuditFinding f;
  f.what = std::move(what);
  f.submitted = submitted;
  f.reproduced = reproduced;
  const double scale = std::max(std::abs(submitted), std::abs(reproduced));
  f.relative_delta =
      scale > 0 ? std::abs(submitted - reproduced) / scale : 0.0;
  f.within_tolerance = f.relative_delta <= tolerance;
  return f;
}

}  // namespace

AuditReport AuditSubmission(const soc::ChipsetDesc& chipset,
                            const SubmissionResult& submitted,
                            SuiteBundles& bundles, const RunOptions& options,
                            double tolerance) {
  AuditReport report;
  const SubmissionResult rerun =
      RunSubmission(chipset, submitted.version, bundles, options);
  Expects(rerun.tasks.size() == submitted.tasks.size(),
          "audit re-run produced a different task list");

  for (std::size_t i = 0; i < submitted.tasks.size(); ++i) {
    const TaskRunResult& a = submitted.tasks[i];
    const TaskRunResult& b = rerun.tasks[i];
    const std::string& id = a.entry.id;

    report.findings.push_back(
        Compare(id + " accuracy", a.accuracy, b.accuracy, tolerance));
    if (a.single_stream && b.single_stream)
      report.findings.push_back(Compare(
          id + " p90 latency", a.single_stream->percentile_latency_s,
          b.single_stream->percentile_latency_s, tolerance));
    if (a.offline && b.offline)
      report.findings.push_back(Compare(id + " offline throughput",
                                        a.offline->throughput_sps,
                                        b.offline->throughput_sps,
                                        tolerance));
  }
  for (const AuditFinding& f : report.findings)
    if (!f.within_tolerance) report.accepted = false;
  return report;
}

}  // namespace mlpm::harness
