#include "analysis/diagnostics.h"

#include <algorithm>
#include <array>
#include <sstream>

#include "common/check.h"

namespace mlpm::analysis {
namespace {

// Sorted by code.  Codes are append-only across releases: a code is never
// renumbered or reused, so downstream tooling can key on them.
constexpr std::array<CodeInfo, 38> kCatalogue{{
    {"GRAPH001", Severity::kWarning,
     "dead tensor: produced but never consumed nor marked as output"},
    {"GRAPH002", Severity::kWarning,
     "unreachable node: no dataflow path to any graph output"},
    {"GRAPH003", Severity::kError,
     "aliasing write: tensor written twice, or node output aliases an "
     "input / graph input / weight"},
    {"GRAPH004", Severity::kError, "dataflow cycle between nodes"},
    {"GRAPH005", Severity::kError,
     "structural corruption: out-of-range tensor id or wrong tensor kind"},
    {"QUANT001", Severity::kError,
     "illegal quantization bit width (the run rules freeze the 8-bit grid)"},
    {"QUANT002", Severity::kError,
     "activation range yields an illegal scale or zero-point"},
    {"QUANT003", Severity::kError,
     "invalid per-channel axis (weights are laid out [out_channels, ...])"},
    {"QUANT004", Severity::kError,
     "illegal u8/s8 mixing between weights and activations"},
    {"QUANT005", Severity::kError,
     "QAT/PTQ rule conflict: QAT weights are mutually agreed for INT8 "
     "submissions only"},
    {"QUANT006", Severity::kError,
     "calibration sample outside the approved calibration set"},
    {"QUANT007", Severity::kWarning,
     "stale activation range: refers to a missing or weight tensor"},
    {"QUANT008", Severity::kWarning,
     "activation range cannot represent zero exactly"},
    {"RUN001", Severity::kError, "invalid worker thread count"},
    {"RUN002", Severity::kWarning,
     "cooldown outside the run rules' 0-5 minute window"},
    {"RUN003", Severity::kError, "fault probability outside [0, 1]"},
    {"RUN004", Severity::kError, "negative performance-retry budget"},
    {"RUN005", Severity::kError,
     "scratch buffer shared across worker threads (nondeterministic reuse)"},
    {"RUN006", Severity::kWarning,
     "ad-hoc (non-pool) threading: partitioning is not deterministic"},
    {"RUN007", Severity::kError,
     "kernel ISA is unknown or unavailable on this host"},
    {"RUN008", Severity::kError,
     "tile configuration is invalid or has no effect on this graph"},
    {"SHAPE001", Severity::kError,
     "node output shape disagrees with shape inference"},
    {"SHAPE002", Severity::kError,
     "wrong input/weight arity or attribute record for the op"},
    {"SHAPE003", Severity::kError,
     "operand violates the op's rank/shape/axis constraints"},
    {"SHAPE004", Severity::kError,
     "weight tensor shape disagrees with the op's attributes"},
    {"SOC001", Severity::kError,
     "execution policy references an engine the chipset does not have"},
    {"SOC002", Severity::kError,
     "mapped engine does not support the submission numerics"},
    {"SOC003", Severity::kError,
     "op class disabled on its mapped engine (CPU-fallback hazard)"},
    {"SOC004", Severity::kWarning,
     "policy declares CPU-fallback op-coverage holes"},
    {"SOC005", Severity::kError, "malformed execution policy"},
    {"XFM001", Severity::kError,
     "rewrite left a dangling edge: node references a removed or "
     "out-of-range tensor"},
    {"XFM002", Severity::kError,
     "rewrite broke the shape contract: a surviving tensor changed shape"},
    {"XFM003", Severity::kError,
     "rewrite lost or reordered a graph output"},
    {"XFM004", Severity::kNote,
     "rewrite skipped: it would move a quantization point under the "
     "submission numerics"},
    {"XFM005", Severity::kError,
     "alias-unsafe rewrite: memory plan aliases a buffer for an op outside "
     "the planner's in-place set"},
    {"XFM006", Severity::kError,
     "rewrite modified nodes outside its matched subgraph"},
    {"XFM007", Severity::kError,
     "rewrite introduced new analysis diagnostics on the transformed graph"},
    {"XFM008", Severity::kWarning,
     "pass rolled back: its rewrites failed post-pass verification"},
}};

static_assert(kCatalogue.size() == 38);

}  // namespace

std::span<const CodeInfo> DiagnosticCatalogue() { return kCatalogue; }

const CodeInfo* FindCode(std::string_view code) {
  const auto it = std::lower_bound(
      kCatalogue.begin(), kCatalogue.end(), code,
      [](const CodeInfo& info, std::string_view c) { return info.code < c; });
  if (it == kCatalogue.end() || it->code != code) return nullptr;
  return &*it;
}

SourceRef GraphSource(std::string name) {
  return SourceRef{SourceKind::kGraph, std::move(name), -1};
}
SourceRef NodeSource(std::string name, std::int32_t index) {
  return SourceRef{SourceKind::kNode, std::move(name), index};
}
SourceRef TensorSource(std::string name, std::int32_t id) {
  return SourceRef{SourceKind::kTensor, std::move(name), id};
}
SourceRef ConfigSource(std::string key) {
  return SourceRef{SourceKind::kConfigKey, std::move(key), -1};
}

void DiagnosticEngine::Report(std::string_view code, SourceRef source,
                              std::string message) {
  const CodeInfo* info = FindCode(code);
  Expects(info != nullptr,
          "unregistered diagnostic code: " + std::string(code));
  Report(code, info->default_severity, std::move(source), std::move(message));
}

void DiagnosticEngine::Report(std::string_view code, Severity severity,
                              SourceRef source, std::string message) {
  Diagnostic d{std::string(code), severity, std::move(source),
               std::move(message)};
  // Keep the list ordered by (code, source id), stable for ties: pass
  // output then never depends on pass-internal iteration order, so golden
  // JSON tests and the transform layer's pre/post-pass diffs cannot flake.
  const auto pos = std::upper_bound(
      diagnostics_.begin(), diagnostics_.end(), d,
      [](const Diagnostic& a, const Diagnostic& b) {
        if (a.code != b.code) return a.code < b.code;
        return a.source.id < b.source.id;
      });
  diagnostics_.insert(pos, std::move(d));
}

Severity DiagnosticEngine::MaxSeverity() const {
  Severity max = Severity::kNote;
  for (const Diagnostic& d : diagnostics_)
    if (d.severity > max) max = d.severity;
  return max;
}

bool DiagnosticEngine::SeenCode(std::string_view code) const {
  return std::any_of(diagnostics_.begin(), diagnostics_.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

std::size_t DiagnosticEngine::Count(Severity s) const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics_.begin(), diagnostics_.end(),
                    [&](const Diagnostic& d) { return d.severity == s; }));
}

std::string DiagnosticEngine::ToText() const {
  if (diagnostics_.empty()) return {};
  std::ostringstream os;
  for (const Diagnostic& d : diagnostics_) {
    os << ToString(d.severity) << ' ' << d.code << ' '
       << ToString(d.source.kind);
    if (!d.source.name.empty()) os << " '" << d.source.name << '\'';
    if (d.source.id >= 0) os << " (#" << d.source.id << ')';
    os << ": " << d.message << '\n';
  }
  os << error_count() << " error(s), " << warning_count() << " warning(s), "
     << note_count() << " note(s)\n";
  return os.str();
}

namespace {

void AppendJsonString(std::ostringstream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          os << "\\u00" << kHex[(c >> 4) & 0xF] << kHex[c & 0xF];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string DiagnosticEngine::ToJson() const {
  std::ostringstream os;
  os << "{\"diagnostics\":[";
  for (std::size_t i = 0; i < diagnostics_.size(); ++i) {
    const Diagnostic& d = diagnostics_[i];
    if (i) os << ',';
    os << "{\"code\":";
    AppendJsonString(os, d.code);
    os << ",\"severity\":";
    AppendJsonString(os, ToString(d.severity));
    os << ",\"source\":{\"kind\":";
    AppendJsonString(os, ToString(d.source.kind));
    os << ",\"name\":";
    AppendJsonString(os, d.source.name);
    os << ",\"id\":" << d.source.id;
    os << "},\"message\":";
    AppendJsonString(os, d.message);
    os << '}';
  }
  os << "],\"counts\":{\"error\":" << error_count()
     << ",\"warning\":" << warning_count() << ",\"note\":" << note_count()
     << "}}";
  return os.str();
}

}  // namespace mlpm::analysis
