file(REMOVE_RECURSE
  "CMakeFiles/mlpm_infer.dir/executor.cpp.o"
  "CMakeFiles/mlpm_infer.dir/executor.cpp.o.d"
  "CMakeFiles/mlpm_infer.dir/int8_conv.cpp.o"
  "CMakeFiles/mlpm_infer.dir/int8_conv.cpp.o.d"
  "CMakeFiles/mlpm_infer.dir/int8_gemm.cpp.o"
  "CMakeFiles/mlpm_infer.dir/int8_gemm.cpp.o.d"
  "CMakeFiles/mlpm_infer.dir/weights.cpp.o"
  "CMakeFiles/mlpm_infer.dir/weights.cpp.o.d"
  "libmlpm_infer.a"
  "libmlpm_infer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlpm_infer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
