// Tests for framework traits, the Table 2 vendor policies, and the
// simulated backend's LoadGen integration.
#include <gtest/gtest.h>

#include "backends/dummy_backend.h"
#include "backends/framework.h"
#include "backends/simulated_backend.h"
#include "backends/vendor_policy.h"
#include "core/loadgen.h"
#include "models/mobilenet_edgetpu.h"
#include "models/zoo.h"

namespace mlpm::backends {
namespace {

TEST(Framework, VendorSdkIsDirect) {
  const FrameworkTraits t = VendorSdkTraits("SNPE");
  EXPECT_EQ(t.kind, FrameworkKind::kVendorSdk);
  EXPECT_EQ(t.force_partition_every, 0);
  EXPECT_FALSE(t.copies_boundary_tensors);
  EXPECT_TRUE(t.multi_accelerator_offline);
  EXPECT_EQ(t.cpu_fallback_fraction, 0.0);
}

TEST(Framework, NnapiHasHalCosts) {
  const FrameworkTraits t = NnapiTraits("neuron-ann");
  EXPECT_EQ(t.kind, FrameworkKind::kNnapi);
  EXPECT_GT(t.force_partition_every, 0);
  EXPECT_TRUE(t.copies_boundary_tensors);
  EXPECT_FALSE(t.multi_accelerator_offline);
  EXPECT_GT(t.per_partition_sync_us, VendorSdkTraits("x").per_partition_sync_us);
}

TEST(Framework, BuggyNnapiAddsFallback) {
  const FrameworkTraits t = NnapiBuggyTraits("default", 0.2);
  EXPECT_DOUBLE_EQ(t.cpu_fallback_fraction, 0.2);
  EXPECT_NE(t.name.find("buggy"), std::string::npos);
}

TEST(Framework, OverheadConversion) {
  FrameworkTraits t = VendorSdkTraits("ENN");
  t.per_inference_overhead_us = 100.0;
  const soc::RuntimeOverheads o = t.ToOverheads();
  EXPECT_DOUBLE_EQ(o.per_inference_s, 1e-4);
}

// ---- vendor policies (Table 2 as data) ----

TEST(VendorPolicy, Table2NumericsShape) {
  // Vision: UINT8/INT8; NLP: FP16 on phones, INT8 on laptops (§7.5, §7.4).
  for (const auto version :
       {models::SuiteVersion::kV0_7, models::SuiteVersion::kV1_0}) {
    const auto catalog = version == models::SuiteVersion::kV0_7
                             ? soc::CatalogV07()
                             : soc::CatalogV10();
    for (const soc::ChipsetDesc& chip : catalog) {
      const bool laptop = chip.name.starts_with("Core i7");
      for (const auto& e : models::SuiteFor(version)) {
        const SubmissionConfig s = GetSubmission(chip, e.task, version);
        if (e.task == models::TaskType::kQuestionAnswering && !laptop) {
          EXPECT_EQ(s.numerics, DataType::kFloat16) << chip.name;
        } else {
          EXPECT_TRUE(IsQuantized(s.numerics)) << chip.name;
        }
      }
    }
  }
}

TEST(VendorPolicy, FrameworkLabelsMatchTable2) {
  const auto v07 = models::SuiteVersion::kV0_7;
  EXPECT_EQ(GetSubmission(soc::Exynos990(),
                          models::TaskType::kImageClassification, v07)
                .framework.name,
            "ENN");
  EXPECT_EQ(GetSubmission(soc::Snapdragon865Plus(),
                          models::TaskType::kObjectDetection, v07)
                .framework.name,
            "SNPE");
  EXPECT_EQ(GetSubmission(soc::CoreI7_1165G7(),
                          models::TaskType::kImageSegmentation, v07)
                .framework.name,
            "OpenVINO");
  // MediaTek v0.7 went through NNAPI with the neuron-ann driver.
  EXPECT_NE(GetSubmission(soc::Dimensity820(),
                          models::TaskType::kImageClassification, v07)
                .framework.name.find("NNAPI"),
            std::string::npos);
}

TEST(VendorPolicy, MediaTekSwitchesToNeuronInV10) {
  const SubmissionConfig s =
      GetSubmission(soc::Dimensity1100(),
                    models::TaskType::kImageClassification,
                    models::SuiteVersion::kV1_0);
  EXPECT_EQ(s.framework.kind, FrameworkKind::kVendorSdk);
  EXPECT_NE(s.framework.name.find("Neuron"), std::string::npos);
}

TEST(VendorPolicy, OfflineSubmissionsUseAlp) {
  const auto v07 = models::SuiteVersion::kV0_7;
  // Exynos: NPU+CPU; Snapdragon: HTA+HVX; Intel: CPU+iGPU (Table 2).
  const SubmissionConfig ex = GetSubmission(
      soc::Exynos990(), models::TaskType::kImageClassification, v07);
  ASSERT_EQ(ex.offline_replicas.size(), 2u);
  EXPECT_EQ(ex.offline_replicas[0].engines.front(), "npu");
  EXPECT_EQ(ex.offline_replicas[1].engines.front(), "cpu");

  const SubmissionConfig sd = GetSubmission(
      soc::Snapdragon865Plus(), models::TaskType::kImageClassification, v07);
  ASSERT_EQ(sd.offline_replicas.size(), 2u);
  EXPECT_EQ(sd.offline_replicas[0].engines.front(), "hta");
  EXPECT_EQ(sd.offline_replicas[1].engines.front(), "hvx");

  const SubmissionConfig in = GetSubmission(
      soc::CoreI7_1165G7(), models::TaskType::kImageClassification, v07);
  ASSERT_EQ(in.offline_replicas.size(), 2u);
}

TEST(VendorPolicy, MediaTekDidNotSubmitOffline) {
  const SubmissionConfig s = GetSubmission(
      soc::Dimensity820(), models::TaskType::kImageClassification,
      models::SuiteVersion::kV0_7);
  EXPECT_TRUE(s.offline_replicas.empty());
}

TEST(VendorPolicy, ExynosSegmentationBouncesBetweenIpBlocks) {
  const SubmissionConfig v07 = GetSubmission(
      soc::Exynos990(), models::TaskType::kImageSegmentation,
      models::SuiteVersion::kV0_7);
  ASSERT_EQ(v07.single_stream.engines.size(), 2u);
  EXPECT_GT(v07.single_stream.alternate_every, 0);
  const SubmissionConfig v10 = GetSubmission(
      soc::Exynos2100(), models::TaskType::kImageSegmentation,
      models::SuiteVersion::kV1_0);
  // The 2100's scheduler partitions far more coarsely (App. C).
  EXPECT_GT(v10.single_stream.alternate_every,
            v07.single_stream.alternate_every);
}

TEST(VendorPolicy, IntelSingleStreamEnginesFollowModelSize) {
  const auto v = models::SuiteVersion::kV1_0;
  const soc::ChipsetDesc laptop = soc::CoreI7_11375H();
  EXPECT_EQ(GetSubmission(laptop, models::TaskType::kImageClassification, v)
                .single_stream.engines.front(),
            "cpu");
  EXPECT_EQ(GetSubmission(laptop, models::TaskType::kImageSegmentation, v)
                .single_stream.engines.front(),
            "igpu");
  EXPECT_EQ(GetSubmission(laptop, models::TaskType::kQuestionAnswering, v)
                .single_stream.engines.front(),
            "igpu");
}

TEST(VendorPolicy, UnknownChipsetRejected) {
  soc::ChipsetDesc fake;
  fake.name = "Mystery SoC";
  EXPECT_THROW((void)GetSubmission(fake,
                                   models::TaskType::kImageClassification,
                                   models::SuiteVersion::kV1_0),
               CheckError);
}

TEST(VendorPolicy, NnapiOfflineCannotUseMultipleAccelerators) {
  // With an NNAPI framework, only the primary offline replica runs (§7.4:
  // NNAPI cannot drive multi-MDLA / multiple accelerators).
  const soc::ChipsetDesc chip = soc::Exynos990();
  SubmissionConfig s = GetSubmission(
      chip, models::TaskType::kImageClassification,
      models::SuiteVersion::kV0_7);
  s.framework = NnapiTraits("generic");
  const graph::Graph model = models::BuildMobileNetEdgeTpu(
      models::ModelScale::kFull);
  EXPECT_EQ(CompileOfflineReplicas(chip, s, model).size(), 1u);
  s.framework = VendorSdkTraits("ENN");
  EXPECT_EQ(CompileOfflineReplicas(chip, s, model).size(), 2u);
}


TEST(DummyBackend, SatisfiesTheSutProtocol) {
  // The submitter skeleton (paper §4.1) must pass the LoadGen's protocol
  // checks even though it computes nothing.
  backends::DummyBackend dummy("ExampleVendor");
  EXPECT_NE(dummy.name().find("ExampleVendor"), std::string::npos);
  struct Sink final : loadgen::ResponseSink {
    void Complete(loadgen::QuerySampleResponse r) override {
      ids.push_back(r.id);
    }
    std::vector<std::uint64_t> ids;
  } sink;
  std::vector<loadgen::QuerySample> q{{1, 0}, {2, 1}, {3, 0}};
  dummy.IssueQuery(q, sink);
  EXPECT_EQ(sink.ids.size(), 3u);
  EXPECT_EQ(dummy.queries_answered(), 3u);
}

// ---- simulated backend ----

TEST(SimulatedBackend, SingleQueryAdvancesClockByLatency) {
  const soc::ChipsetDesc chip = soc::Dimensity1100();
  const SubmissionConfig sub = GetSubmission(
      chip, models::TaskType::kImageClassification,
      models::SuiteVersion::kV1_0);
  const graph::Graph model =
      models::BuildMobileNetEdgeTpu(models::ModelScale::kFull);
  loadgen::VirtualClock clock;
  SimulatedBackend sut("test", soc::SocSimulator(chip),
                       CompileSubmission(chip, sub, model), {}, clock);

  struct Sink final : loadgen::ResponseSink {
    void Complete(loadgen::QuerySampleResponse r) override {
      ids.push_back(r.id);
    }
    std::vector<std::uint64_t> ids;
  } sink;

  const loadgen::QuerySample q{42, 0};
  sut.IssueQuery({&q, 1}, sink);
  ASSERT_EQ(sink.ids.size(), 1u);
  EXPECT_EQ(sink.ids[0], 42u);
  EXPECT_NEAR(clock.Now().count(), 2.23e-3, 0.15e-3);
  EXPECT_GT(sut.total_energy_j(), 0.0);
}

TEST(SimulatedBackend, EndToEndCostsExtendLatency) {
  const soc::ChipsetDesc chip = soc::Dimensity1100();
  const SubmissionConfig sub = GetSubmission(
      chip, models::TaskType::kImageClassification,
      models::SuiteVersion::kV1_0);
  const graph::Graph model =
      models::BuildMobileNetEdgeTpu(models::ModelScale::kFull);

  EndToEndCosts e2e;
  e2e.preprocess_s = 1e-3;
  e2e.postprocess_s = 5e-4;

  loadgen::VirtualClock plain_clock, e2e_clock;
  SimulatedBackend plain("p", soc::SocSimulator(chip),
                         CompileSubmission(chip, sub, model), {},
                         plain_clock);
  SimulatedBackend with_tax("e", soc::SocSimulator(chip),
                            CompileSubmission(chip, sub, model), {},
                            e2e_clock, e2e);
  struct Sink final : loadgen::ResponseSink {
    void Complete(loadgen::QuerySampleResponse) override {}
  } sink;
  const loadgen::QuerySample q{1, 0};
  plain.IssueQuery({&q, 1}, sink);
  with_tax.IssueQuery({&q, 1}, sink);
  EXPECT_NEAR(e2e_clock.Now().count() - plain_clock.Now().count(), 1.5e-3,
              1e-6);
}

TEST(SimulatedBackend, BurstCompletesAllSamplesMonotonically) {
  const soc::ChipsetDesc chip = soc::Exynos990();
  const SubmissionConfig sub = GetSubmission(
      chip, models::TaskType::kImageClassification,
      models::SuiteVersion::kV0_7);
  const graph::Graph model =
      models::BuildMobileNetEdgeTpu(models::ModelScale::kFull);
  loadgen::VirtualClock clock;
  SimulatedBackend sut("test", soc::SocSimulator(chip),
                       CompileSubmission(chip, sub, model),
                       CompileOfflineReplicas(chip, sub, model), clock);
  struct Sink final : loadgen::ResponseSink {
    void Complete(loadgen::QuerySampleResponse r) override {
      ids.push_back(r.id);
    }
    std::vector<std::uint64_t> ids;
  } sink;
  std::vector<loadgen::QuerySample> burst;
  for (std::uint64_t i = 0; i < 512; ++i)
    burst.push_back(loadgen::QuerySample{i + 1, 0});
  sut.IssueQuery(burst, sink);
  EXPECT_EQ(sink.ids.size(), 512u);
  EXPECT_GT(clock.Now().count(), 0.0);
}

TEST(SimulatedBackend, EmptyQueryRejected) {
  const soc::ChipsetDesc chip = soc::Dimensity1100();
  const SubmissionConfig sub = GetSubmission(
      chip, models::TaskType::kImageClassification,
      models::SuiteVersion::kV1_0);
  const graph::Graph model =
      models::BuildMobileNetEdgeTpu(models::ModelScale::kFull);
  loadgen::VirtualClock clock;
  SimulatedBackend sut("test", soc::SocSimulator(chip),
                       CompileSubmission(chip, sub, model), {}, clock);
  struct Sink final : loadgen::ResponseSink {
    void Complete(loadgen::QuerySampleResponse) override {}
  } sink;
  EXPECT_THROW(sut.IssueQuery({}, sink), CheckError);
}

}  // namespace
}  // namespace mlpm::backends
