// Static verification layer (DESIGN.md §9): one adversarial fixture per
// diagnostic code, engine semantics, the frozen JSON schema, and the
// harness strict-mode gate.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/passes.h"
#include "backends/vendor_policy.h"
#include "graph/serialize.h"
#include "harness/run_session.h"
#include "infer/quant_params.h"
#include "models/zoo.h"
#include "soc/chipset.h"

namespace mlpm {
namespace {

using analysis::DiagnosticEngine;
using analysis::Severity;

// Parses an adversarial fixture via the syntax-only loader (the validating
// ParseGraph would throw on exactly the defects the linter must report).
graph::Graph G(const std::string& body) {
  return graph::ParseGraphUnchecked("mlpm_graph v1\nname fixture\n" + body);
}

std::vector<std::string> CodesOf(const DiagnosticEngine& de) {
  std::vector<std::string> codes;
  for (const auto& d : de.diagnostics()) codes.push_back(d.code);
  return codes;
}

bool Has(const DiagnosticEngine& de, std::string_view code) {
  return de.SeenCode(code);
}

// --- Engine semantics ------------------------------------------------------

TEST(DiagnosticEngine, CatalogueIsSortedAndComplete) {
  const auto cat = analysis::DiagnosticCatalogue();
  EXPECT_EQ(cat.size(), 38u);  // +1: tiled-execution config RUN008
  EXPECT_TRUE(std::is_sorted(
      cat.begin(), cat.end(),
      [](const auto& a, const auto& b) { return a.code < b.code; }));
  for (const auto& info : cat) {
    const analysis::CodeInfo* found = analysis::FindCode(info.code);
    ASSERT_NE(found, nullptr) << info.code;
    EXPECT_EQ(found->code, info.code);
    EXPECT_FALSE(info.summary.empty()) << info.code;
  }
  EXPECT_EQ(analysis::FindCode("NOPE999"), nullptr);
}

TEST(DiagnosticEngine, DefaultSeverityComesFromCatalogue) {
  DiagnosticEngine de;
  de.Report("GRAPH001", analysis::TensorSource("t", 3), "dead");
  de.Report("GRAPH003", analysis::NodeSource("n", 0), "alias");
  ASSERT_EQ(de.diagnostics().size(), 2u);
  EXPECT_EQ(de.diagnostics()[0].severity, Severity::kWarning);
  EXPECT_EQ(de.diagnostics()[1].severity, Severity::kError);
  EXPECT_EQ(de.error_count(), 1u);
  EXPECT_EQ(de.warning_count(), 1u);
  EXPECT_TRUE(de.HasErrors());
  EXPECT_EQ(de.MaxSeverity(), Severity::kError);
  EXPECT_TRUE(de.SeenCode("GRAPH001"));
  EXPECT_FALSE(de.SeenCode("GRAPH002"));
}

TEST(DiagnosticEngine, UnregisteredCodeIsRejected) {
  DiagnosticEngine de;
  EXPECT_THROW(de.Report("BOGUS001", analysis::GraphSource("g"), "x"),
               CheckError);
}

TEST(DiagnosticEngine, EmptyEngineRendersEmptyText) {
  DiagnosticEngine de;
  EXPECT_TRUE(de.empty());
  EXPECT_EQ(de.ToText(), "");
  EXPECT_EQ(de.MaxSeverity(), Severity::kNote);
}

TEST(DiagnosticEngine, TextRenderingNamesSourceAndCode) {
  DiagnosticEngine de;
  de.Report("SHAPE001", analysis::NodeSource("conv0", 2), "mismatch");
  const std::string text = de.ToText();
  EXPECT_NE(text.find("error SHAPE001 node 'conv0' (#2): mismatch"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("1 error(s), 0 warning(s), 0 note(s)"),
            std::string::npos);
}

// The JSON schema is frozen: downstream tooling parses it, so any change
// here is a breaking change and must be deliberate.
TEST(DiagnosticEngine, GoldenJsonSnapshot) {
  DiagnosticEngine de;
  de.Report("GRAPH001", analysis::TensorSource("t7", 7), "dead tensor");
  de.Report("QUANT005", analysis::ConfigSource("quant.use_qat_weights"),
            "QAT \"weights\"\nfor FP16");
  const std::string expected =
      R"({"diagnostics":[)"
      R"({"code":"GRAPH001","severity":"warning",)"
      R"("source":{"kind":"tensor","name":"t7","id":7},)"
      R"("message":"dead tensor"},)"
      R"({"code":"QUANT005","severity":"error",)"
      R"("source":{"kind":"config","name":"quant.use_qat_weights","id":-1},)"
      R"("message":"QAT \"weights\"\nfor FP16"}],)"
      R"("counts":{"error":1,"warning":1,"note":0}})";
  EXPECT_EQ(de.ToJson(), expected);
}

TEST(DiagnosticEngine, EmptyJsonSnapshot) {
  DiagnosticEngine de;
  EXPECT_EQ(de.ToJson(),
            R"({"diagnostics":[],"counts":{"error":0,"warning":0,"note":0}})");
}

// --- Graph structure lints (GRAPH001-GRAPH005) -----------------------------

TEST(GraphLints, DeadTensorIsGraph001) {
  const graph::Graph g = G(
      "tensor 0 a 4 1 8 8 3 in\n"
      "tensor 1 a 4 1 8 8 3 out\n"
      "tensor 2 a 4 1 8 8 3 dead\n"
      "node live add [] in 2 0 0 w 0 out 1\n"
      "node stray add [] in 2 0 0 w 0 out 2\n"
      "graph_input 0\ngraph_output 1\n");
  DiagnosticEngine de;
  analysis::CheckGraphStructure(g, de);
  EXPECT_TRUE(Has(de, "GRAPH001"));
  EXPECT_TRUE(Has(de, "GRAPH002"));  // the stray node is also unreachable
  EXPECT_FALSE(de.HasErrors());      // both are warnings
}

TEST(GraphLints, UnreachableNodeIsGraph002) {
  const graph::Graph g = G(
      "tensor 0 a 4 1 8 8 3 in\n"
      "tensor 1 a 4 1 8 8 3 mid\n"
      "tensor 2 a 4 1 8 8 3 out\n"
      "node island add [] in 2 0 0 w 0 out 1\n"
      "node sink add [] in 2 1 1 w 0 out 2\n"
      "graph_input 0\ngraph_output 0\n");
  DiagnosticEngine de;
  analysis::CheckGraphStructure(g, de);
  EXPECT_TRUE(Has(de, "GRAPH002"));
}

TEST(GraphLints, AliasingWritesAreGraph003) {
  // In-place write (output == input) and double production of tensor 1.
  const graph::Graph g = G(
      "tensor 0 a 4 1 8 8 3 in\n"
      "tensor 1 a 4 1 8 8 3 t1\n"
      "node inplace add [] in 2 1 1 w 0 out 1\n"
      "node again add [] in 2 0 0 w 0 out 1\n"
      "graph_input 0\ngraph_output 1\n");
  DiagnosticEngine de;
  analysis::CheckGraphStructure(g, de);
  const auto codes = CodesOf(de);
  EXPECT_GE(std::count(codes.begin(), codes.end(), "GRAPH003"), 2);
  EXPECT_TRUE(de.HasErrors());
}

TEST(GraphLints, OverwritingGraphInputIsGraph003) {
  const graph::Graph g = G(
      "tensor 0 a 4 1 8 8 3 in\n"
      "tensor 1 a 4 1 8 8 3 out\n"
      "node clobber add [] in 2 1 1 w 0 out 0\n"
      "node use add [] in 2 0 0 w 0 out 1\n"
      "graph_input 0\ngraph_output 1\n");
  DiagnosticEngine de;
  analysis::CheckGraphStructure(g, de);
  EXPECT_TRUE(Has(de, "GRAPH003"));
}

TEST(GraphLints, DataflowCycleIsGraph004) {
  // a consumes what b produces and vice versa: no topological order exists.
  const graph::Graph g = G(
      "tensor 0 a 4 1 8 8 3 in\n"
      "tensor 1 a 4 1 8 8 3 t1\n"
      "tensor 2 a 4 1 8 8 3 t2\n"
      "node a add [] in 2 0 1 w 0 out 2\n"
      "node b add [] in 2 0 2 w 0 out 1\n"
      "graph_input 0\ngraph_output 2\n");
  DiagnosticEngine de;
  analysis::CheckGraphStructure(g, de);
  EXPECT_TRUE(Has(de, "GRAPH004"));
  EXPECT_TRUE(de.HasErrors());
}

TEST(GraphLints, OutOfRangeIdIsGraph005AndGatesShapePass) {
  const graph::Graph g = G(
      "tensor 0 a 4 1 8 8 3 in\n"
      "node bad add [] in 2 0 9 w 0 out 0\n"
      "graph_input 0\ngraph_output 0\n");
  DiagnosticEngine de;
  analysis::RunModelPasses(g, de);
  EXPECT_TRUE(Has(de, "GRAPH005"));
  // The shape pass must not run over (and crash on) corrupt ids.
  for (const auto& d : de.diagnostics())
    EXPECT_EQ(d.code.substr(0, 5), "GRAPH") << d.code;
}

TEST(GraphLints, WeightUsedAsInputIsGraph005) {
  const graph::Graph g = G(
      "tensor 0 a 4 1 8 8 3 in\n"
      "tensor 1 w 1 16 k\n"
      "tensor 2 a 4 1 8 8 3 out\n"
      "node bad add [] in 2 0 1 w 0 out 2\n"
      "graph_input 0\ngraph_output 2\n");
  DiagnosticEngine de;
  analysis::CheckGraphStructure(g, de);
  EXPECT_TRUE(Has(de, "GRAPH005"));
}

// --- Shape dataflow (SHAPE001-SHAPE004) ------------------------------------

TEST(ShapeDataflow, RecordedShapeMismatchIsShape001) {
  const graph::Graph g = G(
      "tensor 0 a 4 1 8 8 3 in\n"
      "tensor 1 a 4 1 8 8 5 out\n"  // add must preserve [1,8,8,3]
      "node sum add [] in 2 0 0 w 0 out 1\n"
      "graph_input 0\ngraph_output 1\n");
  DiagnosticEngine de;
  analysis::CheckShapeDataflow(g, de);
  EXPECT_EQ(CodesOf(de), std::vector<std::string>{"SHAPE001"});
}

TEST(ShapeDataflow, WrongArityIsShape002) {
  const graph::Graph g = G(
      "tensor 0 a 4 1 8 8 3 in\n"
      "tensor 1 a 4 1 8 8 3 out\n"
      "node lonely add [] in 1 0 w 0 out 1\n"
      "graph_input 0\ngraph_output 1\n");
  DiagnosticEngine de;
  analysis::CheckShapeDataflow(g, de);
  EXPECT_EQ(CodesOf(de), std::vector<std::string>{"SHAPE002"});
}

TEST(ShapeDataflow, MissingConvWeightsAreShape002) {
  const graph::Graph g = G(
      "tensor 0 a 4 1 8 8 3 in\n"
      "tensor 1 a 4 1 8 8 8 out\n"
      "node c conv2d [oc=8 k=3 s=1 d=1 p=1 a=0] in 1 0 w 0 out 1\n"
      "graph_input 0\ngraph_output 1\n");
  DiagnosticEngine de;
  analysis::CheckShapeDataflow(g, de);
  EXPECT_TRUE(Has(de, "SHAPE002"));
}

TEST(ShapeDataflow, OperandConstraintViolationIsShape003) {
  const graph::Graph g = G(
      "tensor 0 a 4 1 8 8 3 a0\n"
      "tensor 1 a 4 1 4 4 3 a1\n"  // mismatched elementwise operands
      "tensor 2 a 4 1 8 8 3 out\n"
      "node sum add [] in 2 0 1 w 0 out 2\n"
      "graph_input 0\ngraph_input 1\ngraph_output 2\n");
  DiagnosticEngine de;
  analysis::CheckShapeDataflow(g, de);
  EXPECT_EQ(CodesOf(de), std::vector<std::string>{"SHAPE003"});
}

TEST(ShapeDataflow, BadConcatAxisIsShape003) {
  const graph::Graph g = G(
      "tensor 0 a 4 1 8 8 3 a0\n"
      "tensor 1 a 4 1 8 8 3 a1\n"
      "tensor 2 a 4 1 8 8 6 out\n"
      "node cat concat [axis=7] in 2 0 1 w 0 out 2\n"
      "graph_input 0\ngraph_input 1\ngraph_output 2\n");
  DiagnosticEngine de;
  analysis::CheckShapeDataflow(g, de);
  EXPECT_TRUE(Has(de, "SHAPE003"));
}

TEST(ShapeDataflow, WrongWeightShapeIsShape004) {
  // Conv kernel should be [8,3,3,3]; fixture records [8,3,3,4].
  const graph::Graph g = G(
      "tensor 0 a 4 1 8 8 3 in\n"
      "tensor 1 w 4 8 3 3 4 kern\n"
      "tensor 2 w 1 8 bias\n"
      "tensor 3 a 4 1 8 8 8 out\n"
      "node c conv2d [oc=8 k=3 s=1 d=1 p=1 a=0] in 1 0 w 2 1 2 out 3\n"
      "graph_input 0\ngraph_output 3\n");
  DiagnosticEngine de;
  analysis::CheckShapeDataflow(g, de);
  EXPECT_EQ(CodesOf(de), std::vector<std::string>{"SHAPE004"});
}

TEST(ShapeDataflow, ReshapeElementCountIsChecked) {
  const graph::Graph g = G(
      "tensor 0 a 4 1 8 8 3 in\n"
      "tensor 1 a 2 1 100 out\n"
      "node r reshape [rank=2 dim=1 dim=100] in 1 0 w 0 out 1\n"
      "graph_input 0\ngraph_output 1\n");
  DiagnosticEngine de;
  analysis::CheckShapeDataflow(g, de);
  EXPECT_TRUE(Has(de, "SHAPE003"));
}

TEST(ShapeDataflow, ShippedReferenceModelsAreClean) {
  for (const auto version :
       {models::SuiteVersion::kV0_7, models::SuiteVersion::kV1_0}) {
    for (const models::BenchmarkEntry& e : models::SuiteFor(version)) {
      const graph::Graph g =
          models::BuildReferenceGraph(e, version, models::ModelScale::kFull);
      DiagnosticEngine de;
      analysis::RunModelPasses(g, de);
      EXPECT_TRUE(de.empty())
          << e.id << " (" << ToString(version) << "):\n" << de.ToText();
    }
  }
}

// --- Quantization legality (QUANT001-QUANT008) -----------------------------

graph::Graph TinyQuantGraph() {
  return G(
      "tensor 0 a 4 1 8 8 3 in\n"
      "tensor 1 a 4 1 8 8 3 out\n"
      "node sum add [] in 2 0 0 w 0 out 1\n"
      "graph_input 0\ngraph_output 1\n");
}

TEST(QuantLegality, NonEightBitGridIsQuant001) {
  analysis::QuantConfigView q;
  q.activation_bits = 4;
  q.weight_bits = 16;
  DiagnosticEngine de;
  analysis::CheckQuantLegality(TinyQuantGraph(), q, de);
  const auto codes = CodesOf(de);
  EXPECT_EQ(std::count(codes.begin(), codes.end(), "QUANT001"), 2);
}

TEST(QuantLegality, IllegalRangeIsQuant002) {
  infer::QuantParams params;
  params.activation_ranges[0] = {2.0f, -2.0f};  // min > max
  analysis::QuantConfigView q;
  q.params = &params;
  DiagnosticEngine de;
  analysis::CheckQuantLegality(TinyQuantGraph(), q, de);
  EXPECT_TRUE(Has(de, "QUANT002"));
}

TEST(QuantLegality, NonZeroChannelAxisIsQuant003) {
  analysis::QuantConfigView q;
  q.per_channel_axis = 3;
  DiagnosticEngine de;
  analysis::CheckQuantLegality(TinyQuantGraph(), q, de);
  EXPECT_TRUE(Has(de, "QUANT003"));
}

TEST(QuantLegality, UnsignedWeightsWithSignedActivationsIsQuant004) {
  analysis::QuantConfigView q;
  q.activation_dtype = DataType::kInt8;
  q.weight_dtype = DataType::kUInt8;
  DiagnosticEngine de;
  analysis::CheckQuantLegality(TinyQuantGraph(), q, de);
  EXPECT_TRUE(Has(de, "QUANT004"));
}

TEST(QuantLegality, QatWeightsForFloatSubmissionIsQuant005) {
  analysis::QuantConfigView q;
  q.activation_dtype = DataType::kFloat16;
  q.qat_weights = true;
  DiagnosticEngine de;
  analysis::CheckQuantLegality(TinyQuantGraph(), q, de);
  EXPECT_EQ(CodesOf(de), std::vector<std::string>{"QUANT005"});
}

TEST(QuantLegality, QatWeightsForInt8IsLegal) {
  analysis::QuantConfigView q;
  q.qat_weights = true;  // activation dtype defaults to UINT8
  DiagnosticEngine de;
  analysis::CheckQuantLegality(TinyQuantGraph(), q, de);
  EXPECT_TRUE(de.empty()) << de.ToText();
}

TEST(QuantLegality, UnapprovedCalibrationSampleIsQuant006) {
  const std::vector<std::size_t> approved = {1, 2, 3};
  const std::vector<std::size_t> used = {2, 9};
  analysis::QuantConfigView q;
  q.approved_calibration = approved;
  q.used_calibration = used;
  DiagnosticEngine de;
  analysis::CheckQuantLegality(TinyQuantGraph(), q, de);
  EXPECT_TRUE(Has(de, "QUANT006"));
}

TEST(QuantLegality, StaleRangeIsQuant007) {
  infer::QuantParams params;
  params.activation_ranges[42] = {0.0f, 1.0f};  // no tensor 42
  analysis::QuantConfigView q;
  q.params = &params;
  DiagnosticEngine de;
  analysis::CheckQuantLegality(TinyQuantGraph(), q, de);
  EXPECT_TRUE(Has(de, "QUANT007"));
}

TEST(QuantLegality, ZeroExclusionIsQuant008) {
  infer::QuantParams params;
  params.activation_ranges[1] = {0.5f, 2.0f};  // cannot represent 0
  analysis::QuantConfigView q;
  q.params = &params;
  DiagnosticEngine de;
  analysis::CheckQuantLegality(TinyQuantGraph(), q, de);
  EXPECT_TRUE(Has(de, "QUANT008"));
  EXPECT_FALSE(de.HasErrors());  // warning severity
}

TEST(QuantLegality, FloatSubmissionSkipsGridChecks) {
  analysis::QuantConfigView q;
  q.activation_dtype = DataType::kFloat32;
  q.activation_bits = 4;  // would be QUANT001 if the grid were checked
  DiagnosticEngine de;
  analysis::CheckQuantLegality(TinyQuantGraph(), q, de);
  EXPECT_TRUE(de.empty()) << de.ToText();
}

// --- SoC mapping feasibility (SOC001-SOC005) -------------------------------

soc::ChipsetDesc TestChipset() {
  soc::ChipsetDesc c;
  c.name = "TestSoC";
  soc::AcceleratorDesc npu;
  npu.name = "npu";
  npu.cls = soc::EngineClass::kNpu;
  npu.peak_gmacs_int8 = 1000.0;  // INT8 only: fp16/fp32 peaks stay 0
  npu.efficiency.attention = 0.0;          // NPU cannot run attention
  npu.efficiency.dilated_scale = 0.0;      // nor dilated convolutions
  soc::AcceleratorDesc cpu;
  cpu.name = "cpu";
  cpu.cls = soc::EngineClass::kCpuBig;
  cpu.peak_gmacs_int8 = 50.0;
  cpu.peak_gmacs_fp32 = 25.0;
  c.engines = {npu, cpu};
  return c;
}

graph::Graph AttentionGraph() {
  return G(
      "tensor 0 a 2 16 64 in\n"
      "tensor 1 w 2 64 64 wq\n"
      "tensor 2 w 2 64 64 wk\n"
      "tensor 3 w 2 64 64 wv\n"
      "tensor 4 w 2 64 64 wo\n"
      "tensor 5 a 2 16 64 out\n"
      "node att mha [heads=4 hd=16] in 1 0 w 4 1 2 3 4 out 5\n"
      "graph_input 0\ngraph_output 5\n");
}

TEST(SocMapping, UnknownEngineIsSoc001) {
  const soc::ChipsetDesc c = TestChipset();
  soc::ExecutionPolicy p;
  p.engines = {"tpu"};
  analysis::MappingConfigView m{&c, &p, DataType::kInt8, "t"};
  DiagnosticEngine de;
  analysis::CheckSocMapping(AttentionGraph(), m, de);
  EXPECT_EQ(CodesOf(de), std::vector<std::string>{"SOC001"});
}

TEST(SocMapping, UnsupportedNumericsIsSoc002) {
  const soc::ChipsetDesc c = TestChipset();
  soc::ExecutionPolicy p;
  p.engines = {"npu"};
  analysis::MappingConfigView m{&c, &p, DataType::kFloat16, "t"};
  DiagnosticEngine de;
  analysis::CheckSocMapping(AttentionGraph(), m, de);
  EXPECT_TRUE(Has(de, "SOC002"));
}

TEST(SocMapping, DisabledOpClassIsSoc003) {
  const soc::ChipsetDesc c = TestChipset();
  soc::ExecutionPolicy p;
  p.engines = {"npu"};  // attention efficiency is 0 on the NPU
  analysis::MappingConfigView m{&c, &p, DataType::kInt8, "t"};
  DiagnosticEngine de;
  analysis::CheckSocMapping(AttentionGraph(), m, de);
  EXPECT_TRUE(Has(de, "SOC003"));
  EXPECT_TRUE(de.HasErrors());
}

TEST(SocMapping, DilatedConvOnIncapableEngineIsSoc003) {
  const graph::Graph g = G(
      "tensor 0 a 4 1 16 16 3 in\n"
      "tensor 1 w 4 8 3 3 3 kern\n"
      "tensor 2 w 1 8 bias\n"
      "tensor 3 a 4 1 16 16 8 out\n"
      "node c conv2d [oc=8 k=3 s=1 d=2 p=1 a=0] in 1 0 w 2 1 2 out 3\n"
      "graph_input 0\ngraph_output 3\n");
  const soc::ChipsetDesc c = TestChipset();
  soc::ExecutionPolicy p;
  p.engines = {"npu"};
  analysis::MappingConfigView m{&c, &p, DataType::kInt8, "t"};
  DiagnosticEngine de;
  analysis::CheckSocMapping(g, m, de);
  EXPECT_TRUE(Has(de, "SOC003"));
}

TEST(SocMapping, SecondaryEngineIsOnlyCheckedWhenHosting) {
  // Same policy but everything stays on the primary CPU: the NPU's
  // disabled attention class must not fire.
  const soc::ChipsetDesc c = TestChipset();
  soc::ExecutionPolicy p;
  p.engines = {"cpu", "npu"};
  analysis::MappingConfigView m{&c, &p, DataType::kInt8, "t"};
  DiagnosticEngine de;
  analysis::CheckSocMapping(AttentionGraph(), m, de);
  EXPECT_TRUE(de.empty()) << de.ToText();

  // Alternating between the engines makes the NPU a host -> hazard.
  p.alternate_every = 2;
  DiagnosticEngine de2;
  analysis::CheckSocMapping(AttentionGraph(), m, de2);
  EXPECT_TRUE(Has(de2, "SOC003"));
}

TEST(SocMapping, DeclaredFallbackHolesAreSoc004) {
  const soc::ChipsetDesc c = TestChipset();
  soc::ExecutionPolicy p;
  p.engines = {"cpu"};
  p.cpu_fallback_fraction = 0.25;
  analysis::MappingConfigView m{&c, &p, DataType::kInt8, "t"};
  DiagnosticEngine de;
  analysis::CheckSocMapping(AttentionGraph(), m, de);
  EXPECT_TRUE(Has(de, "SOC004"));
  EXPECT_FALSE(de.HasErrors());  // warning severity
}

TEST(SocMapping, MalformedPolicyIsSoc005) {
  const soc::ChipsetDesc c = TestChipset();
  soc::ExecutionPolicy p;  // no engines at all
  analysis::MappingConfigView m{&c, &p, DataType::kInt8, "t"};
  DiagnosticEngine de;
  analysis::CheckSocMapping(AttentionGraph(), m, de);
  EXPECT_EQ(CodesOf(de), std::vector<std::string>{"SOC005"});

  soc::ExecutionPolicy p2;
  p2.engines = {"cpu"};
  p2.toolchain_efficiency = 0.0;
  p2.tail_nodes_on_secondary = 3;  // needs >= 2 engines
  analysis::MappingConfigView m2{&c, &p2, DataType::kInt8, "t"};
  DiagnosticEngine de2;
  analysis::CheckSocMapping(AttentionGraph(), m2, de2);
  const auto codes = CodesOf(de2);
  EXPECT_GE(std::count(codes.begin(), codes.end(), "SOC005"), 2);
}

TEST(SocMapping, ShippedSubmissionsAreClean) {
  for (const auto version :
       {models::SuiteVersion::kV0_7, models::SuiteVersion::kV1_0}) {
    const auto catalog = version == models::SuiteVersion::kV0_7
                             ? soc::CatalogV07()
                             : soc::CatalogV10();
    for (const soc::ChipsetDesc& chipset : catalog) {
      for (const models::BenchmarkEntry& e : models::SuiteFor(version)) {
        const auto sub = backends::GetSubmission(chipset, e.task, version);
        const graph::Graph g =
            models::BuildReferenceGraph(e, version, models::ModelScale::kFull);
        analysis::MappingConfigView m{&chipset, &sub.single_stream,
                                      sub.numerics,
                                      chipset.name + "/" + e.id};
        DiagnosticEngine de;
        analysis::CheckSocMapping(g, m, de);
        for (const soc::ExecutionPolicy& r : sub.offline_replicas) {
          m.policy = &r;
          analysis::CheckSocMapping(g, m, de);
        }
        EXPECT_TRUE(de.empty())
            << chipset.name << "/" << e.id << ":\n" << de.ToText();
      }
    }
  }
}

// --- Run configuration (RUN001-RUN008) -------------------------------------

TEST(RunConfig, NegativeThreadsIsRun001) {
  analysis::RunConfigView rc;
  rc.threads = -2;
  DiagnosticEngine de;
  analysis::CheckRunConfig(rc, de);
  EXPECT_EQ(CodesOf(de), std::vector<std::string>{"RUN001"});
}

TEST(RunConfig, ImplausibleCooldownIsRun002) {
  analysis::RunConfigView rc;
  rc.cooldown_s = 900.0;
  DiagnosticEngine de;
  analysis::CheckRunConfig(rc, de);
  EXPECT_EQ(CodesOf(de), std::vector<std::string>{"RUN002"});
  EXPECT_FALSE(de.HasErrors());
}

TEST(RunConfig, FaultProbabilityOutsideUnitIntervalIsRun003) {
  analysis::RunConfigView rc;
  rc.fault_probabilities = {{"driver_crash", 1.5}, {"sample_drop", -0.1}};
  DiagnosticEngine de;
  analysis::CheckRunConfig(rc, de);
  const auto codes = CodesOf(de);
  EXPECT_EQ(std::count(codes.begin(), codes.end(), "RUN003"), 2);
}

TEST(RunConfig, NegativeRetryBudgetIsRun004) {
  analysis::RunConfigView rc;
  rc.max_test_retries = -1;
  DiagnosticEngine de;
  analysis::CheckRunConfig(rc, de);
  EXPECT_TRUE(Has(de, "RUN004"));
}

TEST(RunConfig, SharedScratchAcrossThreadsIsRun005) {
  analysis::RunConfigView rc;
  rc.threads = 4;
  rc.shared_scratch_across_threads = true;
  DiagnosticEngine de;
  analysis::CheckRunConfig(rc, de);
  EXPECT_TRUE(Has(de, "RUN005"));
  EXPECT_TRUE(de.HasErrors());
}

TEST(RunConfig, NonPoolThreadingIsRun006) {
  analysis::RunConfigView rc;
  rc.threads = 4;
  rc.uses_thread_pool = false;
  DiagnosticEngine de;
  analysis::CheckRunConfig(rc, de);
  EXPECT_EQ(CodesOf(de), std::vector<std::string>{"RUN006"});
  EXPECT_FALSE(de.HasErrors());
}

TEST(RunConfig, UnknownKernelIsaIsRun007) {
  analysis::RunConfigView rc;
  rc.kernel_isa = "sse9";
  DiagnosticEngine de;
  analysis::CheckRunConfig(rc, de);
  EXPECT_EQ(CodesOf(de), std::vector<std::string>{"RUN007"});
  EXPECT_TRUE(de.HasErrors());
}

TEST(RunConfig, UnavailableKernelIsaIsRun007) {
  analysis::RunConfigView rc;
  rc.kernel_isa = "neon";
  rc.kernel_isa_available = false;
  DiagnosticEngine de;
  analysis::CheckRunConfig(rc, de);
  EXPECT_EQ(CodesOf(de), std::vector<std::string>{"RUN007"});
  EXPECT_TRUE(de.HasErrors());
  // The message must spell out the silent consequence (scalar fallback).
  EXPECT_NE(de.ToText().find("falls back"), std::string::npos)
      << de.ToText();
}

TEST(RunConfig, AvailableKernelIsaIsClean) {
  analysis::RunConfigView rc;
  rc.kernel_isa = "avx2";
  rc.kernel_isa_available = true;
  DiagnosticEngine de;
  analysis::CheckRunConfig(rc, de);
  EXPECT_TRUE(de.empty()) << de.ToText();
}

TEST(RunConfig, InvalidTileRowsIsRun008Error) {
  analysis::RunConfigView rc;
  rc.tiling_requested = true;
  rc.tile_rows = 0;  // 0 and every negative except -1 are invalid
  rc.graph_has_fusable_segment = true;
  DiagnosticEngine de;
  analysis::CheckRunConfig(rc, de);
  EXPECT_EQ(CodesOf(de), std::vector<std::string>{"RUN008"});
  EXPECT_TRUE(de.HasErrors());

  rc.tile_rows = -7;
  DiagnosticEngine de2;
  analysis::CheckRunConfig(rc, de2);
  EXPECT_TRUE(Has(de2, "RUN008"));
  EXPECT_TRUE(de2.HasErrors());
}

TEST(RunConfig, TilingWithoutFusableSegmentIsRun008Warning) {
  analysis::RunConfigView rc;
  rc.tiling_requested = true;
  rc.tile_rows = -1;  // valid: auto
  rc.graph_has_fusable_segment = false;
  DiagnosticEngine de;
  analysis::CheckRunConfig(rc, de);
  EXPECT_EQ(CodesOf(de), std::vector<std::string>{"RUN008"});
  EXPECT_FALSE(de.HasErrors());  // no effect, but the run is still legal
}

TEST(RunConfig, ValidTilingIsClean) {
  analysis::RunConfigView rc;
  rc.tiling_requested = true;
  rc.tile_rows = 8;
  rc.graph_has_fusable_segment = true;
  DiagnosticEngine de;
  analysis::CheckRunConfig(rc, de);
  EXPECT_TRUE(de.empty()) << de.ToText();
}

TEST(RunConfig, TilingOffIgnoresTileFields) {
  analysis::RunConfigView rc;
  rc.tiling_requested = false;
  rc.tile_rows = 0;  // would be RUN008 if tiling were requested
  DiagnosticEngine de;
  analysis::CheckRunConfig(rc, de);
  EXPECT_TRUE(de.empty()) << de.ToText();
}

TEST(RunConfig, DefaultHarnessConfigurationIsClean) {
  analysis::RunConfigView rc;
  DiagnosticEngine de;
  analysis::CheckRunConfig(rc, de);
  EXPECT_TRUE(de.empty()) << de.ToText();
}

// --- Harness gate ----------------------------------------------------------

// QAT weights on a float submission is a rules violation the executor used
// to silently ignore (it only applies QAT under INT8).  Strict mode turns
// it into a refusal-to-run; report mode records it but still runs.
TEST(HarnessGate, StrictModeRefusesIllegalQuantConfig) {
  const soc::ChipsetDesc chipset = soc::Snapdragon888();
  harness::SuiteBundles bundles;
  harness::RunOptions options;
  options.run_accuracy = false;
  options.run_performance = false;  // lint gate only: keep the test fast
  options.use_qat_weights = true;
  options.lint = harness::LintMode::kStrict;
  const harness::SubmissionResult result = harness::RunSubmission(
      chipset, models::SuiteVersion::kV1_0, bundles, options);

  bool saw_float_task = false;
  for (const harness::TaskRunResult& t : result.tasks) {
    if (IsQuantized(t.numerics)) {
      EXPECT_EQ(t.status, harness::TaskStatus::kValid) << t.entry.id;
      EXPECT_EQ(t.lint_error_count, 0u) << t.entry.id << "\n" << t.lint_log;
    } else {
      saw_float_task = true;
      EXPECT_EQ(t.status, harness::TaskStatus::kInvalid) << t.entry.id;
      EXPECT_GT(t.lint_error_count, 0u);
      EXPECT_NE(t.lint_log.find("QUANT005"), std::string::npos) << t.lint_log;
      EXPECT_NE(t.status_detail.find("static verification"),
                std::string::npos);
    }
  }
  EXPECT_TRUE(saw_float_task);  // v1.0 NLP submissions run FP16
}

TEST(HarnessGate, ReportModeRecordsButRuns) {
  const soc::ChipsetDesc chipset = soc::Snapdragon888();
  harness::SuiteBundles bundles;
  harness::RunOptions options;
  options.run_accuracy = false;
  options.run_performance = false;
  options.use_qat_weights = true;
  options.lint = harness::LintMode::kReport;  // default
  const harness::SubmissionResult result = harness::RunSubmission(
      chipset, models::SuiteVersion::kV1_0, bundles, options);
  for (const harness::TaskRunResult& t : result.tasks) {
    EXPECT_NE(t.status, harness::TaskStatus::kInvalid) << t.entry.id;
    if (!IsQuantized(t.numerics)) EXPECT_GT(t.lint_error_count, 0u);
  }
}

TEST(HarnessGate, LintOffRecordsNothing) {
  const soc::ChipsetDesc chipset = soc::Snapdragon888();
  harness::SuiteBundles bundles;
  harness::RunOptions options;
  options.run_accuracy = false;
  options.run_performance = false;
  options.use_qat_weights = true;
  options.lint = harness::LintMode::kOff;
  const harness::SubmissionResult result = harness::RunSubmission(
      chipset, models::SuiteVersion::kV1_0, bundles, options);
  for (const harness::TaskRunResult& t : result.tasks) {
    EXPECT_EQ(t.lint_error_count, 0u);
    EXPECT_TRUE(t.lint_log.empty());
  }
}

// Full-pipeline golden snapshot: a defective model through RunModelPasses
// must yield byte-identical JSON across runs and platforms.
TEST(HarnessGate, ModelPassGoldenJson) {
  const graph::Graph g = G(
      "tensor 0 a 4 1 8 8 3 in\n"
      "tensor 1 a 4 1 8 8 5 out\n"
      "node sum add [] in 2 0 0 w 0 out 1\n"
      "graph_input 0\ngraph_output 1\n");
  DiagnosticEngine de;
  analysis::RunModelPasses(g, de);
  const std::string expected =
      R"({"diagnostics":[)"
      R"({"code":"SHAPE001","severity":"error",)"
      R"("source":{"kind":"node","name":"sum","id":0},)"
      R"("message":"recorded output shape [1x8x8x5] disagrees with )"
      R"(inferred [1x8x8x3]"}],)"
      R"("counts":{"error":1,"warning":0,"note":0}})";
  EXPECT_EQ(de.ToJson(), expected);
}

}  // namespace
}  // namespace mlpm
