#include "common/thread_pool.h"

#include <algorithm>
#include <memory>

namespace mlpm {
namespace {

thread_local bool t_in_parallel_region = false;

std::mutex& GlobalMutex() {
  static std::mutex mu;
  return mu;
}
std::unique_ptr<ThreadPool>& GlobalSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}
std::size_t& GlobalThreadCount() {
  static std::size_t count = 0;  // 0 = hardware concurrency
  return count;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t thread_count) {
  if (thread_count == 0)
    thread_count = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  lanes_ = thread_count;
  workers_.reserve(lanes_ - 1);
  for (std::size_t i = 0; i + 1 < lanes_; ++i)
    workers_.emplace_back([this] { WorkerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::InParallelRegion() { return t_in_parallel_region; }

void ThreadPool::WorkerLoop() {
  std::uint64_t seen = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || (job_ != nullptr && generation_ != seen);
      });
      if (stop_) return;
      seen = generation_;
      job = job_;
      ++job->entered;
    }
    RunChunks(*job);
    {
      std::scoped_lock lock(mu_);
      ++job->exited;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::RunChunks(Job& job) const {
  const std::int64_t len = job.end - job.begin;
  const auto total = static_cast<std::int64_t>(job.chunk_count);
  for (;;) {
    const std::size_t c = job.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.chunk_count) return;
    const std::int64_t lo =
        job.begin + len * static_cast<std::int64_t>(c) / total;
    const std::int64_t hi =
        job.begin + len * (static_cast<std::int64_t>(c) + 1) / total;
    t_in_parallel_region = true;
    try {
      if (lo < hi) (*job.body)(lo, hi);
    } catch (...) {
      std::scoped_lock lock(mu_);
      if (!job.first_error) job.first_error = std::current_exception();
    }
    t_in_parallel_region = false;
    {
      std::scoped_lock lock(mu_);
      ++job.chunks_done;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::ParallelFor(std::int64_t begin, std::int64_t end,
                             const RangeBody& body) const {
  if (begin >= end) return;
  // Inline fast paths: no workers, trivial range, or already inside a
  // parallel region (nested submit would deadlock on the worker set).
  if (lanes_ <= 1 || end - begin <= 1 || t_in_parallel_region) {
    body(begin, end);
    return;
  }

  std::scoped_lock submit(submit_mu_);
  Job job;
  job.body = &body;
  job.begin = begin;
  job.end = end;
  job.chunk_count =
      std::min<std::size_t>(lanes_, static_cast<std::size_t>(end - begin));
  jobs_dispatched_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t peak = peak_chunks_.load(std::memory_order_relaxed);
  while (peak < job.chunk_count &&
         !peak_chunks_.compare_exchange_weak(peak, job.chunk_count,
                                             std::memory_order_relaxed)) {
  }
  {
    std::scoped_lock lock(mu_);
    job_ = &job;
    ++generation_;
    ++job.entered;  // the caller participates
  }
  work_cv_.notify_all();
  RunChunks(job);
  {
    std::unique_lock lock(mu_);
    ++job.exited;
    // Wait until all chunks ran AND every participant left the job, so no
    // worker can touch the stack-allocated Job after we return.
    done_cv_.wait(lock, [&] {
      return job.chunks_done == job.chunk_count && job.entered == job.exited;
    });
    job_ = nullptr;
  }
  if (job.first_error) std::rethrow_exception(job.first_error);
}

ThreadPool& ThreadPool::Global() {
  std::scoped_lock lock(GlobalMutex());
  auto& slot = GlobalSlot();
  if (!slot) slot = std::make_unique<ThreadPool>(GlobalThreadCount());
  return *slot;
}

void ThreadPool::SetGlobalThreadCount(std::size_t thread_count) {
  std::scoped_lock lock(GlobalMutex());
  GlobalThreadCount() = thread_count;
  GlobalSlot().reset();
}

}  // namespace mlpm
