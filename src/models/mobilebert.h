// MobileBERT — the question-answering reference model (paper §3.2).
//
// A compact, task-agnostic BERT for resource-limited devices: 24 thin
// transformer blocks with bottleneck projections (512-wide body, 128-wide
// bottleneck, 4 heads, 4 stacked FFNs per block), ~25M parameters, sequence
// length 384, SQuAD v1.1 span extraction (start/end logits per position).
#pragma once

#include "graph/graph.h"
#include "models/common.h"

namespace mlpm::models {

struct MobileBertConfig {
  std::int64_t vocab_size = 30522;
  std::int64_t seq_len = 384;
  std::int64_t embed_dim = 128;
  std::int64_t hidden_dim = 512;      // inter-block width
  std::int64_t bottleneck_dim = 128;  // intra-block width
  int num_heads = 4;                  // on the bottleneck width
  std::int64_t ffn_intermediate = 640;
  int num_blocks = 24;
  int ffn_per_block = 4;  // MobileBERT's stacked feed-forward networks
};

[[nodiscard]] MobileBertConfig MiniMobileBertConfig();

// Graph input: [seq_len] token ids (as floats).  Output: [seq_len, 2]
// start/end span logits.
[[nodiscard]] graph::Graph BuildMobileBert(ModelScale scale);
[[nodiscard]] graph::Graph BuildMobileBert(const MobileBertConfig& cfg);

}  // namespace mlpm::models
