// Static activation memory planner.
//
// Vendor runtimes win on-device largely by planning buffers ahead of time
// instead of heap-allocating per op; this module gives the functional plane
// the same property.  From the graph's topological node order it derives
// first-def / last-use intervals (graph::ComputeLiveness), aliases
// zero-cost ops onto their input's buffer (Reshape becomes a view; unary /
// binary elementwise ops write in place when the producer's buffer dies at
// that node), and packs every remaining buffer into one contiguous arena
// with a greedy best-fit offset assigner (smallest feasible gap wins, ties
// to the lowest offset; buffers are visited largest-first).
//
// The plan is a pure function of the graph — no execution, no weights —
// so the linter and the harness can report planned peak activation memory
// for the full-scale models without running them.  Execution against a
// plan (infer::ExecutionContext) is bit-identical to the legacy
// allocate-per-node path, which stays available as the oracle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/liveness.h"

namespace mlpm::infer {

struct TilePlan;

// Arena offsets are aligned to 64 bytes (16 floats) so vectorized kernel
// loops see cacheline-aligned buffers.
inline constexpr std::size_t kArenaAlignElements = 16;

// How one tensor is backed during arena execution.
enum class PlacementKind : std::uint8_t {
  kUnplanned,  // weights and graph inputs: bound externally, never in arena
  kArena,      // root of an arena buffer at [offset, offset + elements)
  kAlias,      // shares its (transitive) producer-input's arena buffer
  kTileSlab,   // segment-interior: lives in per-tile slabs, never the arena
};

struct TensorPlacement {
  PlacementKind kind = PlacementKind::kUnplanned;
  // Element offset into the arena; for kAlias this is the root's offset,
  // already resolved at plan time.
  std::size_t offset = 0;
  // Root tensor id of the shared buffer (== the tensor itself for kArena).
  graph::TensorId buffer = graph::kInvalidTensor;
};

// One packed arena buffer with its merged live interval (the union of the
// intervals of every tensor aliased onto it).  Exposed for tests and
// tooling; execution only needs TensorPlacement.
struct ArenaBuffer {
  graph::TensorId root = graph::kInvalidTensor;
  std::size_t offset = 0;    // elements
  std::size_t elements = 0;  // unaligned payload size
  std::int32_t def = 0;      // first node index writing the buffer
  std::int32_t last_use = 0; // last node index reading it (or nodes() size)
};

// Byte accounting for one planned live interval — an arena buffer (full
// tensor bytes) or a tile-slab tensor (one tile's slab bytes).  Exposed so
// reports can attribute the planned footprint interval-by-interval instead
// of quoting only the packed arena total (which under-describes tiled runs,
// where segment interiors never enter the arena at all).
struct IntervalBytes {
  graph::TensorId root = graph::kInvalidTensor;
  std::int32_t def = 0;
  std::int32_t last_use = 0;
  std::size_t bytes = 0;
  PlacementKind kind = PlacementKind::kArena;
};

class MemoryPlan {
 public:
  // Plans activation memory for `g`.  Deterministic: the same graph always
  // produces the same plan.
  [[nodiscard]] static MemoryPlan Build(const graph::Graph& g);

  // As above, but with segment-interior tensors of `tiling` (may be null)
  // placed in per-tile slabs instead of the arena: they are excluded from
  // packing, shrinking the arena, and accounted under tile_slab_bytes().
  [[nodiscard]] static MemoryPlan Build(const graph::Graph& g,
                                        const TilePlan* tiling);

  [[nodiscard]] const std::vector<TensorPlacement>& placements() const {
    return placements_;
  }
  [[nodiscard]] const std::vector<ArenaBuffer>& buffers() const {
    return buffers_;
  }

  // Arena size, elements / bytes (the plan's peak activation memory).
  [[nodiscard]] std::size_t arena_elements() const { return arena_elements_; }
  [[nodiscard]] std::size_t peak_arena_bytes() const {
    return arena_elements_ * sizeof(float);
  }
  // One worker's peak tile-slab footprint (0 for untiled plans).  Each
  // concurrent worker holds one slab block while executing a tile.
  [[nodiscard]] std::size_t tile_slab_bytes() const {
    return tile_slab_bytes_;
  }
  // The plan's total planned activation footprint for one worker: the
  // packed arena plus one tile-slab block.  This — not peak_arena_bytes()
  // alone — is what "Act. saved" compares against the naive footprint.
  [[nodiscard]] std::size_t planned_activation_bytes() const {
    return peak_arena_bytes() + tile_slab_bytes_;
  }
  // What the legacy allocate-per-node path provisions over a run: one
  // buffer per produced activation tensor, no reuse.
  [[nodiscard]] std::size_t naive_bytes() const { return naive_bytes_; }
  // Tensors that reuse their input's buffer (views + in-place writes).
  [[nodiscard]] std::size_t alias_count() const { return alias_count_; }
  // Per-interval byte accounting: one entry per arena buffer and per
  // tile-slab tensor, in deterministic (def, root) order.
  [[nodiscard]] const std::vector<IntervalBytes>& interval_bytes() const {
    return intervals_;
  }
  // Fraction of the naive footprint saved by planning, in [0, 1).
  [[nodiscard]] double savings_ratio() const {
    return naive_bytes_ == 0
               ? 0.0
               : 1.0 - static_cast<double>(planned_activation_bytes()) /
                           static_cast<double>(naive_bytes_);
  }

 private:
  std::vector<TensorPlacement> placements_;
  std::vector<ArenaBuffer> buffers_;
  std::vector<IntervalBytes> intervals_;
  std::size_t arena_elements_ = 0;
  std::size_t naive_bytes_ = 0;
  std::size_t alias_count_ = 0;
  std::size_t tile_slab_bytes_ = 0;
};

// True if `op` may write its output in place over its first input (all
// reads of element i happen before the write of element i, in every kernel
// and for every thread partition).  Reshape additionally degenerates to a
// no-op view when aliased.
[[nodiscard]] bool SupportsInPlace(graph::OpType op);

}  // namespace mlpm::infer
