// Runtime tensor: a shape plus an owning float buffer.
//
// All functional execution keeps storage in float regardless of the model's
// declared numerics; FP16 and INT8 behaviour is *simulated* by rounding
// values through the target format (fake quantization).  This matches how
// accuracy is affected on real hardware while keeping one set of kernels.
#pragma once

#include <span>
#include <vector>

#include "common/check.h"
#include "graph/shape.h"

namespace mlpm::infer {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(graph::TensorShape shape)
      : shape_(std::move(shape)),
        data_(static_cast<std::size_t>(shape_.elements()), 0.0f) {}
  Tensor(graph::TensorShape shape, std::vector<float> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    Expects(static_cast<std::int64_t>(data_.size()) == shape_.elements(),
            "tensor data size does not match shape");
  }

  // Non-owning view over external storage (an arena slice).  `data` must
  // point at shape.elements() floats and outlive the view; copying a view
  // copies the pointer, not the payload.  Used by the arena execution
  // path (ExecutionContext); call Clone() to detach a result.
  [[nodiscard]] static Tensor View(graph::TensorShape shape, float* data) {
    Tensor t;
    t.shape_ = std::move(shape);
    t.view_ = data;
    return t;
  }

  [[nodiscard]] bool is_view() const { return view_ != nullptr; }

  // Deep copy into owning storage (identical for views and owners).
  [[nodiscard]] Tensor Clone() const {
    return Tensor(shape_, std::vector<float>(data(), data() + size()));
  }

  [[nodiscard]] const graph::TensorShape& shape() const { return shape_; }
  [[nodiscard]] std::span<float> values() { return {data(), size()}; }
  [[nodiscard]] std::span<const float> values() const {
    return {data(), size()};
  }
  [[nodiscard]] std::size_t size() const {
    return view_ != nullptr ? static_cast<std::size_t>(shape_.elements())
                            : data_.size();
  }

  [[nodiscard]] float& at(std::size_t i) {
    Expects(i < size(), "tensor index out of range");
    return data()[i];
  }
  [[nodiscard]] float at(std::size_t i) const {
    Expects(i < size(), "tensor index out of range");
    return data()[i];
  }

  // Unchecked linear access for kernel inner loops.
  [[nodiscard]] float* data() { return view_ != nullptr ? view_ : data_.data(); }
  [[nodiscard]] const float* data() const {
    return view_ != nullptr ? view_ : data_.data();
  }

 private:
  graph::TensorShape shape_;
  std::vector<float> data_;
  float* view_ = nullptr;  // non-null => borrowed storage
};

}  // namespace mlpm::infer
