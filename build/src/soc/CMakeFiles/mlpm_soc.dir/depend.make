# Empty dependencies file for mlpm_soc.
# This may be replaced when dependencies are built.
