// Peak signal-to-noise ratio — the standard quality metric for the
// super-resolution extension (paper App. E: "super-resolution and
// high-resolution models are important use cases, but... the metrics for
// evaluating these tasks are not clearly defined" — PSNR is the baseline
// everyone starts from).
#pragma once

#include "infer/tensor.h"

namespace mlpm::metrics {

// PSNR in dB between two same-shaped images with values in [0, peak].
// Identical images return +infinity.
[[nodiscard]] double Psnr(const infer::Tensor& image,
                          const infer::Tensor& reference, double peak = 1.0);

// Mean squared error between two same-shaped tensors.
[[nodiscard]] double MeanSquaredError(const infer::Tensor& a,
                                      const infer::Tensor& b);

}  // namespace mlpm::metrics
