
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/soc/battery.cpp" "src/soc/CMakeFiles/mlpm_soc.dir/battery.cpp.o" "gcc" "src/soc/CMakeFiles/mlpm_soc.dir/battery.cpp.o.d"
  "/root/repo/src/soc/catalog.cpp" "src/soc/CMakeFiles/mlpm_soc.dir/catalog.cpp.o" "gcc" "src/soc/CMakeFiles/mlpm_soc.dir/catalog.cpp.o.d"
  "/root/repo/src/soc/compile.cpp" "src/soc/CMakeFiles/mlpm_soc.dir/compile.cpp.o" "gcc" "src/soc/CMakeFiles/mlpm_soc.dir/compile.cpp.o.d"
  "/root/repo/src/soc/simulator.cpp" "src/soc/CMakeFiles/mlpm_soc.dir/simulator.cpp.o" "gcc" "src/soc/CMakeFiles/mlpm_soc.dir/simulator.cpp.o.d"
  "/root/repo/src/soc/thermal.cpp" "src/soc/CMakeFiles/mlpm_soc.dir/thermal.cpp.o" "gcc" "src/soc/CMakeFiles/mlpm_soc.dir/thermal.cpp.o.d"
  "/root/repo/src/soc/trace.cpp" "src/soc/CMakeFiles/mlpm_soc.dir/trace.cpp.o" "gcc" "src/soc/CMakeFiles/mlpm_soc.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/mlpm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mlpm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
