file(REMOVE_RECURSE
  "CMakeFiles/rolling_submissions.dir/rolling_submissions.cpp.o"
  "CMakeFiles/rolling_submissions.dir/rolling_submissions.cpp.o.d"
  "rolling_submissions"
  "rolling_submissions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rolling_submissions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
