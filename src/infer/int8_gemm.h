// True integer INT8 GEMM with INT32 accumulation, plus the float GEMM.
//
// The accuracy plane simulates INT8 with fake quantization (one float kernel
// set), but a credible mobile-inference library also needs a real integer
// path: this is it, used by the prepacked conv kernel and the kernel
// microbenchmarks (bench_kernels) to demonstrate the INT8-vs-FP32
// arithmetic-throughput gap that motivates the paper's numerics discussion
// (§7.5).
//
// Two kernel tiers:
//   - GemmF32 / GemmU8U8I32: cache-blocked, register-tiled (4x4 output
//     tiles, independent accumulators), optionally parallelized over row
//     blocks via a ThreadPool.  Per-element accumulation order over k is
//     identical to the naive triple loop, so results are bit-identical to
//     the reference kernels and independent of thread count.
//   - GemmF32Ref / GemmU8U8I32Ref: the original scalar triple loops, kept
//     as the correctness baseline for tests and the speedup baseline for
//     bench_kernels.
//
// Both tiered kernels also take an optional kernels::KernelTable to run the
// row workers through a runtime-selected SIMD implementation (see
// kernels/registry.h).  Without a table they use the scalar table, which is
// bit-identical to the pre-registry kernels.  The u8 kernel is bit-exact for
// EVERY table; the f32 kernel is bit-exact only for the scalar table and
// within a small relative tolerance for vectorized ones.
#pragma once

#include <cstdint>
#include <span>

#include "infer/kernels/registry.h"

namespace mlpm {
class ThreadPool;
}

namespace mlpm::infer {

// Quantizes `src` to uint8 with the given scale/zero-point.
void QuantizeU8(std::span<const float> src, float scale,
                std::int32_t zero_point, std::span<std::uint8_t> dst);

// Dequantizes an INT32 accumulator given input scales.
[[nodiscard]] float DequantizeAcc(std::int32_t acc, float lhs_scale,
                                  float rhs_scale);

// C[m,n] = sum_k (A[m,k]-a_zp) * (B[n,k]-b_zp), INT32 accumulators.
// B is stored row-major transposed ([n, k]) to keep inner loops contiguous.
void GemmU8U8I32(std::span<const std::uint8_t> a, std::int32_t a_zp,
                 std::span<const std::uint8_t> b_t, std::int32_t b_zp,
                 std::size_t m, std::size_t n, std::size_t k,
                 std::span<std::int32_t> c,
                 const ThreadPool* pool = nullptr);

// Float GEMM (same B-transposed layout).
void GemmF32(std::span<const float> a, std::span<const float> b_t,
             std::size_t m, std::size_t n, std::size_t k, std::span<float> c,
             const ThreadPool* pool = nullptr);

// Dispatched overloads: run the row workers from `table` (scalar, AVX2, or
// NEON).  `GemmU8U8I32` results are bit-identical across tables.
void GemmU8U8I32(std::span<const std::uint8_t> a, std::int32_t a_zp,
                 std::span<const std::uint8_t> b_t, std::int32_t b_zp,
                 std::size_t m, std::size_t n, std::size_t k,
                 std::span<std::int32_t> c, const kernels::KernelTable& table,
                 const ThreadPool* pool = nullptr);
void GemmF32(std::span<const float> a, std::span<const float> b_t,
             std::size_t m, std::size_t n, std::size_t k, std::span<float> c,
             const kernels::KernelTable& table,
             const ThreadPool* pool = nullptr);

// Unoptimized scalar reference kernels (identical results).
void GemmU8U8I32Ref(std::span<const std::uint8_t> a, std::int32_t a_zp,
                    std::span<const std::uint8_t> b_t, std::int32_t b_zp,
                    std::size_t m, std::size_t n, std::size_t k,
                    std::span<std::int32_t> c);
void GemmF32Ref(std::span<const float> a, std::span<const float> b_t,
                std::size_t m, std::size_t n, std::size_t k,
                std::span<float> c);

}  // namespace mlpm::infer
