// §7.2 offline results — image-classification offline throughput.
//
// Paper anchors (v0.7): Exynos 990 delivered 674.4 FPS and Snapdragon 865+
// delivered 605.37 FPS; not all submitters entered the offline scenario.
#include <cstdio>
#include <optional>

#include "bench_util.h"
#include "common/table.h"

int main() {
  using namespace mlpm;

  struct Anchor {
    const char* chipset;
    double paper_fps;
  };
  const Anchor anchors[] = {{"Exynos 990", 674.4},
                            {"Snapdragon 865+", 605.37}};

  for (const models::SuiteVersion version :
       {models::SuiteVersion::kV0_7, models::SuiteVersion::kV1_0}) {
    TextTable t("offline image classification, 24,576-sample burst — " +
                std::string(ToString(version)));
    t.SetHeader({"Chipset", "Offline engines", "Simulated FPS", "Paper FPS",
                 "error"});
    const auto catalog = version == models::SuiteVersion::kV0_7
                             ? soc::CatalogV07()
                             : soc::CatalogV10();
    for (const soc::ChipsetDesc& chipset : catalog) {
      const backends::SubmissionConfig sub = backends::GetSubmission(
          chipset, models::TaskType::kImageClassification, version);
      if (sub.offline_replicas.empty()) {
        t.AddRow({chipset.name, "not submitted", "-", "-", "-"});
        continue;
      }
      std::string engines;
      for (const auto& r : sub.offline_replicas) {
        if (!engines.empty()) engines += "+";
        engines += r.engines.front();
      }
      const benchutil::PerfOutcome p = benchutil::RunOffline(
          chipset, version, models::TaskType::kImageClassification);

      std::optional<double> paper;
      if (version == models::SuiteVersion::kV0_7)
        for (const Anchor& a : anchors)
          if (chipset.name == a.chipset) paper = a.paper_fps;

      t.AddRow({chipset.name, engines, FormatDouble(p.throughput_sps, 1),
                paper ? FormatDouble(*paper, 2) : "-",
                paper ? FormatPercent(p.throughput_sps / *paper - 1.0, 1)
                      : "-"});
    }
    std::printf("%s\n", t.Render().c_str());
  }
  std::printf(
      "offline mode exercises accelerator-level parallelism (insight 3): "
      "every\nofflinesubmission drives multiple engines concurrently.\n");
  return 0;
}
