#include "backends/circuit_breaker.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mlpm::backends {
namespace {

// Observes whether the inner SUT resolved the sample.  Completions are
// forwarded to the real sink; a query the inner SUT returns from without
// completing (gave up, lost completion) counts as a breaker failure.
class ObservingSink final : public loadgen::ResponseSink {
 public:
  explicit ObservingSink(loadgen::ResponseSink& inner) : inner_(inner) {}

  void Complete(loadgen::QuerySampleResponse response) override {
    completed_ = true;
    inner_.Complete(std::move(response));
  }
  void Reject(std::uint64_t id, std::string_view reason) override {
    completed_ = true;  // resolved, just not successfully run
    inner_.Reject(id, reason);
  }

  [[nodiscard]] bool completed() const { return completed_; }

 private:
  loadgen::ResponseSink& inner_;
  bool completed_ = false;
};

}  // namespace

CircuitBreakerBackend::CircuitBreakerBackend(loadgen::SystemUnderTest& inner,
                                             loadgen::VirtualClock& clock,
                                             CircuitBreakerOptions options)
    : name_(std::string(inner.name()) + "+breaker"),
      inner_(inner),
      clock_(clock),
      options_(options),
      rng_(options.seed) {
  Expects(options_.trip_threshold >= 1, "trip threshold must be positive");
  Expects(options_.open_duration_s > 0.0, "open window must be positive");
  Expects(options_.backoff_factor >= 1.0,
          "open-window backoff must not shrink the window");
  Expects(options_.max_open_duration_s >= options_.open_duration_s,
          "open-window cap below the first window");
  Expects(options_.probe_jitter_frac >= 0.0 &&
              options_.probe_jitter_frac < 2.0,
          "probe jitter fraction must be in [0, 2)");
  Expects(options_.rejection_latency_s > 0.0,
          "rejection must cost clock time (the issue loop needs progress)");
}

void CircuitBreakerBackend::Transition(BreakerState to,
                                       std::uint64_t query_id) {
  const double now_s = clock_.Now().count();
  transitions_.push_back(BreakerTransition{state_, to, now_s, query_id});
  obs::MetricsRegistry::Global().Increment("backend.breaker_transitions");
  if (obs::TraceRecorder& rec = obs::TraceRecorder::Global(); rec.enabled())
    rec.AddInstant(obs::Domain::kLoadGen, "breaker",
                   "breaker:" + std::string(ToString(state_)) + "->" +
                       std::string(ToString(to)),
                   now_s * 1e6, {obs::Arg("query", query_id)}, "breaker");
  state_ = to;
}

void CircuitBreakerBackend::TripOpen(std::uint64_t query_id) {
  ++stats_.trips;
  ++open_streak_;
  const double window = std::min(
      options_.max_open_duration_s,
      options_.open_duration_s *
          std::pow(options_.backoff_factor,
                   static_cast<double>(open_streak_ - 1)));
  // Jitter the probe deadline so a fleet of breakers tripped by the same
  // incident doesn't retry in lockstep; the draw is seeded, so the
  // schedule is still deterministic per seed.
  const double jitter =
      1.0 + options_.probe_jitter_frac * (rng_.NextDouble() - 0.5);
  reopen_at_s_ = clock_.Now().count() + window * jitter;
  consecutive_failures_ = 0;
  Transition(BreakerState::kOpen, query_id);
}

void CircuitBreakerBackend::IssueQuery(
    std::span<const loadgen::QuerySample> samples,
    loadgen::ResponseSink& sink) {
  Expects(!samples.empty(), "empty query");
  if (samples.size() > 1) {
    // Offline burst: replica-level fault handling owns this path.
    inner_.IssueQuery(samples, sink);
    return;
  }
  const loadgen::QuerySample& sample = samples[0];

  if (state_ == BreakerState::kOpen) {
    if (clock_.Now().count() < reopen_at_s_) {
      ++stats_.rejected;
      // Fast-fail: charge the fixed rejection cost so the test clock (and
      // the single-stream issue loop) keeps moving, then tell the LoadGen
      // the query will never complete.
      clock_.Advance(loadgen::Seconds{options_.rejection_latency_s});
      sink.Reject(sample.id, "circuit breaker open");
      return;
    }
    Transition(BreakerState::kHalfOpen, sample.id);
  }

  const bool probing = state_ == BreakerState::kHalfOpen;
  if (probing) ++stats_.probes;
  ++stats_.passed;
  ObservingSink observer(sink);
  inner_.IssueQuery({&sample, 1}, observer);

  if (observer.completed()) {
    ++stats_.successes;
    consecutive_failures_ = 0;
    if (probing) {
      open_streak_ = 0;
      Transition(BreakerState::kClosed, sample.id);
    }
    return;
  }
  ++stats_.failures;
  if (probing) {
    // The probe failed: reopen with a longer window.
    TripOpen(sample.id);
  } else if (++consecutive_failures_ >= options_.trip_threshold) {
    TripOpen(sample.id);
  }
}

std::string CircuitBreakerBackend::EventLogText() const {
  std::string out;
  char line[128];
  for (const BreakerTransition& t : transitions_) {
    std::snprintf(line, sizeof line, "breaker %s->%s query=%llu t=%.9f\n",
                  std::string(ToString(t.from)).c_str(),
                  std::string(ToString(t.to)).c_str(),
                  static_cast<unsigned long long>(t.query_id), t.time_s);
    out += line;
  }
  return out;
}

}  // namespace mlpm::backends
