// Crash-safe fleet journal: the submission journal's WAL format
// (harness/frame_log.h — same header line, framing and checksums) carrying
// fleet frames instead of task frames:
//
//   mlpm_journal v1\n
//   meta <len> <fnv64-hex>\n   — fleet identity (no `chipset` key, so a
//   <payload>\n                  fleet meta never decodes as a submission
//   shard <len> <fnv64-hex>\n    meta and vice versa)
//   <payload>\n                — one frame per finished shard
//
// Shards finish in worker-scheduling order, so the shard frames of two
// identical runs may be permuted; replay keys records by shard id and the
// aggregated report is built from the sorted shard vector, which keeps the
// determinism contract byte-exact even though the journal file itself is
// not canonical.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fleet/fleet.h"
#include "harness/frame_log.h"

namespace mlpm::fleet {

// Identity of the fleet configuration a journal belongs to; resume replays
// only from a journal whose meta matches on every field.
struct FleetJournalMeta {
  std::string version;  // ToString(models::SuiteVersion)
  std::uint64_t seed = 0;
  std::uint64_t shard_count = 0;
  std::uint64_t config_hash = 0;

  [[nodiscard]] bool Matches(const FleetJournalMeta& other) const {
    return version == other.version && seed == other.seed &&
           shard_count == other.shard_count &&
           config_hash == other.config_hash;
  }
};

// Deterministic digest of everything that shapes fleet results: suite
// version, mix, LoadGen settings, seed policy, fault plan, breaker options
// and the accuracy-plane flags.  Worker count and observability knobs are
// excluded — they never change results.
[[nodiscard]] std::uint64_t HashFleetConfig(const FleetOptions& options,
                                            const std::vector<FleetMixEntry>&
                                                mix);

[[nodiscard]] std::string EncodeFleetMeta(const FleetJournalMeta& meta);
// Throws CheckError on malformed payloads (including a submission-journal
// meta, which lacks the shard_count key).
[[nodiscard]] FleetJournalMeta DecodeFleetMeta(const std::string& payload);

[[nodiscard]] std::string EncodeShardResult(const ShardResult& shard);
[[nodiscard]] ShardResult DecodeShardResult(const std::string& payload);

struct FleetJournalLoad {
  bool meta_valid = false;
  FleetJournalMeta meta;
  // Intact shard records keyed by shard id (later frames win, matching the
  // append-only overwrite semantics of a re-run shard).
  std::map<std::size_t, ShardResult> shards;
  std::size_t valid_prefix_bytes = 0;
  bool torn_tail = false;
  std::vector<std::string> notes;
};

// Never throws: recovers the longest interpretable prefix of the file and
// reports what it cut.  A missing file yields an empty load.
[[nodiscard]] FleetJournalLoad LoadFleetJournal(const std::string& path);

// Thread-safe appender: shards finish on worker threads, and the underlying
// FrameLogWriter requires external serialization, so every append takes the
// writer mutex.  Frames are fsync'd before Append returns (the FrameLog
// durability contract).
class FleetJournalWriter {
 public:
  // Truncates (or creates) `path` and writes the meta frame.
  [[nodiscard]] static std::unique_ptr<FleetJournalWriter> Create(
      const std::string& path, const FleetJournalMeta& meta);
  // Opens for append after a valid prefix of `valid_prefix_bytes` (from
  // LoadFleetJournal), truncating any torn tail.
  [[nodiscard]] static std::unique_ptr<FleetJournalWriter> Resume(
      const std::string& path, std::size_t valid_prefix_bytes);

  void Append(const ShardResult& shard);

 private:
  explicit FleetJournalWriter(harness::FrameLogWriter log)
      : log_(std::move(log)) {}

  std::mutex mu_;
  harness::FrameLogWriter log_;
};

}  // namespace mlpm::fleet
