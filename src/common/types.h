// Core scalar-type vocabulary shared by the graph IR, executors, quantizer
// and the SoC performance model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/check.h"

namespace mlpm {

// Numeric formats that appear in MLPerf Mobile submissions (paper Table 2).
// kUInt8 and kInt8 are distinguished because vendors report both (Qualcomm /
// MediaTek submit UINT8, Samsung / Intel submit INT8); they are identical for
// cost purposes but tracked for report fidelity.
enum class DataType : std::uint8_t {
  kFloat32,
  kFloat16,
  kInt8,
  kUInt8,
  kInt32,
};

[[nodiscard]] constexpr std::size_t ByteSize(DataType t) {
  switch (t) {
    case DataType::kFloat32:
    case DataType::kInt32:
      return 4;
    case DataType::kFloat16:
      return 2;
    case DataType::kInt8:
    case DataType::kUInt8:
      return 1;
  }
  return 4;  // unreachable; keeps -Wreturn-type quiet
}

[[nodiscard]] constexpr std::string_view ToString(DataType t) {
  switch (t) {
    case DataType::kFloat32:
      return "FP32";
    case DataType::kFloat16:
      return "FP16";
    case DataType::kInt8:
      return "INT8";
    case DataType::kUInt8:
      return "UINT8";
    case DataType::kInt32:
      return "INT32";
  }
  return "?";
}

[[nodiscard]] constexpr bool IsQuantized(DataType t) {
  return t == DataType::kInt8 || t == DataType::kUInt8;
}

}  // namespace mlpm
