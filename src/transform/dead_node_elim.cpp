// Dead-node elimination: removes nodes with no dataflow path to any graph
// output.  Reverse reachability from the outputs, matching the liveness
// notion GRAPH002 uses, so the pass never deletes anything the analysis
// layer considers live.  Removing unreachable work is exact in every mode.

#include <vector>

#include "transform/pass_util.h"
#include "transform/passes.h"

namespace mlpm::transform {
namespace {

class DeadNodeElimPass final : public TransformPass {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "dead-node-elim";
  }
  [[nodiscard]] std::span<const Invariant> preserved() const override {
    return kAllInvariants;
  }

  void Run(MutableGraph& g, PassContext& ctx) const override {
    const std::vector<bool> reachable = detail::ReachableNodes(g);
    for (std::size_t i = 0; i < g.nodes().size(); ++i) {
      if (!g.alive(i) || reachable[i]) continue;
      ctx.Touch(g.nodes()[i].name);
      g.Kill(i);
      ++ctx.rewrites;
    }
  }
};

}  // namespace

std::unique_ptr<TransformPass> MakeDeadNodeElimPass() {
  return std::make_unique<DeadNodeElimPass>();
}

}  // namespace mlpm::transform
