
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/infer/executor.cpp" "src/infer/CMakeFiles/mlpm_infer.dir/executor.cpp.o" "gcc" "src/infer/CMakeFiles/mlpm_infer.dir/executor.cpp.o.d"
  "/root/repo/src/infer/int8_conv.cpp" "src/infer/CMakeFiles/mlpm_infer.dir/int8_conv.cpp.o" "gcc" "src/infer/CMakeFiles/mlpm_infer.dir/int8_conv.cpp.o.d"
  "/root/repo/src/infer/int8_gemm.cpp" "src/infer/CMakeFiles/mlpm_infer.dir/int8_gemm.cpp.o" "gcc" "src/infer/CMakeFiles/mlpm_infer.dir/int8_gemm.cpp.o.d"
  "/root/repo/src/infer/weights.cpp" "src/infer/CMakeFiles/mlpm_infer.dir/weights.cpp.o" "gcc" "src/infer/CMakeFiles/mlpm_infer.dir/weights.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/mlpm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mlpm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
