# Empty dependencies file for bench_table3_delegates.
# This may be replaced when dependencies are built.
