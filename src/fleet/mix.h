// Fleet mix specification (DESIGN.md §16): which (chipset, task) configs a
// fleet runs and in what proportion.  A mix entry is a device population;
// shard counts are apportioned deterministically by weight so the same spec
// and shard count always produce the same fleet, independent of worker
// scheduling.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "models/zoo.h"
#include "soc/chipset.h"

namespace mlpm::fleet {

// One device population in the fleet: a chipset running one suite task.
struct FleetMixEntry {
  std::string chipset;  // catalog name, e.g. "Snapdragon 865+"
  std::string task_id;  // suite entry id, e.g. "image_classification"
  double weight = 1.0;  // relative share of the shard count
};

// Parses a `--fleet-mix` spec:  "<chipset>:<task>[:<weight>];..."
//   - <chipset> is a catalog name (may contain spaces);
//   - <task> is a suite entry id or one of the aliases
//     ic / od / is / qa;
//   - <weight> is an optional positive double (default 1).
// Throws CheckError on malformed specs.  Chipset/task existence is checked
// later by ResolveMix, against the suite version actually run.
[[nodiscard]] std::vector<FleetMixEntry> ParseFleetMix(
    const std::string& spec);

// The default mix when none is given: every catalog chipset of `version`
// crossed with every suite task, weight 1 — a maximally heterogeneous
// fleet exercising every prepared-model config.
[[nodiscard]] std::vector<FleetMixEntry> DefaultFleetMix(
    models::SuiteVersion version);

// Canonical one-line rendering ("chipset:task:weight;...") — feeds the
// fleet config hash and the report header.
[[nodiscard]] std::string FormatFleetMix(
    const std::vector<FleetMixEntry>& mix);

// Apportions `shard_count` shards across the mix by largest-remainder on
// the normalized weights (deterministic; remainder ties break toward the
// earlier entry).  Every returned count can be zero except that at least
// one entry receives a shard; the counts sum to `shard_count`.
[[nodiscard]] std::vector<std::size_t> AssignShardCounts(
    const std::vector<FleetMixEntry>& mix, std::size_t shard_count);

// One fully resolved mix entry: the catalog chipset and suite entry behind
// the names.  Resolution throws CheckError for unknown names.
struct ResolvedMixEntry {
  FleetMixEntry spec;
  soc::ChipsetDesc chipset;
  models::BenchmarkEntry entry;
};

[[nodiscard]] std::vector<ResolvedMixEntry> ResolveMix(
    const std::vector<FleetMixEntry>& mix, models::SuiteVersion version);

}  // namespace mlpm::fleet
