#include "backends/simulated_backend.h"

#include <utility>

namespace mlpm::backends {

SimulatedBackend::SimulatedBackend(std::string name,
                                   soc::SocSimulator simulator,
                                   soc::CompiledModel single_stream,
                                   std::vector<soc::CompiledModel>
                                       offline_replicas,
                                   loadgen::VirtualClock& clock,
                                   EndToEndCosts end_to_end)
    : name_(std::move(name)),
      simulator_(std::move(simulator)),
      single_stream_(std::move(single_stream)),
      offline_replicas_(std::move(offline_replicas)),
      clock_(clock),
      end_to_end_(end_to_end) {}

void SimulatedBackend::IssueQuery(
    std::span<const loadgen::QuerySample> samples,
    loadgen::ResponseSink& sink) {
  Expects(!samples.empty(), "empty query");
  if (samples.size() == 1) {
    // Single-stream: one inference, clock advances by its latency.  With
    // fault injection active an attempt may fail; this plain backend does
    // not retry — the completion simply never arrives and the LoadGen's
    // watchdog accounts for it (FaultTolerantBackend adds recovery).
    const soc::InferenceResult r = simulator_.RunInference(single_stream_);
    total_energy_j_ += r.energy_j;
    clock_.Advance(loadgen::Seconds{r.latency_s + end_to_end_.Total()});
    if (r.completed)
      sink.Complete(loadgen::QuerySampleResponse{samples[0].id, {}});
    return;
  }

  // Offline burst: ALP across the replica set.
  std::span<const soc::CompiledModel> replicas = offline_replicas_;
  if (replicas.empty()) replicas = {&single_stream_, 1};
  const soc::BatchResult batch =
      simulator_.RunBatch(replicas, samples.size());
  total_energy_j_ += batch.energy_j;
  const loadgen::Seconds start = clock_.Now();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    clock_.AdvanceTo(start +
                     loadgen::Seconds{batch.completion_times_s[i] +
                                      end_to_end_.Total()});
    if (batch.SampleCompleted(i))
      sink.Complete(loadgen::QuerySampleResponse{samples[i].id, {}});
  }
}

}  // namespace mlpm::backends
