#include "graph/summary.h"

#include <sstream>

#include "common/table.h"
#include "graph/cost.h"

namespace mlpm::graph {

std::string Summarize(const Graph& g) {
  const GraphCost cost = AnalyzeGraph(g);
  TextTable t(g.name());
  t.SetHeader({"Layer", "Op", "Output", "Params", "MACs"});
  for (std::size_t i = 0; i < g.nodes().size(); ++i) {
    const Node& n = g.nodes()[i];
    if (n.op == OpType::kInput) continue;
    const NodeCost& c = cost.per_node[i];
    t.AddRow({n.name, std::string(ToString(n.op)),
              g.tensor(n.output).shape.ToString(),
              std::to_string(c.weight_elems), std::to_string(c.macs)});
  }
  t.AddSeparator();
  t.AddRow({"total", "", "", std::to_string(g.ParameterCount()),
            std::to_string(cost.total_macs)});
  return t.Render();
}

std::string OneLineSummary(const Graph& g) {
  const GraphCost cost = AnalyzeGraph(g);
  std::ostringstream os;
  os.precision(2);
  os << std::fixed << g.name() << ": " << g.nodes().size() << " nodes, "
     << static_cast<double>(g.ParameterCount()) / 1e6 << "M params, "
     << cost.TotalGMacs() << " GMACs";
  return os.str();
}

}  // namespace mlpm::graph
