// Fleet-scale serving benchmarks (DESIGN.md §16): sustained fleet QPS as
// the shard count grows, the harness-bottleneck knee (the shard count where
// per-query wall-clock overhead departs from the small-fleet baseline), and
// hard determinism / prepared-model-sharing assertions.
//
// Standalone (no benchmark framework), same contract as bench_kernels:
// adaptive wall-clock timing, a table on stdout, BENCH_fleet.json for CI.
// The determinism and sharing properties are asserted before anything is
// timed — a throughput number from a nondeterministic fleet is worthless.
//
// Usage: bench_fleet [--json PATH] [--smoke]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "fleet/fleet.h"
#include "fleet/report.h"

namespace {

using namespace mlpm;

bool g_smoke = false;

struct BenchRecord {
  std::string name;
  double value = 0.0;
  std::string unit;
};

std::vector<BenchRecord> g_records;

void Record(const std::string& name, double value, const std::string& unit) {
  g_records.push_back({name, value, unit});
  std::printf("  %-44s %12.3f %s\n", name.c_str(), value, unit.c_str());
}

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FATAL: fleet property failed: %s\n", what);
    std::exit(1);
  }
}

fleet::FleetOptions OptionsFor(std::size_t shards) {
  fleet::FleetOptions fo;
  fo.shard_count = shards;
  fo.settings.server_query_count = 512;
  fo.settings.server_max_queue_depth = 64;
  fo.settings.server_max_shed_fraction = 1.0;  // study overload, don't fail it
  return fo;
}

// Best-of-three wall seconds for one fleet run (fleets are fast: the whole
// run happens in virtual time; wall time is pure harness overhead).
double WallSeconds(const fleet::FleetOptions& fo, fleet::FleetReport* out) {
  using Clock = std::chrono::steady_clock;
  double best = 1e300;
  const int reps = g_smoke ? 2 : 3;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = Clock::now();
    fleet::FleetReport r = fleet::RunFleet(fo);
    best = std::min(best,
                    std::chrono::duration<double>(Clock::now() - t0).count());
    if (out != nullptr) *out = std::move(r);
  }
  return best;
}

void BenchDeterminism() {
  std::printf("determinism: 16-shard mixed fleet, two runs\n");
  const fleet::FleetOptions fo = OptionsFor(16);
  const std::string a = fleet::FormatFleetReport(fleet::RunFleet(fo));
  const std::string b = fleet::FormatFleetReport(fleet::RunFleet(fo));
  Check(a == b, "same-seed fleet reports are not byte-identical");
  Record("fleet_determinism_16shards", 1.0, "ok");
}

void BenchSharing() {
  std::printf("prepared-model sharing: 64 shards, default mix\n");
  const fleet::FleetReport r = fleet::RunFleet(OptionsFor(64));
  Check(r.prepared_models_built == r.distinct_configs,
        "prepared-model builds != distinct configs (cache not shared)");
  Check(r.distinct_configs < r.shard_count,
        "default 64-shard mix should share configs across shards");
  Record("fleet_distinct_configs_64shards",
         static_cast<double>(r.distinct_configs), "configs");
  Record("fleet_models_built_64shards",
         static_cast<double>(r.prepared_models_built), "builds");
}

void BenchSustainedQps() {
  std::printf("sustained fleet QPS vs shard count\n");
  const std::size_t counts_full[] = {4, 16, 64};
  const std::size_t counts_smoke[] = {4, 16};
  const auto counts =
      g_smoke ? std::span<const std::size_t>(counts_smoke)
              : std::span<const std::size_t>(counts_full);
  for (const std::size_t n : counts) {
    fleet::FleetReport r;
    const double wall_s = WallSeconds(OptionsFor(n), &r);
    Record("fleet_qps_" + std::to_string(n) + "shards", r.fleet_qps,
           "queries/s");
    Record("fleet_wall_" + std::to_string(n) + "shards", wall_s * 1e3, "ms");
    if (wall_s > 0.0)
      Record("fleet_harness_rate_" + std::to_string(n) + "shards",
             static_cast<double>(r.issued) / wall_s, "queries/wall-s");
  }
}

// The harness-bottleneck knee: smallest shard count whose per-query wall
// overhead exceeds 1.25x the best observed — where coordination (workers,
// cache, journaling-free path) stops scaling linearly.
void BenchKnee() {
  std::printf("harness-bottleneck knee\n");
  const std::size_t counts_full[] = {1, 2, 4, 8, 16, 32, 64};
  const std::size_t counts_smoke[] = {1, 2, 4, 8, 16};
  const auto counts =
      g_smoke ? std::span<const std::size_t>(counts_smoke)
              : std::span<const std::size_t>(counts_full);
  std::vector<double> per_query(counts.size(), 0.0);
  double best = 1e300;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    fleet::FleetReport r;
    const double wall_s = WallSeconds(OptionsFor(counts[i]), &r);
    per_query[i] =
        r.issued > 0 ? wall_s / static_cast<double>(r.issued) : 0.0;
    best = std::min(best, per_query[i]);
  }
  std::size_t knee = 0;  // 0: no knee in the swept range
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (per_query[i] > 1.25 * best) {
      knee = counts[i];
      break;
    }
  }
  Record("fleet_knee_shards", static_cast<double>(knee), "shards");
  Record("fleet_best_wall_per_query", best * 1e9, "ns");
}

void WriteJson(const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < g_records.size(); ++i) {
    const BenchRecord& r = g_records[i];
    char value[64];
    std::snprintf(value, sizeof value, "%.6g", r.value);
    out << "    {\"name\": \"" << r.name << "\", \"value\": " << value
        << ", \"unit\": \"" << r.unit << "\"}"
        << (i + 1 < g_records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s (%zu benchmarks)\n", path.c_str(),
              g_records.size());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_fleet.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--smoke") {
      g_smoke = true;
    } else {
      std::fprintf(stderr, "usage: bench_fleet [--json PATH] [--smoke]\n");
      return 2;
    }
  }

  const ThreadPool pool;
  std::printf("bench_fleet: %zu execution lane(s)\n", pool.thread_count());
  BenchDeterminism();
  BenchSharing();
  BenchSustainedQps();
  BenchKnee();
  WriteJson(json_path);
  return 0;
}
