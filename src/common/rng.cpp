#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <unordered_set>

#include "common/check.h"

namespace mlpm {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  Expects(bound > 0, "NextBelow bound must be positive");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t v = NextU64();
  while (v >= limit) v = NextU64();
  return v % bound;
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  const double u1 = 1.0 - NextDouble();
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

Rng Rng::Split(std::uint64_t tag) const {
  // Derive a child seed from the parent state and the tag.
  std::uint64_t mix = s_[0] ^ Rotl(s_[2], 13) ^ (tag * 0x9E3779B97F4A7C15ULL);
  return Rng(SplitMix64(mix));
}

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                       std::size_t k) {
  Expects(k <= n, "cannot sample more items than population");
  // Floyd's algorithm: O(k) expected draws.
  std::unordered_set<std::size_t> chosen;
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const std::size_t t = static_cast<std::size_t>(NextBelow(j + 1));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace mlpm
