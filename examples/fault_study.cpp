// Fault-injection study (paper §8 / App. D): what happens to a submission
// when the accelerator driver misbehaves mid-run.
//
// Runs the image-classification performance test on a phone SoC three
// times: clean, under a moderately flaky driver, and under a driver that
// crashes almost every accelerated inference.  The fault-tolerant pipeline
// retries transient faults and, after repeated crashes, degrades to the
// CPU fallback — the run finishes valid-degraded instead of dead, and the
// seeded fault schedule makes every row reproducible.
#include <cstdio>

#include "backends/fault_tolerant_backend.h"
#include "backends/vendor_policy.h"
#include "common/table.h"
#include "core/dataset_qsl.h"
#include "core/loadgen.h"
#include "harness/run_session.h"
#include "harness/task_bundle.h"
#include "models/zoo.h"
#include "soc/faults.h"

namespace {

using namespace mlpm;

struct StudyRow {
  std::string label;
  loadgen::TestResult result;
  backends::FaultTolerantBackend::Stats stats;
  std::size_t fault_count = 0;
  std::string fault_log;
};

StudyRow RunStudy(const std::string& label, const soc::ChipsetDesc& chipset,
                  const soc::FaultPlan* plan,
                  const datasets::TaskDataset& dataset) {
  const models::BenchmarkEntry cls =
      models::SuiteFor(models::SuiteVersion::kV1_0)[0];
  const graph::Graph model = models::BuildReferenceGraph(
      cls, models::SuiteVersion::kV1_0, models::ModelScale::kFull);
  const backends::SubmissionConfig sub = backends::GetSubmission(
      chipset, cls.task, models::SuiteVersion::kV1_0);

  soc::SocSimulator sim(chipset);
  if (plan != nullptr) sim.InjectFaults(*plan);

  loadgen::VirtualClock clock;
  backends::FaultTolerantBackend sut(
      chipset.name + "/" + label, std::move(sim),
      backends::CompileSubmission(chipset, sub, model),
      backends::CompileCpuFallback(chipset, model, sub.numerics),
      backends::CompileOfflineReplicas(chipset, sub, model), clock);

  loadgen::DatasetQsl qsl(dataset);
  loadgen::TestSettings s;
  s.min_query_count = 256;
  s.min_duration = loadgen::Seconds{2.0};
  s.query_timeout = loadgen::Seconds{5.0};  // virtual-clock watchdog

  StudyRow row;
  row.label = label;
  row.result = loadgen::RunTest(sut, qsl, s, clock);
  row.stats = sut.stats();
  row.fault_count = sut.simulator().fault_count();
  if (const soc::FaultInjector* inj = sut.simulator().fault_injector())
    row.fault_log = inj->EventLogText() + sut.EventLogText();
  return row;
}

}  // namespace

int main() {
  const soc::ChipsetDesc chipset = soc::Dimensity1100();
  const models::BenchmarkEntry cls =
      models::SuiteFor(models::SuiteVersion::kV1_0)[0];
  const auto bundle = harness::TaskBundle::Create(
      cls, models::SuiteVersion::kV1_0);

  // The flaky plan: occasional stalls and crashes, the odd lost
  // completion.  The broken plan: the driver crash dominates, forcing the
  // CPU fallback almost immediately.
  const soc::FaultPlan flaky = soc::FaultPlan{}
                                   .TransientStalls(0.05)
                                   .DriverCrashes(0.02)
                                   .SampleDrops(0.01);
  const soc::FaultPlan broken = soc::FaultPlan{}.DriverCrashes(0.95);

  TextTable table("single-stream classification on " + chipset.name +
                  " under injected driver faults");
  table.SetHeader({"Driver", "p90 latency", "Samples", "Timed out",
                   "Retries", "Crashes", "CPU fallback", "Valid"});
  for (const auto& [label, plan] :
       std::initializer_list<std::pair<const char*, const soc::FaultPlan*>>{
           {"clean", nullptr}, {"flaky", &flaky}, {"broken", &broken}}) {
    const StudyRow row = RunStudy(label, chipset, plan, bundle->dataset());
    table.AddRow({row.label,
                  FormatMs(row.result.percentile_latency_s),
                  std::to_string(row.result.sample_count),
                  std::to_string(row.result.timed_out_count),
                  std::to_string(row.stats.retries),
                  std::to_string(row.stats.driver_crashes),
                  row.stats.degraded_to_cpu ? "yes" : "no",
                  row.result.Errored() ? "NO" : "yes"});
  }
  std::printf("%s\n", table.Render().c_str());

  // The reproducibility artifact: same seed, same schedule, same log.
  const StudyRow again = RunStudy("broken", chipset, &broken,
                                  bundle->dataset());
  std::printf("first injected faults under the broken driver:\n");
  const std::string& log = again.fault_log;
  std::size_t shown = 0, pos = 0;
  while (shown < 8 && pos < log.size()) {
    const std::size_t nl = log.find('\n', pos);
    if (nl == std::string::npos) break;
    std::printf("  %s\n", log.substr(pos, nl - pos).c_str());
    pos = nl + 1;
    ++shown;
  }
  std::printf(
      "\nthe broken driver never produces an accelerated result, yet the\n"
      "run finishes valid-degraded on the CPU fallback; with the same\n"
      "fault-plan seed the schedule above is byte-identical on every run.\n");
  return 0;
}
