# Empty dependencies file for bench_extension_superres.
# This may be replaced when dependencies are built.
