// Ablation — NNAPI op-coverage fallback (paper §8 / App. D): sweeping the
// fraction of ops a buggy generic driver punts to the CPU shows how the
// NNAPI path degrades from ~10% slower to the "7x slower" pathology the
// paper cites from Buch et al.
#include <cstdio>

#include "backends/vendor_policy.h"
#include "common/table.h"
#include "models/zoo.h"

int main() {
  using namespace mlpm;
  const soc::ChipsetDesc chipset = soc::Dimensity1100();
  const models::SuiteVersion version = models::SuiteVersion::kV1_0;
  const models::BenchmarkEntry ic = models::SuiteFor(version)[0];
  const graph::Graph model = models::BuildReferenceGraph(
      ic, version, models::ModelScale::kFull);

  const backends::SubmissionConfig vendor =
      backends::GetSubmission(chipset, ic.task, version);
  const double t_vendor =
      backends::CompileSubmission(chipset, vendor, model).LatencySeconds();

  TextTable t("NNAPI CPU-fallback sweep, image classification on " +
              chipset.name);
  t.SetHeader({"fallback fraction", "latency", "vs vendor SDK"});
  t.AddRow({"vendor SDK (no fallback)", FormatMs(t_vendor), "1.0x"});
  for (const double frac : {0.0, 0.05, 0.1, 0.2, 0.33, 0.5}) {
    backends::SubmissionConfig nnapi = vendor;
    nnapi.framework = frac == 0.0
                          ? backends::NnapiTraits("default")
                          : backends::NnapiBuggyTraits("default", frac);
    nnapi.single_stream.force_partition_every =
        nnapi.framework.force_partition_every;
    nnapi.single_stream.cpu_fallback_fraction =
        nnapi.framework.cpu_fallback_fraction;
    const double t_nnapi =
        backends::CompileSubmission(chipset, nnapi, model).LatencySeconds();
    t.AddRow({FormatPercent(frac, 0), FormatMs(t_nnapi),
              FormatDouble(t_nnapi / t_vendor, 2) + "x"});
  }
  std::printf("%s", t.Render().c_str());
  std::printf(
      "\na handful of unsupported ops already costs multiples of the "
      "vendor-path\nlatency: partition sync + boundary copies + slow CPU "
      "kernels compound —\nthe paper's \"7x slower due to buggy support\" "
      "mechanism.\n");
  return 0;
}
