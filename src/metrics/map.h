// COCO-style mean average precision (object-detection task metric).
//
// Matches the COCO protocol's core: per-class AP from a score-ranked greedy
// matching against ground truth, 101-point interpolated precision, averaged
// over classes and over IoU thresholds 0.50:0.05:0.95.
#pragma once

#include <span>
#include <vector>

#include "models/detection.h"

namespace mlpm::metrics {

struct GroundTruthBox {
  models::BBox box;
  int class_id = 0;
};

// Detections/ground truth are parallel per-image lists.
using ImageDetections = std::vector<models::Detection>;
using ImageGroundTruth = std::vector<GroundTruthBox>;

// AP for one class at one IoU threshold, pooled over all images.
[[nodiscard]] double AveragePrecision(
    std::span<const ImageDetections> detections,
    std::span<const ImageGroundTruth> ground_truth, int class_id,
    double iou_threshold);

// Mean AP over all classes present in the ground truth at one threshold.
[[nodiscard]] double MeanAveragePrecision(
    std::span<const ImageDetections> detections,
    std::span<const ImageGroundTruth> ground_truth, double iou_threshold);

// COCO mAP: mean over IoU thresholds 0.50, 0.55, ..., 0.95.
[[nodiscard]] double CocoMap(std::span<const ImageDetections> detections,
                             std::span<const ImageGroundTruth> ground_truth);

}  // namespace mlpm::metrics
