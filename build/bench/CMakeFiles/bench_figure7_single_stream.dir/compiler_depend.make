# Empty compiler generated dependencies file for bench_figure7_single_stream.
# This may be replaced when dependencies are built.
