// The functional reference backend: runs mini-scale models numerically on
// the host CPU through the reference executor.  This is the repo's analogue
// of the paper's poorly-optimized reference TFLite backend (§3.3/§4.1) and
// is what accuracy mode runs against (model outputs are real tensors the
// data set can score).
#pragma once

#include <memory>
#include <string>

#include "core/dataset_qsl.h"
#include "core/query.h"
#include "infer/executor.h"

namespace mlpm::backends {

class ReferenceBackend final : public loadgen::SystemUnderTest {
 public:
  // `executor` runs the model at the submission's numerics; `qsl` stages
  // the inputs.  Both must outlive the backend.
  ReferenceBackend(std::string name, const infer::Executor& executor,
                   const loadgen::DatasetQsl& qsl);

  [[nodiscard]] std::string_view name() const override { return name_; }
  void IssueQuery(std::span<const loadgen::QuerySample> samples,
                  loadgen::ResponseSink& sink) override;

 private:
  std::string name_;
  const infer::Executor& executor_;
  const loadgen::DatasetQsl& qsl_;
};

}  // namespace mlpm::backends
