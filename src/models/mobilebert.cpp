#include "models/mobilebert.h"

#include <string>

namespace mlpm::models {

using graph::Activation;
using graph::GraphBuilder;
using graph::TensorId;

MobileBertConfig MiniMobileBertConfig() {
  MobileBertConfig c;
  c.vocab_size = 256;
  c.seq_len = 48;
  c.embed_dim = 32;
  c.hidden_dim = 64;
  c.bottleneck_dim = 32;
  c.num_heads = 2;
  c.ffn_intermediate = 64;
  c.num_blocks = 3;
  c.ffn_per_block = 2;
  return c;
}

graph::Graph BuildMobileBert(ModelScale scale) {
  return BuildMobileBert(scale == ModelScale::kFull ? MobileBertConfig{}
                                                    : MiniMobileBertConfig());
}

graph::Graph BuildMobileBert(const MobileBertConfig& cfg) {
  Expects(cfg.bottleneck_dim % cfg.num_heads == 0,
          "bottleneck must divide evenly into heads");
  GraphBuilder b("mobilebert");
  TensorId ids = b.Input("token_ids", {cfg.seq_len});

  // Embedding (narrow) then transform up to the body width; the real model
  // uses a trigram convolution here, functionally a learned projection.
  TensorId x = b.Embedding(ids, cfg.vocab_size, cfg.embed_dim, "embed");
  x = b.FullyConnected(x, cfg.hidden_dim, Activation::kNone,
                       "embed_transform");
  x = b.LayerNorm(x, "embed_ln");

  const std::int64_t head_dim = cfg.bottleneck_dim / cfg.num_heads;
  for (int blk = 0; blk < cfg.num_blocks; ++blk) {
    const std::string p = "block" + std::to_string(blk);
    const TensorId block_in = x;

    // Bottleneck entry: body width -> bottleneck width.
    TensorId h = b.FullyConnected(x, cfg.bottleneck_dim, Activation::kNone,
                                  p + "/bn_in");

    // Self-attention on the bottleneck width.
    TensorId att = b.MultiHeadAttention(h, cfg.num_heads, head_dim,
                                        p + "/attn");
    h = b.Add(h, att, p + "/attn_res");
    h = b.LayerNorm(h, p + "/attn_ln");

    // Stacked feed-forward networks.
    for (int fi = 0; fi < cfg.ffn_per_block; ++fi) {
      const std::string fp = p + "/ffn" + std::to_string(fi);
      TensorId f = b.FullyConnected(h, cfg.ffn_intermediate,
                                    Activation::kGelu, fp + "/up");
      f = b.FullyConnected(f, cfg.bottleneck_dim, Activation::kNone,
                           fp + "/down");
      h = b.Add(h, f, fp + "/res");
      h = b.LayerNorm(h, fp + "/ln");
    }

    // Bottleneck exit: back to body width, residual to block input.
    TensorId out = b.FullyConnected(h, cfg.hidden_dim, Activation::kNone,
                                    p + "/bn_out");
    out = b.Add(block_in, out, p + "/block_res");
    x = b.LayerNorm(out, p + "/block_ln");
  }

  // SQuAD span head: per-position start/end logits.
  x = b.FullyConnected(x, 2, Activation::kNone, "qa_logits");
  b.MarkOutput(x);
  return std::move(b).Build();
}

}  // namespace mlpm::models
