// A simulated system under test: the LoadGen drives a vendor backend
// running on a simulated chipset, with latencies flowing through a shared
// VirtualClock (DESIGN.md §1's substitution for physical phones).
#pragma once

#include <memory>
#include <vector>

#include "core/clock.h"
#include "core/query.h"
#include "soc/simulator.h"

namespace mlpm::backends {

struct EndToEndCosts {
  // Pre/post-processing "AI tax" on the CPU per inference (paper App. E:
  // end-to-end extension).  Zero means the measurement excludes it, which
  // is the benchmark default.
  double preprocess_s = 0.0;
  double postprocess_s = 0.0;

  [[nodiscard]] double Total() const { return preprocess_s + postprocess_s; }
};

class SimulatedBackend final : public loadgen::SystemUnderTest {
 public:
  // `clock` must be the clock the LoadGen runs against and must outlive the
  // backend.  `single_stream` is the compiled single-stream plan;
  // `offline_replicas` (possibly empty) are the per-engine ALP plans.
  SimulatedBackend(std::string name, soc::SocSimulator simulator,
                   soc::CompiledModel single_stream,
                   std::vector<soc::CompiledModel> offline_replicas,
                   loadgen::VirtualClock& clock,
                   EndToEndCosts end_to_end = {});

  [[nodiscard]] std::string_view name() const override { return name_; }
  void IssueQuery(std::span<const loadgen::QuerySample> samples,
                  loadgen::ResponseSink& sink) override;

  // Run-rule cooldown hook for the harness.
  void Cooldown(double seconds) { simulator_.Cooldown(seconds); }

  [[nodiscard]] const soc::SocSimulator& simulator() const {
    return simulator_;
  }
  // Total simulated energy consumed by queries so far (J).
  [[nodiscard]] double total_energy_j() const { return total_energy_j_; }

 private:
  std::string name_;
  soc::SocSimulator simulator_;
  soc::CompiledModel single_stream_;
  std::vector<soc::CompiledModel> offline_replicas_;
  loadgen::VirtualClock& clock_;
  EndToEndCosts end_to_end_;
  double total_energy_j_ = 0.0;
};

}  // namespace mlpm::backends
