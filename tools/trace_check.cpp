// CI gate for traced runs: structurally validates a Chrome trace-event JSON
// file produced by `headless_cli --trace` (or any tool using obs::
// TraceRecorder) and prints a summary.  Non-zero exit on any structural
// problem, so the workflow step fails loudly instead of uploading a broken
// artifact.
//
// Usage:
//   mlpm_trace_check FILE [--require cat1,cat2,...]
//
// --require fails the check unless every named category has at least one
// event (the CI smoke run requires node, soc, query and phase events).
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace_check.h"

namespace {

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream is(s);
  while (std::getline(is, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::vector<std::string> required;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--require" && i + 1 < argc) {
      required = SplitCommas(argv[++i]);
    } else if (!arg.empty() && arg[0] != '-' && path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr,
                   "usage: mlpm_trace_check FILE [--require cat1,cat2]\n");
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: mlpm_trace_check FILE [--require cat1,cat2]\n");
    return 2;
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "mlpm_trace_check: cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();

  mlpm::obs::TraceCheckStats stats;
  const std::vector<std::string> problems =
      mlpm::obs::ValidateChromeTrace(json, &stats);

  std::printf("%s: %zu events\n", path.c_str(), stats.event_count);
  for (const auto& [phase, n] : stats.per_phase)
    std::printf("  ph %-2s %zu\n", phase.c_str(), n);
  for (const auto& [cat, n] : stats.per_category)
    std::printf("  cat %-10s %zu\n", cat.c_str(), n);
  for (const auto& [pid, n] : stats.per_pid)
    std::printf("  pid %-2d %zu\n", pid, n);
  if (stats.unmatched_async_begins > 0)
    std::printf("  unmatched async begins (queries never completed): %zu\n",
                stats.unmatched_async_begins);

  int status = 0;
  for (const std::string& p : problems) {
    std::fprintf(stderr, "PROBLEM: %s\n", p.c_str());
    status = 1;
  }
  for (const std::string& cat : required)
    if (stats.per_category.find(cat) == stats.per_category.end()) {
      std::fprintf(stderr, "PROBLEM: required category '%s' has no events\n",
                   cat.c_str());
      status = 1;
    }
  std::printf(status == 0 ? "trace OK\n" : "trace INVALID\n");
  return status;
}
