#include "harness/journal.h"

#include <string_view>
#include <utility>

#include "common/check.h"

namespace mlpm::harness {

using wire::Field;
using wire::ParseDouble;
using wire::ParseU64;
using wire::PayloadParser;
using wire::PutB;
using wire::PutD;
using wire::PutDV;
using wire::PutL;
using wire::PutS;
using wire::PutU;
using wire::PutUV;

// ---- TestResult codec -------------------------------------------------

std::string EncodeTestResult(const loadgen::TestResult& r) {
  std::string out;
  PutU(out, "scenario", static_cast<std::uint64_t>(r.scenario));
  PutU(out, "mode", static_cast<std::uint64_t>(r.mode));
  PutDV(out, "latencies_s", r.latencies_s);
  PutD(out, "duration_s", r.duration_s);
  PutU(out, "sample_count", r.sample_count);
  PutD(out, "percentile_latency_s", r.percentile_latency_s);
  PutD(out, "mean_latency_s", r.mean_latency_s);
  PutD(out, "throughput_sps", r.throughput_sps);
  PutB(out, "min_duration_met", r.min_duration_met);
  PutB(out, "min_query_count_met", r.min_query_count_met);
  PutB(out, "latency_bound_met", r.latency_bound_met);
  PutB(out, "shed_bound_met", r.shed_bound_met);
  PutU(out, "dropped_count", r.dropped_count);
  PutU(out, "timed_out_count", r.timed_out_count);
  PutU(out, "duplicate_count", r.duplicate_count);
  PutU(out, "unknown_count", r.unknown_count);
  PutU(out, "shed_count", r.shed_count);
  PutU(out, "rejected_count", r.rejected_count);
  PutU(out, "issued_count", r.issued_count);
  PutL(out, "error_log", r.error_log);
  PutS(out, "invalid_reason", r.invalid_reason);
  PutS(out, "log", r.log.Serialize());
  return out;
}

loadgen::TestResult DecodeTestResult(const std::string& payload) {
  loadgen::TestResult r;
  PayloadParser parser(payload);
  Field f;
  while (parser.Next(f)) {
    if (f.key == "scenario") {
      const std::uint64_t v = ParseU64(f.scalar);
      Expects(v <= 3, "journal: bad scenario " + f.scalar);
      r.scenario = static_cast<loadgen::TestScenario>(v);
    } else if (f.key == "mode") {
      const std::uint64_t v = ParseU64(f.scalar);
      Expects(v <= 1, "journal: bad mode " + f.scalar);
      r.mode = static_cast<loadgen::TestMode>(v);
    } else if (f.key == "latencies_s") {
      r.latencies_s = std::move(f.doubles);
    } else if (f.key == "duration_s") {
      r.duration_s = ParseDouble(f.scalar);
    } else if (f.key == "sample_count") {
      r.sample_count = ParseU64(f.scalar);
    } else if (f.key == "percentile_latency_s") {
      r.percentile_latency_s = ParseDouble(f.scalar);
    } else if (f.key == "mean_latency_s") {
      r.mean_latency_s = ParseDouble(f.scalar);
    } else if (f.key == "throughput_sps") {
      r.throughput_sps = ParseDouble(f.scalar);
    } else if (f.key == "min_duration_met") {
      r.min_duration_met = f.scalar == "1";
    } else if (f.key == "min_query_count_met") {
      r.min_query_count_met = f.scalar == "1";
    } else if (f.key == "latency_bound_met") {
      r.latency_bound_met = f.scalar == "1";
    } else if (f.key == "shed_bound_met") {
      r.shed_bound_met = f.scalar == "1";
    } else if (f.key == "dropped_count") {
      r.dropped_count = ParseU64(f.scalar);
    } else if (f.key == "timed_out_count") {
      r.timed_out_count = ParseU64(f.scalar);
    } else if (f.key == "duplicate_count") {
      r.duplicate_count = ParseU64(f.scalar);
    } else if (f.key == "unknown_count") {
      r.unknown_count = ParseU64(f.scalar);
    } else if (f.key == "shed_count") {
      r.shed_count = ParseU64(f.scalar);
    } else if (f.key == "rejected_count") {
      r.rejected_count = ParseU64(f.scalar);
    } else if (f.key == "issued_count") {
      r.issued_count = ParseU64(f.scalar);
    } else if (f.key == "error_log") {
      r.error_log = std::move(f.strings);
    } else if (f.key == "invalid_reason") {
      r.invalid_reason = std::move(f.bytes);
    } else if (f.key == "log") {
      r.log = loadgen::TestLog::Parse(f.bytes);
    }
    // Unknown keys are skipped: older binaries read newer journals.
  }
  return r;
}

// ---- task record codec ------------------------------------------------

std::string EncodeTaskRecord(const TaskRunResult& tr) {
  std::string out;
  PutS(out, "task", tr.entry.id);
  PutU(out, "numerics", static_cast<std::uint64_t>(tr.numerics));
  PutS(out, "framework", tr.framework_name);
  PutS(out, "accelerator", tr.accelerator_label);
  PutD(out, "accuracy", tr.accuracy);
  PutD(out, "fp32_reference", tr.fp32_reference);
  PutD(out, "ratio_to_fp32", tr.ratio_to_fp32);
  PutB(out, "quality_passed", tr.quality_passed);
  PutUV(out, "calibration_indices", tr.calibration_indices);
  PutU(out, "accuracy_sample_count", tr.accuracy_sample_count);
  PutU(out, "dataset_size", tr.dataset_size);
  if (tr.single_stream)
    PutS(out, "single_stream", EncodeTestResult(*tr.single_stream));
  if (tr.offline) PutS(out, "offline", EncodeTestResult(*tr.offline));
  PutD(out, "energy_per_inference_j", tr.energy_per_inference_j);
  PutD(out, "peak_temperature_c", tr.peak_temperature_c);
  PutU(out, "peak_arena_bytes", tr.peak_arena_bytes);
  PutU(out, "naive_activation_bytes", tr.naive_activation_bytes);
  PutU(out, "status", static_cast<std::uint64_t>(tr.status));
  PutS(out, "status_detail", tr.status_detail);
  PutU(out, "fault_count", tr.fault_count);
  PutU(out, "degradation_count", tr.degradation_count);
  PutU(out, "shed_count", tr.shed_count);
  PutU(out, "rejected_count", tr.rejected_count);
  PutU(out, "breaker_trips", tr.breaker_trips);
  PutB(out, "degraded_to_cpu", tr.degraded_to_cpu);
  PutU(out, "performance_attempts",
       static_cast<std::uint64_t>(tr.performance_attempts));
  PutS(out, "fault_log", tr.fault_log);
  PutU(out, "lint_error_count", tr.lint_error_count);
  PutU(out, "lint_warning_count", tr.lint_warning_count);
  PutS(out, "lint_log", tr.lint_log);
  PutS(out, "kernel_isa", tr.kernel_isa);
  PutB(out, "transform_requested", tr.transform_requested);
  PutB(out, "transform_applied", tr.transform_applied);
  PutS(out, "transform_passes", tr.transform_passes);
  PutU(out, "transform_rewrites", tr.transform_rewrites);
  PutU(out, "transform_nodes_before", tr.transform_nodes_before);
  PutU(out, "transform_nodes_after", tr.transform_nodes_after);
  PutS(out, "transform_detail", tr.transform_detail);
  PutB(out, "tiling_requested", tr.tiling_requested);
  PutB(out, "tiling_applied", tr.tiling_applied);
  PutU(out, "tile_segments", tr.tile_segments);
  PutU(out, "tile_rows", static_cast<std::uint64_t>(tr.tile_rows));
  PutU(out, "tile_slab_bytes", tr.tile_slab_bytes);
  // accuracy_outputs are deliberately not journaled: they are only needed
  // transiently for scoring, and the derived score is recorded above.
  return out;
}

TaskRunResult DecodeTaskRecord(const std::string& payload) {
  TaskRunResult tr;
  PayloadParser parser(payload);
  Field f;
  while (parser.Next(f)) {
    if (f.key == "task") {
      tr.entry.id = std::move(f.bytes);
    } else if (f.key == "numerics") {
      const std::uint64_t v = ParseU64(f.scalar);
      Expects(v <= 4, "journal: bad numerics " + f.scalar);
      tr.numerics = static_cast<DataType>(v);
    } else if (f.key == "framework") {
      tr.framework_name = std::move(f.bytes);
    } else if (f.key == "accelerator") {
      tr.accelerator_label = std::move(f.bytes);
    } else if (f.key == "accuracy") {
      tr.accuracy = ParseDouble(f.scalar);
    } else if (f.key == "fp32_reference") {
      tr.fp32_reference = ParseDouble(f.scalar);
    } else if (f.key == "ratio_to_fp32") {
      tr.ratio_to_fp32 = ParseDouble(f.scalar);
    } else if (f.key == "quality_passed") {
      tr.quality_passed = f.scalar == "1";
    } else if (f.key == "calibration_indices") {
      tr.calibration_indices.assign(f.uints.begin(), f.uints.end());
    } else if (f.key == "accuracy_sample_count") {
      tr.accuracy_sample_count = ParseU64(f.scalar);
    } else if (f.key == "dataset_size") {
      tr.dataset_size = ParseU64(f.scalar);
    } else if (f.key == "single_stream") {
      tr.single_stream = DecodeTestResult(f.bytes);
    } else if (f.key == "offline") {
      tr.offline = DecodeTestResult(f.bytes);
    } else if (f.key == "energy_per_inference_j") {
      tr.energy_per_inference_j = ParseDouble(f.scalar);
    } else if (f.key == "peak_temperature_c") {
      tr.peak_temperature_c = ParseDouble(f.scalar);
    } else if (f.key == "peak_arena_bytes") {
      tr.peak_arena_bytes = ParseU64(f.scalar);
    } else if (f.key == "naive_activation_bytes") {
      tr.naive_activation_bytes = ParseU64(f.scalar);
    } else if (f.key == "status") {
      const std::uint64_t v = ParseU64(f.scalar);
      Expects(v <= 3, "journal: bad status " + f.scalar);
      tr.status = static_cast<TaskStatus>(v);
    } else if (f.key == "status_detail") {
      tr.status_detail = std::move(f.bytes);
    } else if (f.key == "fault_count") {
      tr.fault_count = ParseU64(f.scalar);
    } else if (f.key == "degradation_count") {
      tr.degradation_count = ParseU64(f.scalar);
    } else if (f.key == "shed_count") {
      tr.shed_count = ParseU64(f.scalar);
    } else if (f.key == "rejected_count") {
      tr.rejected_count = ParseU64(f.scalar);
    } else if (f.key == "breaker_trips") {
      tr.breaker_trips = ParseU64(f.scalar);
    } else if (f.key == "degraded_to_cpu") {
      tr.degraded_to_cpu = f.scalar == "1";
    } else if (f.key == "performance_attempts") {
      tr.performance_attempts = static_cast<int>(ParseU64(f.scalar));
    } else if (f.key == "fault_log") {
      tr.fault_log = std::move(f.bytes);
    } else if (f.key == "lint_error_count") {
      tr.lint_error_count = ParseU64(f.scalar);
    } else if (f.key == "lint_warning_count") {
      tr.lint_warning_count = ParseU64(f.scalar);
    } else if (f.key == "lint_log") {
      tr.lint_log = std::move(f.bytes);
    } else if (f.key == "kernel_isa") {
      tr.kernel_isa = std::move(f.bytes);
    } else if (f.key == "transform_requested") {
      tr.transform_requested = f.scalar == "1";
    } else if (f.key == "transform_applied") {
      tr.transform_applied = f.scalar == "1";
    } else if (f.key == "transform_passes") {
      tr.transform_passes = std::move(f.bytes);
    } else if (f.key == "transform_rewrites") {
      tr.transform_rewrites = ParseU64(f.scalar);
    } else if (f.key == "transform_nodes_before") {
      tr.transform_nodes_before = ParseU64(f.scalar);
    } else if (f.key == "transform_nodes_after") {
      tr.transform_nodes_after = ParseU64(f.scalar);
    } else if (f.key == "transform_detail") {
      tr.transform_detail = std::move(f.bytes);
    } else if (f.key == "tiling_requested") {
      tr.tiling_requested = f.scalar == "1";
    } else if (f.key == "tiling_applied") {
      tr.tiling_applied = f.scalar == "1";
    } else if (f.key == "tile_segments") {
      tr.tile_segments = ParseU64(f.scalar);
    } else if (f.key == "tile_rows") {
      // Stored as the two's-complement u64 image (-1 = auto round-trips).
      tr.tile_rows = static_cast<std::int64_t>(ParseU64(f.scalar));
    } else if (f.key == "tile_slab_bytes") {
      tr.tile_slab_bytes = ParseU64(f.scalar);
    }
  }
  Expects(!tr.entry.id.empty(), "journal: record without a task id");
  return tr;
}

std::string EncodeMeta(const JournalMeta& meta) {
  std::string out;
  PutS(out, "chipset", meta.chipset);
  PutS(out, "version", meta.version);
  PutU(out, "seed", meta.seed);
  PutU(out, "config_hash", meta.config_hash);
  return out;
}

JournalMeta DecodeMeta(const std::string& payload) {
  JournalMeta meta;
  PayloadParser parser(payload);
  Field f;
  while (parser.Next(f)) {
    if (f.key == "chipset") meta.chipset = std::move(f.bytes);
    else if (f.key == "version") meta.version = std::move(f.bytes);
    else if (f.key == "seed") meta.seed = ParseU64(f.scalar);
    else if (f.key == "config_hash") meta.config_hash = ParseU64(f.scalar);
  }
  Expects(!meta.chipset.empty() && !meta.version.empty(),
          "journal: meta missing chipset/version");
  return meta;
}

// ---- run-config digest ------------------------------------------------

std::uint64_t HashRunConfig(const soc::ChipsetDesc& chipset,
                            models::SuiteVersion version,
                            const RunOptions& o) {
  std::string canon;
  const auto add = [&canon](std::string_view key, const std::string& value) {
    canon += key;
    canon += '=';
    canon += value;
    canon += ';';
  };
  const auto add_d = [&](std::string_view key, double v) {
    add(key, wire::HexDouble(v));
  };
  const auto add_u = [&](std::string_view key, std::uint64_t v) {
    add(key, std::to_string(v));
  };

  add("chipset", chipset.name);
  add("version", std::string(ToString(version)));
  add_u("run_accuracy", o.run_accuracy ? 1 : 0);
  add_u("run_performance", o.run_performance ? 1 : 0);
  add_u("run_offline", o.run_offline ? 1 : 0);
  add_d("cooldown_s", o.cooldown_s);
  add_u("end_to_end", o.end_to_end ? 1 : 0);
  add_u("use_qat_weights", o.use_qat_weights ? 1 : 0);
  add_u("max_test_retries", static_cast<std::uint64_t>(o.max_test_retries));
  add_u("lint", static_cast<std::uint64_t>(o.lint));
  // The *requested* ISA, not the resolved one: the hash guards against
  // mixing journals from differently-configured runs, and f32 accuracy
  // results differ across kernel tables.
  add("kernel_isa", std::string(ToString(o.kernel_isa)));
  // The transform stage changes the executed graph, so resumed accuracy
  // results are only interchangeable within one setting of it.
  add_u("transform", o.transform ? 1 : 0);
  // Tiling is bit-identical to whole-op execution, but the memory-plan
  // figures and applied/segment fields in each record depend on it, so
  // journals are only interchangeable within one tiling configuration.
  add_u("tiling", o.tiling.enabled ? 1 : 0);
  add_u("tile_rows", static_cast<std::uint64_t>(o.tiling.rows));
  add_u("tile_cache_bytes", o.tiling.cache_bytes);

  const loadgen::TestSettings& s = o.performance_settings;
  add_u("seed", s.seed);
  add_u("min_query_count", s.min_query_count);
  add_d("min_duration_s", s.min_duration.count());
  add_u("offline_sample_count", s.offline_sample_count);
  add_d("latency_percentile", s.latency_percentile);
  add_d("server_target_qps", s.server_target_qps);
  add_d("server_latency_bound_s", s.server_latency_bound.count());
  add_u("server_query_count", s.server_query_count);
  add_u("server_max_queue_depth", s.server_max_queue_depth);
  add_d("server_max_shed_fraction", s.server_max_shed_fraction);
  add_u("multistream_samples_per_query", s.multistream_samples_per_query);
  add_d("multistream_interval_s", s.multistream_interval.count());
  add_u("multistream_query_count", s.multistream_query_count);
  add_u("performance_sample_count", s.performance_sample_count);
  add_d("query_timeout_s", s.query_timeout.count());

  if (o.fault_plan) {
    add_u("fault_seed", o.fault_plan->seed);
    for (const soc::FaultSpec& spec : o.fault_plan->specs) {
      add("fault_kind", std::string(ToString(spec.kind)));
      add_d("fault_probability", spec.probability);
      add_d("fault_stall_scale", spec.stall_scale);
      add_d("fault_crash_latency_fraction", spec.crash_latency_fraction);
    }
    const backends::FaultToleranceOptions& ft = o.fault_tolerance;
    add_u("ft_max_attempts", static_cast<std::uint64_t>(ft.max_attempts));
    add_d("ft_backoff_base_s", ft.backoff_base_s);
    add_u("ft_crash_fallback_threshold",
          static_cast<std::uint64_t>(ft.crash_fallback_threshold));
    add_d("ft_emergency_cooldown_s", ft.emergency_cooldown_s);
    add_d("ft_backoff_jitter_frac", ft.backoff_jitter_frac);
    add_u("ft_backoff_seed", ft.backoff_seed);
  }
  if (o.circuit_breaker) {
    const backends::CircuitBreakerOptions& cb = *o.circuit_breaker;
    add_u("cb_trip_threshold", static_cast<std::uint64_t>(cb.trip_threshold));
    add_d("cb_open_duration_s", cb.open_duration_s);
    add_d("cb_backoff_factor", cb.backoff_factor);
    add_d("cb_max_open_duration_s", cb.max_open_duration_s);
    add_d("cb_probe_jitter_frac", cb.probe_jitter_frac);
    add_u("cb_seed", cb.seed);
    add_d("cb_rejection_latency_s", cb.rejection_latency_s);
  }
  // threads / profile / trace_path / journal_path are excluded: they do
  // not change any result field.
  return Fnv1a64(canon);
}

// ---- loader -----------------------------------------------------------

JournalLoad LoadJournal(const std::string& path) {
  JournalLoad load;
  const FrameLogLoad raw = LoadFrameLog(path);

  // Interpret the physically-intact frames: the first must be the meta
  // frame, the rest task records.  A frame that violates that — or is
  // checksum-clean but undecodable (format bug, version skew) — cuts the
  // valid prefix right before it, like a torn tail.
  std::size_t pos = raw.valid_prefix_bytes;
  bool interpreted_all = true;
  for (const RawFrame& frame : raw.frames) {
    const bool first_frame = !load.meta_valid && load.tasks.empty();
    try {
      if (first_frame) {
        if (frame.kind != "meta") {
          load.notes.push_back("first frame is '" + frame.kind +
                               "', expected 'meta'");
          pos = frame.offset;
          interpreted_all = false;
          break;
        }
        load.meta = DecodeMeta(frame.payload);
        load.meta_valid = true;
      } else {
        if (frame.kind != "rec") {
          load.notes.push_back("unexpected '" + frame.kind +
                               "' frame after the meta frame");
          pos = frame.offset;
          interpreted_all = false;
          break;
        }
        load.tasks.push_back(DecodeTaskRecord(frame.payload));
        ++load.intact_records;
      }
    } catch (const std::exception& e) {
      load.notes.push_back("undecodable '" + frame.kind + "' frame at byte " +
                           std::to_string(frame.offset) + ": " + e.what());
      pos = frame.offset;
      interpreted_all = false;
      break;
    }
  }
  // Physical damage past the interpreted prefix only matters if the
  // interpretation got that far; an earlier semantic cut supersedes it.
  if (interpreted_all)
    load.notes.insert(load.notes.end(), raw.notes.begin(), raw.notes.end());

  load.valid_prefix_bytes = pos;
  load.torn_bytes = raw.file_size - pos;
  load.torn_tail = load.torn_bytes > 0;
  return load;
}

// ---- writer -----------------------------------------------------------

JournalWriter JournalWriter::Open(const std::string& path,
                                  const JournalMeta& meta, bool resume) {
  if (resume) {
    const JournalLoad existing = LoadJournal(path);
    if (existing.meta_valid && existing.meta.Matches(meta)) {
      return JournalWriter(
          FrameLogWriter::OpenAt(path, existing.valid_prefix_bytes));
    }
    // Missing, damaged beyond the meta frame, or a different run's
    // journal: fall through and start fresh.
  }
  JournalWriter writer(FrameLogWriter::Create(path));
  writer.log_.AppendFrame("meta", EncodeMeta(meta));
  return writer;
}

void JournalWriter::Append(const TaskRunResult& tr) {
  log_.AppendFrame("rec", EncodeTaskRecord(tr));
}

}  // namespace mlpm::harness
