// Mobile speech-recognition prototype (paper Appendix E: "a mobile version
// of RNN-T for speech is in the works").
//
// Encoder-only prototype of the streaming RNN-T encoder (He et al. 2018):
// stacked unidirectional LSTM layers with a time-reduction step, followed by
// a per-frame token classifier and CTC-style greedy decoding (argmax,
// collapse repeats, drop blanks).  The full prediction-network/joint decoder
// is future work here exactly as the model itself was future work in the
// paper; the encoder is where >90% of the compute lives.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "infer/tensor.h"
#include "models/common.h"

namespace mlpm::models {

struct RnntConfig {
  std::int64_t frames = 296;       // input sequence length (audio frames)
  std::int64_t feature_dim = 80;   // log-mel features per frame
  std::int64_t hidden_dim = 640;
  int encoder_layers = 5;
  int time_reduction_after = 2;    // stack pairs of frames after this layer
  std::int64_t vocab_size = 1024;  // wordpiece vocabulary + blank at 0
};

[[nodiscard]] RnntConfig MiniRnntConfig();

// Graph input: [frames, feature_dim].  Output: per-(reduced-)frame token
// logits [frames/2, vocab_size]; index 0 is the CTC blank.
[[nodiscard]] graph::Graph BuildMobileRnnt(ModelScale scale);
[[nodiscard]] graph::Graph BuildMobileRnnt(const RnntConfig& cfg);

// CTC greedy decode: per-frame argmax, collapse consecutive repeats, drop
// blanks (token 0).  `logits` is [frames, vocab].
[[nodiscard]] std::vector<int> GreedyCtcDecode(const infer::Tensor& logits);

}  // namespace mlpm::models
