// Bit-exactness of the parallel execution engine: optimized GEMM kernels
// against the scalar references, prepacked conv against the legacy path,
// the threaded executor against the serial executor for every reference
// model, and the deferred ReferenceBackend / threaded harness against their
// serial counterparts.  Every comparison is EXPECT_EQ on floats: the engine
// promises bit-identical results for any thread count.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "backends/reference_backend.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/dataset_qsl.h"
#include "core/loadgen.h"
#include "harness/run_session.h"
#include "infer/executor.h"
#include "infer/int8_conv.h"
#include "infer/int8_gemm.h"
#include "infer/prepared_model.h"
#include "infer/weights.h"
#include "models/zoo.h"

namespace mlpm {
namespace {

std::vector<float> RandomFloats(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.NextUniform(-1.0, 1.0));
  return v;
}

std::vector<std::uint8_t> RandomBytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> v(n);
  for (auto& x : v)
    x = static_cast<std::uint8_t>(rng.NextBelow(256));
  return v;
}

TEST(GemmF32, TiledMatchesReferenceBitExactly) {
  ThreadPool pool(3);
  // Sizes straddle the 4x4 register tile and the k-block boundary.
  struct Case { std::size_t m, n, k; };
  for (const Case c : {Case{1, 1, 1}, Case{3, 5, 7}, Case{4, 4, 4},
                       Case{17, 9, 33}, Case{32, 32, 600}, Case{5, 128, 64}}) {
    const std::vector<float> a = RandomFloats(c.m * c.k, 11);
    const std::vector<float> b = RandomFloats(c.n * c.k, 22);
    std::vector<float> ref(c.m * c.n), opt(c.m * c.n), par(c.m * c.n);
    infer::GemmF32Ref(a, b, c.m, c.n, c.k, ref);
    infer::GemmF32(a, b, c.m, c.n, c.k, opt);
    infer::GemmF32(a, b, c.m, c.n, c.k, par, &pool);
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(ref[i], opt[i]) << "serial mismatch at " << i;
      EXPECT_EQ(ref[i], par[i]) << "parallel mismatch at " << i;
    }
  }
}

TEST(GemmU8, TiledMatchesReferenceExactly) {
  ThreadPool pool(3);
  struct Case { std::size_t m, n, k; std::int32_t az, bz; };
  for (const Case c : {Case{1, 1, 1, 0, 0}, Case{3, 5, 7, 10, 200},
                       Case{16, 16, 16, 128, 128}, Case{17, 9, 700, 255, 1},
                       Case{6, 31, 64, 97, 45}}) {
    const std::vector<std::uint8_t> a = RandomBytes(c.m * c.k, 33);
    const std::vector<std::uint8_t> b = RandomBytes(c.n * c.k, 44);
    std::vector<std::int32_t> ref(c.m * c.n), opt(c.m * c.n), par(c.m * c.n);
    infer::GemmU8U8I32Ref(a, c.az, b, c.bz, c.m, c.n, c.k, ref);
    infer::GemmU8U8I32(a, c.az, b, c.bz, c.m, c.n, c.k, opt);
    infer::GemmU8U8I32(a, c.az, b, c.bz, c.m, c.n, c.k, par, &pool);
    EXPECT_EQ(ref, opt);
    EXPECT_EQ(ref, par);
  }
}

TEST(ConvInt8, PrepackedMatchesLegacyBitExactly) {
  ThreadPool pool(3);
  const graph::TensorShape in_shape({1, 9, 9, 8});
  const graph::TensorShape w_shape({12, 3, 3, 8});
  infer::Tensor input(in_shape);
  infer::Tensor weights(w_shape);
  infer::Tensor bias(graph::TensorShape({12}));
  {
    Rng rng(55);
    for (auto& v : input.values())
      v = static_cast<float>(rng.NextUniform(-1.0, 1.0));
    for (auto& v : weights.values())
      v = static_cast<float>(rng.NextUniform(-0.5, 0.5));
    for (auto& v : bias.values())
      v = static_cast<float>(rng.NextUniform(-0.1, 0.1));
  }
  const infer::QuantizationParams in_p = infer::ChooseQuantParams(-1.0f, 1.0f);
  const infer::QuantizationParams w_p =
      infer::ChooseQuantParams(-0.5f, 0.5f);

  for (const auto padding : {graph::Padding::kSame, graph::Padding::kValid}) {
    const infer::Tensor legacy =
        infer::ConvInt8NHWC(input, weights, bias, 2, padding, in_p, w_p);
    const infer::PackedConvWeights packed =
        infer::PackConvWeights(weights, w_p);
    infer::ConvScratch scratch;
    // Three rounds through the same scratch: reuse must not change results.
    for (int round = 0; round < 3; ++round) {
      const infer::Tensor got = infer::ConvInt8NHWC(
          input, packed, bias, 2, padding, in_p, &scratch, &pool);
      ASSERT_EQ(got.size(), legacy.size());
      for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(legacy.at(i), got.at(i)) << "round " << round;
    }
  }
}

// Deterministic pseudo-random inputs for a graph (QA token ids included:
// the embedding lookup clamps, so any float is legal).
std::vector<infer::Tensor> GraphInputs(const graph::Graph& g,
                                       std::uint64_t seed) {
  std::vector<infer::Tensor> inputs;
  Rng rng(seed);
  for (const graph::TensorId id : g.input_ids()) {
    infer::Tensor t(g.tensor(id).shape);
    for (auto& v : t.values()) v = static_cast<float>(rng.NextUniform(0.0, 1.0));
    inputs.push_back(std::move(t));
  }
  return inputs;
}

TEST(ParallelExecutor, BitIdenticalToSerialForAllReferenceModels) {
  ThreadPool pool(4);
  for (const models::BenchmarkEntry& e :
       models::SuiteFor(models::SuiteVersion::kV1_0)) {
    const graph::Graph g = models::BuildReferenceGraph(
        e, models::SuiteVersion::kV1_0, models::ModelScale::kMini);
    const infer::WeightStore weights = infer::InitializeWeights(g, 7);
    const infer::Executor exec(g, weights);
    const std::vector<infer::Tensor> inputs = GraphInputs(g, 99);

    const std::vector<infer::Tensor> serial = exec.Run(inputs);
    const std::vector<infer::Tensor> threaded =
        exec.Run(inputs, infer::NodeObserver{}, &pool);
    ASSERT_EQ(serial.size(), threaded.size()) << e.id;
    for (std::size_t o = 0; o < serial.size(); ++o) {
      ASSERT_EQ(serial[o].size(), threaded[o].size());
      for (std::size_t i = 0; i < serial[o].size(); ++i)
        EXPECT_EQ(serial[o].at(i), threaded[o].at(i))
            << e.id << " output " << o << " element " << i;
    }
  }
}

TEST(ParallelExecutor, BitIdenticalAcrossThreadCounts) {
  // INT8 numerics (fake-quant path) with several pool widths against the
  // null-pool baseline.
  const auto e = models::SuiteFor(models::SuiteVersion::kV1_0)[0];
  const graph::Graph g = models::BuildReferenceGraph(
      e, models::SuiteVersion::kV1_0, models::ModelScale::kMini);
  const infer::WeightStore weights = infer::InitializeWeights(g, 7);
  const infer::QuantParams qp;  // weight fake-quant only
  const infer::Executor exec(g, weights, infer::NumericsMode::kInt8, &qp);
  const std::vector<infer::Tensor> inputs = GraphInputs(g, 123);

  const std::vector<infer::Tensor> baseline = exec.Run(inputs);
  for (const std::size_t threads : {2u, 3u, 5u}) {
    ThreadPool pool(threads);
    const std::vector<infer::Tensor> got =
        exec.Run(inputs, infer::NodeObserver{}, &pool);
    ASSERT_EQ(baseline.size(), got.size());
    for (std::size_t o = 0; o < baseline.size(); ++o)
      for (std::size_t i = 0; i < baseline[o].size(); ++i)
        EXPECT_EQ(baseline[o].at(i), got[o].at(i)) << threads << " threads";
  }
}

TEST(ParallelExecutor, RunSamplesParallelMatchesSerialLoop) {
  ThreadPool pool(4);
  const auto e = models::SuiteFor(models::SuiteVersion::kV1_0)[0];
  const graph::Graph g = models::BuildReferenceGraph(
      e, models::SuiteVersion::kV1_0, models::ModelScale::kMini);
  const infer::WeightStore weights = infer::InitializeWeights(g, 7);
  const infer::Executor exec(g, weights);

  constexpr std::size_t kSamples = 9;
  const auto inputs_for = [&](std::size_t i) {
    return GraphInputs(g, 1000 + i);
  };
  const auto parallel =
      infer::RunSamplesParallel(exec, kSamples, inputs_for, &pool);
  ASSERT_EQ(parallel.size(), kSamples);
  for (std::size_t s = 0; s < kSamples; ++s) {
    const std::vector<infer::Tensor> serial = exec.Run(inputs_for(s));
    ASSERT_EQ(serial.size(), parallel[s].size());
    for (std::size_t o = 0; o < serial.size(); ++o)
      for (std::size_t i = 0; i < serial[o].size(); ++i)
        EXPECT_EQ(serial[o].at(i), parallel[s][o].at(i)) << "sample " << s;
  }
}

TEST(ReferenceBackend, DeferredAccuracyMatchesSerial) {
  ThreadPool pool(4);
  const auto e = models::SuiteFor(models::SuiteVersion::kV1_0)[0];
  const std::unique_ptr<harness::TaskBundle> bundle =
      harness::TaskBundle::Create(e, models::SuiteVersion::kV1_0);
  const infer::Executor exec(bundle->mini_graph(), bundle->weights());

  loadgen::TestSettings acc;
  acc.mode = loadgen::TestMode::kAccuracyOnly;

  loadgen::DatasetQsl serial_qsl(bundle->dataset());
  loadgen::RealClock serial_clock;
  backends::ReferenceBackend serial_sut("serial", exec, serial_qsl);
  const loadgen::TestResult serial =
      loadgen::RunTest(serial_sut, serial_qsl, acc, serial_clock);

  loadgen::DatasetQsl par_qsl(bundle->dataset());
  loadgen::RealClock par_clock;
  backends::ReferenceBackend par_sut("deferred", exec, par_qsl, &pool);
  const loadgen::TestResult parallel =
      loadgen::RunTest(par_sut, par_qsl, acc, par_clock);

  EXPECT_TRUE(serial.invalid_reason.empty()) << serial.invalid_reason;
  EXPECT_TRUE(parallel.invalid_reason.empty()) << parallel.invalid_reason;
  ASSERT_EQ(serial.accuracy_outputs.size(), parallel.accuracy_outputs.size());
  for (std::size_t s = 0; s < serial.accuracy_outputs.size(); ++s) {
    ASSERT_EQ(serial.accuracy_outputs[s].size(),
              parallel.accuracy_outputs[s].size());
    for (std::size_t o = 0; o < serial.accuracy_outputs[s].size(); ++o)
      for (std::size_t i = 0; i < serial.accuracy_outputs[s][o].size(); ++i)
        EXPECT_EQ(serial.accuracy_outputs[s][o].at(i),
                  parallel.accuracy_outputs[s][o].at(i))
            << "sample " << s;
  }
  EXPECT_EQ(bundle->dataset().ScoreOutputs(serial.accuracy_outputs),
            bundle->dataset().ScoreOutputs(parallel.accuracy_outputs));
}

TEST(ParallelHarness, AccuracyIdenticalAcrossThreadCounts) {
  // Full accuracy phase through RunSubmission at 1 vs 4 threads: every
  // reported accuracy number must match to the last bit.
  harness::SuiteBundles bundles;
  harness::RunOptions options;
  options.run_performance = false;
  options.threads = 1;
  const harness::SubmissionResult serial = harness::RunSubmission(
      soc::Dimensity1100(), models::SuiteVersion::kV1_0, bundles, options);
  options.threads = 4;
  const harness::SubmissionResult threaded = harness::RunSubmission(
      soc::Dimensity1100(), models::SuiteVersion::kV1_0, bundles, options);

  ASSERT_EQ(serial.tasks.size(), threaded.tasks.size());
  for (std::size_t t = 0; t < serial.tasks.size(); ++t) {
    EXPECT_EQ(serial.tasks[t].accuracy, threaded.tasks[t].accuracy)
        << serial.tasks[t].entry.id;
    EXPECT_EQ(serial.tasks[t].fp32_reference,
              threaded.tasks[t].fp32_reference);
    EXPECT_EQ(serial.tasks[t].accuracy_sample_count,
              threaded.tasks[t].accuracy_sample_count);
    EXPECT_EQ(serial.tasks[t].status, threaded.tasks[t].status);
  }
}

}  // namespace
}  // namespace mlpm
