// Conv+bias+activation fusion: a standalone kActivation whose single
// producer is a conv/dwconv/fc with no fused activation (bias add is already
// part of those ops in this IR) is folded into the producer's attrs.
//
// Numerics gate: activations the canonicalization split created this run
// ("synthetic") re-fuse in every mode — the rewrite restores the original
// pre-split node exactly.  Pre-existing standalone activations fuse under
// FP32 always and under FP16 only for the clamp family; under INT8 fusing
// one removes a fake-quantization point, so it is refused (XFM004).

#include <string>

#include "transform/pass_util.h"
#include "transform/passes.h"

namespace mlpm::transform {
namespace {

class FuseConvActivationPass final : public TransformPass {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "fuse-conv-activation";
  }
  [[nodiscard]] std::span<const Invariant> preserved() const override {
    return kAllInvariants;
  }

  void Run(MutableGraph& g, PassContext& ctx) const override {
    auto producers = g.BuildProducers();
    auto consumers = g.BuildConsumers();
    for (std::size_t i = 0; i < g.nodes().size(); ++i) {
      if (!g.alive(i)) continue;
      const graph::Node& act_node = g.nodes()[i];
      if (act_node.op != graph::OpType::kActivation) continue;
      const graph::Activation act =
          std::get<graph::ActivationAttrs>(act_node.attrs).activation;
      if (act == graph::Activation::kNone) continue;  // identity-cancel's job

      const graph::TensorId mid = act_node.inputs[0];
      const std::int32_t p =
          (mid >= 0 && static_cast<std::size_t>(mid) < producers.size())
              ? producers[static_cast<std::size_t>(mid)]
              : -1;
      if (p < 0) continue;
      const auto pi = static_cast<std::size_t>(p);
      if (!detail::IsConvLike(g.nodes()[pi].op)) continue;
      if (detail::FusedActivation(g.nodes()[pi]) != graph::Activation::kNone)
        continue;
      if (consumers[static_cast<std::size_t>(mid)].size() != 1 ||
          g.IsGraphOutput(mid))
        continue;

      bool allowed = ctx.synthetic_activations.contains(act_node.name);
      if (!allowed) {
        switch (ctx.mode) {
          case infer::NumericsMode::kFp32: allowed = true; break;
          case infer::NumericsMode::kFp16:
            allowed = detail::IsClampFamily(act);
            break;
          case infer::NumericsMode::kInt8: allowed = false; break;
        }
      }
      if (!allowed) {
        ctx.Skip("fusing '" + act_node.name + "' into '" +
                 g.nodes()[pi].name + "' would remove a " +
                 std::string(ToString(ctx.mode)) + " numerics point");
        continue;
      }

      detail::SetFusedActivation(g.nodes()[pi], act);
      detail::Rewire(g, ctx, act_node.output, mid);
      g.Kill(i);
      ctx.Touch(g.nodes()[pi].name);
      ctx.Touch(act_node.name);
      ++ctx.rewrites;
      producers = g.BuildProducers();
      consumers = g.BuildConsumers();
    }
  }
};

}  // namespace

std::unique_ptr<TransformPass> MakeFuseConvActivationPass() {
  return std::make_unique<FuseConvActivationPass>();
}

}  // namespace mlpm::transform
