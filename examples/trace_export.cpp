// Execution-trace export: writes Chrome-trace JSON (open in
// chrome://tracing or https://ui.perfetto.dev) for the v0.7 Exynos 990 and
// v1.0 Exynos 2100 segmentation runs.  The 12.7x generational gap is
// visible as the interconnect lane collapsing between the two traces
// (paper Appendix C).
#include <cstdio>
#include <fstream>

#include "backends/vendor_policy.h"
#include "models/zoo.h"
#include "soc/trace.h"

namespace {

using namespace mlpm;

void ExportTrace(const soc::ChipsetDesc& chip, models::SuiteVersion version,
                 const std::string& path) {
  const auto suite = models::SuiteFor(version);
  const graph::Graph model = models::BuildReferenceGraph(
      suite[2], version, models::ModelScale::kFull);
  const backends::SubmissionConfig sub = backends::GetSubmission(
      chip, models::TaskType::kImageSegmentation, version);
  const soc::CompiledModel cm =
      backends::CompileSubmission(chip, sub, model);
  const soc::ExecutionTrace trace = soc::TraceInference(cm, chip);

  std::ofstream out(path);
  out << trace.ToChromeJson();

  double engine_s = 0.0, interconnect_s = 0.0, runtime_s = 0.0;
  for (const soc::TraceEvent& e : trace.events()) {
    if (e.lane == "interconnect")
      interconnect_s += e.duration_s;
    else if (e.lane == "runtime")
      runtime_s += e.duration_s;
    else
      engine_s += e.duration_s;
  }
  std::printf(
      "%-12s segmentation on %s: %.2f ms total\n"
      "             engines %.2f ms | interconnect %.2f ms | runtime %.3f "
      "ms\n             -> %s (%zu events)\n",
      std::string(ToString(version)).c_str(), chip.name.c_str(),
      trace.TotalDuration() * 1e3, engine_s * 1e3, interconnect_s * 1e3,
      runtime_s * 1e3, path.c_str(), trace.events().size());
}

}  // namespace

int main() {
  ExportTrace(soc::Exynos990(), models::SuiteVersion::kV0_7,
              "trace_exynos990_segmentation.json");
  ExportTrace(soc::Exynos2100(), models::SuiteVersion::kV1_0,
              "trace_exynos2100_segmentation.json");
  std::printf(
      "\nopen both files in chrome://tracing: the v0.7 run is dominated by\n"
      "NPU<->GPU tensor transfers on the interconnect lane; the v1.0 run\n"
      "is almost pure NPU compute — the paper's 12.7x story in one "
      "picture.\n");
  return 0;
}
