// Figure 6 — generational improvement between benchmark rounds v0.7 and
// v1.0 (~6 months apart): per-task latency speedup per SoC family, plus the
// per-task average.
//
// Paper: "latency improved by 2x on average and by 12x in one case"
// (the Exynos segmentation jump is 12.7x: >2x hardware, ~6x software).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/barchart.h"
#include "common/statistics.h"
#include "common/table.h"

int main() {
  using namespace mlpm;

  struct Family {
    soc::ChipsetDesc v07, v10;
  };
  const std::vector<Family> families = {
      {soc::Dimensity820(), soc::Dimensity1100()},
      {soc::Exynos990(), soc::Exynos2100()},
      {soc::Snapdragon865Plus(), soc::Snapdragon888()},
      {soc::CoreI7_1165G7(), soc::CoreI7_11375H()},
  };
  const models::TaskType tasks[] = {
      models::TaskType::kImageClassification,
      models::TaskType::kObjectDetection,
      models::TaskType::kImageSegmentation,
      models::TaskType::kQuestionAnswering,
  };
  const char* task_names[] = {"classification", "detection", "segmentation",
                              "NLP"};

  TextTable t("Figure 6 — single-stream latency: v0.7 vs v1.0 (speedup)");
  t.SetHeader({"SoC family", "classification", "detection", "segmentation",
               "NLP", "family mean"});
  std::vector<std::vector<double>> speedups(4);  // per task column
  std::vector<double> all;

  for (const Family& f : families) {
    std::vector<std::string> row{f.v07.name + " -> " + f.v10.name};
    std::vector<double> fam;
    for (std::size_t i = 0; i < 4; ++i) {
      const double t07 = benchutil::RunSingleStream(
                             f.v07, models::SuiteVersion::kV0_7, tasks[i])
                             .p90_latency_s;
      const double t10 = benchutil::RunSingleStream(
                             f.v10, models::SuiteVersion::kV1_0, tasks[i])
                             .p90_latency_s;
      const double speedup = t07 / t10;
      speedups[i].push_back(speedup);
      fam.push_back(speedup);
      all.push_back(speedup);
      row.push_back(FormatMs(t07) + " -> " + FormatMs(t10) + " (" +
                    FormatDouble(speedup, 2) + "x)");
    }
    row.push_back(FormatDouble(GeometricMean(fam), 2) + "x");
    t.AddRow(std::move(row));
  }
  std::vector<std::string> avg{"task mean"};
  for (std::size_t i = 0; i < 4; ++i)
    avg.push_back(FormatDouble(GeometricMean(speedups[i]), 2) + "x");
  avg.push_back(FormatDouble(GeometricMean(all), 2) + "x");
  t.AddSeparator();
  t.AddRow(std::move(avg));
  std::printf("%s\n", t.Render().c_str());

  // The figure itself: speedup bars grouped by family.
  BarChart chart("v0.7 -> v1.0 speedup (single-stream latency)", "x");
  for (std::size_t fi = 0; fi < families.size(); ++fi) {
    for (std::size_t ti = 0; ti < 4; ++ti)
      chart.Add(families[fi].v10.name + " " + task_names[ti],
                speedups[ti][fi]);
    chart.AddGap();
  }
  std::printf("%s", chart.Render().c_str());

  double max_speedup = 0.0;
  std::size_t max_task = 0;
  std::string max_family;
  for (std::size_t fi = 0; fi < families.size(); ++fi)
    for (std::size_t ti = 0; ti < 4; ++ti)
      if (speedups[ti][fi] > max_speedup) {
        max_speedup = speedups[ti][fi];
        max_task = ti;
        max_family = families[fi].v10.name;
      }
  std::printf(
      "\noverall mean speedup: %.2fx (paper: ~2x); largest: %.1fx on %s %s "
      "(paper: 12.7x,\nExynos 2100 segmentation — >2x hardware plus ~6x "
      "software scheduling/transfer fixes).\n",
      GeometricMean(all), max_speedup, max_family.c_str(),
      task_names[max_task]);
  return 0;
}
