# Empty dependencies file for mlpm_infer.
# This may be replaced when dependencies are built.
