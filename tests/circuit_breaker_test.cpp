// Tests for the per-backend circuit breaker (backends/circuit_breaker.h):
// the full closed/open/half-open state machine, deterministic seeded probe
// scheduling, and the harness-level integration with fault injection and
// the rejected/breaker columns of the submission artifacts.
#include <gtest/gtest.h>

#include <deque>
#include <string>
#include <vector>

#include "backends/circuit_breaker.h"
#include "common/check.h"
#include "core/clock.h"
#include "harness/app.h"
#include "harness/export.h"

namespace mlpm::backends {
namespace {

// Inner SUT whose per-query outcome follows a script: true = complete,
// false = return without completing (a lost completion / give-up).  Every
// attempt costs 1 ms of virtual time.
class ScriptedSut final : public loadgen::SystemUnderTest {
 public:
  explicit ScriptedSut(loadgen::VirtualClock& clock) : clock_(clock) {}
  [[nodiscard]] std::string_view name() const override { return "scripted"; }

  void IssueQuery(std::span<const loadgen::QuerySample> samples,
                  loadgen::ResponseSink& sink) override {
    for (const loadgen::QuerySample& s : samples) {
      ++issued_;
      clock_.Advance(loadgen::Seconds{0.001});
      bool ok = true;
      if (!script_.empty()) {
        ok = script_.front();
        script_.pop_front();
      }
      if (ok) sink.Complete(loadgen::QuerySampleResponse{s.id, {}});
    }
  }

  std::deque<bool> script_;  // empty = always complete
  std::size_t issued_ = 0;

 private:
  loadgen::VirtualClock& clock_;
};

class RecordingSink final : public loadgen::ResponseSink {
 public:
  void Complete(loadgen::QuerySampleResponse response) override {
    completed_.push_back(response.id);
  }
  void Reject(std::uint64_t id, std::string_view reason) override {
    rejected_.push_back(id);
    last_reason_ = std::string(reason);
  }
  std::vector<std::uint64_t> completed_;
  std::vector<std::uint64_t> rejected_;
  std::string last_reason_;
};

void Issue(CircuitBreakerBackend& breaker, std::uint64_t id,
           loadgen::ResponseSink& sink) {
  const loadgen::QuerySample s{id, 0};
  breaker.IssueQuery({&s, 1}, sink);
}

// Jitter-free options so window arithmetic in the tests is exact.
CircuitBreakerOptions ExactOptions() {
  CircuitBreakerOptions o;
  o.trip_threshold = 3;
  o.open_duration_s = 1.0;
  o.backoff_factor = 2.0;
  o.max_open_duration_s = 30.0;
  o.probe_jitter_frac = 0.0;
  return o;
}

TEST(CircuitBreaker, StaysClosedBelowThreshold) {
  loadgen::VirtualClock clock;
  ScriptedSut sut(clock);
  CircuitBreakerBackend breaker(sut, clock, ExactOptions());
  RecordingSink sink;
  // Failure pairs broken by successes never reach 3 consecutive.
  sut.script_ = {false, false, true, false, false, true};
  for (std::uint64_t id = 1; id <= 6; ++id) Issue(breaker, id, sink);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.stats().trips, 0u);
  EXPECT_TRUE(breaker.transitions().empty());
  EXPECT_EQ(sut.issued_, 6u);
}

TEST(CircuitBreaker, TripsAtExactlyThresholdConsecutiveFailures) {
  loadgen::VirtualClock clock;
  ScriptedSut sut(clock);
  CircuitBreakerBackend breaker(sut, clock, ExactOptions());
  RecordingSink sink;
  sut.script_ = {false, false, false};
  Issue(breaker, 1, sink);
  Issue(breaker, 2, sink);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  Issue(breaker, 3, sink);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.stats().trips, 1u);
  ASSERT_EQ(breaker.transitions().size(), 1u);
  EXPECT_EQ(breaker.transitions()[0].from, BreakerState::kClosed);
  EXPECT_EQ(breaker.transitions()[0].to, BreakerState::kOpen);
  EXPECT_EQ(breaker.transitions()[0].query_id, 3u);
}

TEST(CircuitBreaker, OpenFastFailsWithoutTouchingTheInnerSut) {
  loadgen::VirtualClock clock;
  ScriptedSut sut(clock);
  CircuitBreakerBackend breaker(sut, clock, ExactOptions());
  RecordingSink sink;
  sut.script_ = {false, false, false};
  for (std::uint64_t id = 1; id <= 3; ++id) Issue(breaker, id, sink);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);

  const std::size_t issued_before = sut.issued_;
  const double t_before = clock.Now().count();
  for (std::uint64_t id = 4; id <= 8; ++id) Issue(breaker, id, sink);
  EXPECT_EQ(sut.issued_, issued_before);  // inner SUT never saw them
  EXPECT_EQ(breaker.stats().rejected, 5u);
  EXPECT_EQ(sink.rejected_,
            (std::vector<std::uint64_t>{4, 5, 6, 7, 8}));
  EXPECT_EQ(sink.last_reason_, "circuit breaker open");
  // Each rejection costs exactly the configured virtual-clock latency.
  EXPECT_NEAR(clock.Now().count() - t_before,
              5 * ExactOptions().rejection_latency_s, 1e-12);
}

TEST(CircuitBreaker, HalfOpenProbeSuccessCloses) {
  loadgen::VirtualClock clock;
  ScriptedSut sut(clock);
  CircuitBreakerBackend breaker(sut, clock, ExactOptions());
  RecordingSink sink;
  sut.script_ = {false, false, false, true};
  for (std::uint64_t id = 1; id <= 3; ++id) Issue(breaker, id, sink);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);

  clock.Advance(loadgen::Seconds{1.001});  // past the 1 s open window
  Issue(breaker, 4, sink);                 // the probe; script says success
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.stats().probes, 1u);
  ASSERT_EQ(breaker.transitions().size(), 3u);
  EXPECT_EQ(breaker.transitions()[1].to, BreakerState::kHalfOpen);
  EXPECT_EQ(breaker.transitions()[2].to, BreakerState::kClosed);
  EXPECT_EQ(sink.completed_.back(), 4u);
}

TEST(CircuitBreaker, ProbeFailureReopensExponentiallyLonger) {
  loadgen::VirtualClock clock;
  ScriptedSut sut(clock);
  CircuitBreakerBackend breaker(sut, clock, ExactOptions());
  RecordingSink sink;
  sut.script_ = {false, false, false, false, true};
  for (std::uint64_t id = 1; id <= 3; ++id) Issue(breaker, id, sink);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);

  clock.Advance(loadgen::Seconds{1.001});
  Issue(breaker, 4, sink);  // probe fails -> reopen with a 2 s window
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.stats().trips, 2u);

  // 1.5 s into the doubled window the breaker still rejects...
  clock.Advance(loadgen::Seconds{1.5});
  Issue(breaker, 5, sink);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(sink.rejected_.back(), 5u);

  // ...and past 2 s it probes again; this probe succeeds and closes.
  clock.Advance(loadgen::Seconds{0.6});
  Issue(breaker, 6, sink);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.stats().probes, 2u);
}

TEST(CircuitBreaker, SuccessfulCloseResetsTheBackoffWindow) {
  loadgen::VirtualClock clock;
  ScriptedSut sut(clock);
  CircuitBreakerBackend breaker(sut, clock, ExactOptions());
  RecordingSink sink;
  // Trip, probe-fail (window doubles to 2 s), probe-succeed (close), then
  // trip again: the new window must be back to 1 s, not 4 s.
  sut.script_ = {false, false, false, false, true,
                 false, false, false, true};
  for (std::uint64_t id = 1; id <= 3; ++id) Issue(breaker, id, sink);
  clock.Advance(loadgen::Seconds{1.001});
  Issue(breaker, 4, sink);  // failed probe -> 2 s window
  clock.Advance(loadgen::Seconds{2.001});
  Issue(breaker, 5, sink);  // successful probe -> closed, streak reset
  ASSERT_EQ(breaker.state(), BreakerState::kClosed);
  for (std::uint64_t id = 6; id <= 8; ++id) Issue(breaker, id, sink);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  clock.Advance(loadgen::Seconds{1.001});  // > 1 s: probes if streak reset
  Issue(breaker, 9, sink);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreaker, OfflineBurstsBypassTheBreaker) {
  loadgen::VirtualClock clock;
  ScriptedSut sut(clock);
  CircuitBreakerBackend breaker(sut, clock, ExactOptions());
  RecordingSink sink;
  sut.script_ = {false, false, false};
  for (std::uint64_t id = 1; id <= 3; ++id) Issue(breaker, id, sink);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);

  const loadgen::QuerySample burst[] = {{10, 0}, {11, 1}};
  breaker.IssueQuery(burst, sink);
  EXPECT_EQ(sut.issued_, 5u);  // both samples reached the inner SUT
  EXPECT_TRUE(sink.rejected_.empty());
  EXPECT_EQ(sink.completed_.size(), 2u);
}

TEST(CircuitBreaker, TransitionLogIsSeededAndDeterministic) {
  // Drive two breakers through an identical schedule; with the same seed
  // the jittered probe deadlines — and therefore the transition log —
  // must match byte for byte.  A different seed probes at different times.
  const auto drive = [](std::uint64_t seed) {
    loadgen::VirtualClock clock;
    ScriptedSut sut(clock);
    CircuitBreakerOptions o = ExactOptions();
    o.probe_jitter_frac = 1.0;  // windows in [0.5, 1.5) s
    o.seed = seed;
    CircuitBreakerBackend breaker(sut, clock, o);
    RecordingSink sink;
    sut.script_ = {false, false, false};  // trip; all later queries succeed
    for (std::uint64_t id = 1; id <= 3; ++id) Issue(breaker, id, sink);
    // Step until the breaker has probed and closed again.
    std::uint64_t id = 4;
    while (breaker.state() != BreakerState::kClosed && id < 4096) {
      clock.Advance(loadgen::Seconds{0.001});
      Issue(breaker, id++, sink);
    }
    return breaker.EventLogText();
  };
  const std::string a = drive(7), b = drive(7), c = drive(8);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(CircuitBreaker, RejectsInvalidOptions) {
  loadgen::VirtualClock clock;
  ScriptedSut sut(clock);
  CircuitBreakerOptions o;
  o.rejection_latency_s = 0.0;  // would freeze the issue loop's clock
  EXPECT_THROW(CircuitBreakerBackend(sut, clock, o), CheckError);
  o = CircuitBreakerOptions{};
  o.trip_threshold = 0;
  EXPECT_THROW(CircuitBreakerBackend(sut, clock, o), CheckError);
  o = CircuitBreakerOptions{};
  o.backoff_factor = 0.5;
  EXPECT_THROW(CircuitBreakerBackend(sut, clock, o), CheckError);
}

// ---- harness integration ----

TEST(CircuitBreakerIntegration, InvalidBackoffJitterFailsTheTask) {
  // delay = base * 2^k * (1 + frac*(u-0.5)) must never go negative, so the
  // fault-tolerant backend rejects fractions outside [0, 2) at
  // construction; the harness surfaces that as an errored task.
  harness::SuiteBundles bundles;
  harness::RunOptions o;
  o.run_accuracy = false;
  o.run_offline = false;
  o.performance_settings.min_query_count = 64;
  o.performance_settings.min_duration = loadgen::Seconds{0.5};
  o.fault_plan = soc::FaultPlan{};
  o.fault_tolerance.backoff_jitter_frac = 2.5;
  const harness::SubmissionResult r = harness::RunSubmission(
      soc::Dimensity1100(), models::SuiteVersion::kV1_0, bundles, o);
  ASSERT_FALSE(r.tasks.empty());
  for (const harness::TaskRunResult& t : r.tasks)
    EXPECT_EQ(t.status, harness::TaskStatus::kErrored);
}

TEST(CircuitBreakerIntegration, SubmissionRecordsRejectionsAndTrips) {
  harness::SuiteBundles bundles;
  harness::RunOptions o;
  o.run_accuracy = false;
  o.run_offline = false;
  o.performance_settings.min_query_count = 64;
  o.performance_settings.min_duration = loadgen::Seconds{0.5};
  o.performance_settings.query_timeout = loadgen::Seconds{10.0};
  o.cooldown_s = 30.0;
  soc::FaultPlan plan;
  plan.SampleDrops(0.8);  // most attempts lose their completion
  o.fault_plan = plan;
  CircuitBreakerOptions breaker;
  breaker.trip_threshold = 2;
  breaker.open_duration_s = 0.05;
  o.circuit_breaker = breaker;

  const harness::SubmissionResult r = harness::RunSubmission(
      soc::Dimensity1100(), models::SuiteVersion::kV1_0, bundles, o);
  ASSERT_EQ(r.tasks.size(), 4u);
  std::size_t trips = 0, rejected = 0;
  for (const harness::TaskRunResult& t : r.tasks) {
    trips += t.breaker_trips;
    rejected += t.rejected_count;
  }
  EXPECT_GT(trips, 0u);
  EXPECT_GT(rejected, 0u);
  // The breaker's transition log rides along in the fault log.
  bool breaker_logged = false;
  for (const harness::TaskRunResult& t : r.tasks)
    breaker_logged |= t.fault_log.find("breaker closed->open") !=
                      std::string::npos;
  EXPECT_TRUE(breaker_logged);
  // ...and the counters surface in the CSV artifact.
  const std::string csv = harness::ToCsv(r);
  EXPECT_NE(csv.find("shed,rejected,breaker_trips"), std::string::npos);
}

TEST(CircuitBreakerIntegration, FaultAndBreakerLogsAreReproducible) {
  // Same seed, same plan, same breaker options: the concatenated fault +
  // breaker event log is byte-identical across runs (the satellite
  // determinism contract for the seeded backoff jitter and probe windows).
  const auto run = [] {
    harness::SuiteBundles bundles;
    harness::RunOptions o;
    o.run_accuracy = false;
    o.run_offline = false;
    o.performance_settings.min_query_count = 64;
    o.performance_settings.min_duration = loadgen::Seconds{0.5};
    o.performance_settings.query_timeout = loadgen::Seconds{10.0};
    o.cooldown_s = 30.0;
    soc::FaultPlan plan;
    plan.SampleDrops(0.6);
    o.fault_plan = plan;
    o.circuit_breaker = CircuitBreakerOptions{};
    const harness::SubmissionResult r = harness::RunSubmission(
        soc::Dimensity1100(), models::SuiteVersion::kV1_0, bundles, o);
    std::string logs;
    for (const harness::TaskRunResult& t : r.tasks) logs += t.fault_log;
    return logs;
  };
  const std::string a = run();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, run());
}

}  // namespace
}  // namespace mlpm::backends
