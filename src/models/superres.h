// Super-resolution prototype (paper App. E: super-resolution is named as an
// important evolving use case that was left out of the initial suite
// because model versions and metrics had not stabilized).
//
// EDSR-style residual CNN: feature conv, K residual blocks, bilinear x2
// upsample, reconstruction conv.  Unlike the classification-family tasks,
// SR needs no teacher labels — the ground truth is the original
// high-resolution image the input was downsampled from.
#pragma once

#include "graph/graph.h"
#include "infer/weights.h"
#include "models/common.h"

namespace mlpm::models {

struct SuperResConfig {
  std::int64_t lr_size = 240;    // low-resolution input side
  std::int64_t channels = 32;
  int residual_blocks = 8;
  int upscale = 2;               // only 2x is implemented
};

[[nodiscard]] SuperResConfig MiniSuperResConfig();

// Input: [1, lr, lr, 3] in [0,1].  Output: [1, 2*lr, 2*lr, 3].
[[nodiscard]] graph::Graph BuildSuperResolution(ModelScale scale);
[[nodiscard]] graph::Graph BuildSuperResolution(const SuperResConfig& cfg);

// Prototype initialization: frozen seeded weights with the residual
// reconstruction branch damped, so the untrained network behaves like
// "bilinear + small learned detail" (an EDSR-style model is initialized
// near the identity residual for exactly this reason).
[[nodiscard]] infer::WeightStore InitializeSuperResWeights(
    const graph::Graph& g, std::uint64_t seed);

}  // namespace mlpm::models
