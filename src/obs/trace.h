// Unified observability: a low-overhead, thread-safe trace recorder shared
// by the functional executor (wall clock), the SoC simulator (virtual busy
// time) and the LoadGen (test clock).  One recorder, three time domains —
// each domain becomes a Chrome trace-event *process* so Perfetto renders
// the planes side by side without conflating their clocks (DESIGN.md §11).
//
// Recording is off by default.  Every instrumentation site guards on
// `enabled()` — a single relaxed atomic load — so the disabled cost is a
// branch per node/query, and a disabled run records exactly zero events
// (tests/obs_test.cpp holds the executor to bit-identical outputs either
// way).  When enabled, events land in per-thread buffers: each OS thread
// appends to its own vector under its own uncontended mutex, so threads
// never serialize against each other on the hot path, and Snapshot() can
// still merge safely while workers are live.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace mlpm::obs {

// Time domain an event's timestamps are measured in.  Doubles as the Chrome
// trace `pid`, keeping incommensurable clocks in separate process tracks.
enum class Domain : int {
  kHost = 1,     // wall clock: functional executor, harness phases
  kSim = 2,      // virtual busy time: simulated IP blocks, DVFS, thermal
  kLoadGen = 3,  // test clock: query lifecycle, scenario phase marks
};

[[nodiscard]] constexpr std::string_view ToString(Domain d) {
  switch (d) {
    case Domain::kHost: return "host executor (wall clock)";
    case Domain::kSim: return "soc simulator (virtual time)";
    case Domain::kLoadGen: return "loadgen (test clock)";
  }
  return "?";
}

// Chrome trace-event phases we emit (a strict subset of the format).
enum class EventPhase : std::uint8_t {
  kComplete,    // "X": a span with ts + dur
  kInstant,     // "i": a point in time
  kCounter,     // "C": a sampled value, rendered as a track
  kAsyncBegin,  // "b": start of an overlappable operation (id-paired)
  kAsyncEnd,    // "e": end of that operation
};

// One key/value annotation.  `numeric` values are emitted unquoted.
struct TraceArg {
  std::string key;
  std::string value;
  bool numeric = false;
};

[[nodiscard]] inline TraceArg Arg(std::string key, std::string value) {
  return TraceArg{std::move(key), std::move(value), false};
}
[[nodiscard]] inline TraceArg Arg(std::string key, const char* value) {
  return TraceArg{std::move(key), value, false};
}
[[nodiscard]] TraceArg Arg(std::string key, double value);
[[nodiscard]] TraceArg Arg(std::string key, std::uint64_t value);
[[nodiscard]] inline TraceArg Arg(std::string key, int value) {
  return TraceArg{std::move(key), std::to_string(value), true};
}

struct TraceEvent {
  EventPhase phase = EventPhase::kComplete;
  Domain domain = Domain::kHost;
  int tid = 0;               // stable per (domain, lane), assigned on use
  std::uint64_t async_id = 0;  // pairs kAsyncBegin with kAsyncEnd
  std::string name;
  std::string category;  // "node", "soc", "query", "phase", ...
  double ts_us = 0.0;
  double dur_us = 0.0;  // kComplete only
  double value = 0.0;   // kCounter only
  std::vector<TraceArg> args;
};

class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Process-wide recorder used by all built-in instrumentation points.
  [[nodiscard]] static TraceRecorder& Global();

  // Clears all buffers and starts recording; the wall epoch for NowUs()
  // resets to the call.  Disable() stops recording but keeps the events so
  // they can still be exported.
  void Enable();
  void Disable();
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Wall-clock microseconds since Enable() (the kHost time base).
  [[nodiscard]] double NowUs() const;

  // Appends one event.  `lane` names a virtual thread within the domain
  // ("npu", "interconnect", "phases"...); an empty lane means the calling
  // OS thread ("cpu-<n>" in registration order).  All Add* methods are
  // no-ops while disabled.
  void AddComplete(Domain domain, std::string_view lane, std::string name,
                   double ts_us, double dur_us,
                   std::vector<TraceArg> args = {},
                   std::string category = {});
  void AddInstant(Domain domain, std::string_view lane, std::string name,
                  double ts_us, std::vector<TraceArg> args = {},
                  std::string category = {});
  void AddCounter(Domain domain, std::string_view lane, std::string name,
                  double ts_us, double value);
  void AddAsyncBegin(Domain domain, std::string_view lane, std::string name,
                     std::string category, std::uint64_t id, double ts_us,
                     std::vector<TraceArg> args = {});
  void AddAsyncEnd(Domain domain, std::string_view lane, std::string name,
                   std::string category, std::uint64_t id, double ts_us,
                   std::vector<TraceArg> args = {});

  // RAII wall-clock span on the calling thread (kHost domain).  Costs one
  // atomic load when the recorder is disabled.
  class Span {
   public:
    Span(TraceRecorder& recorder, std::string_view name,
         std::vector<TraceArg> args = {}, std::string_view category = {});
    ~Span();
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

   private:
    TraceRecorder* recorder_ = nullptr;  // null when recording was off
    std::string name_;
    std::string category_;
    std::vector<TraceArg> args_;
    double t0_us_ = 0.0;
  };

  // Total events recorded since the last Enable().
  [[nodiscard]] std::size_t event_count() const;

  // Merged copy of every buffer, stably sorted by (domain, tid, ts, longer
  // span first) so per-lane append order survives timestamp ties.
  [[nodiscard]] std::vector<TraceEvent> Snapshot() const;

  // Lane name for a (domain, tid) pair ("?" if unknown).
  [[nodiscard]] std::string LaneName(Domain domain, int tid) const;

  // Chrome trace-event JSON: {"traceEvents":[...]} with process_name /
  // thread_name metadata.  Loadable in chrome://tracing and Perfetto.
  [[nodiscard]] std::string ToChromeJson() const;

  // Process-unique id source for async (begin/end) event pairing.
  [[nodiscard]] std::uint64_t NextAsyncId() {
    return next_async_id_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  struct ThreadBuffer {
    std::string auto_lane;  // "cpu-<n>" for lane-less host events
    mutable std::mutex mu;
    std::vector<TraceEvent> events;
  };

  void Append(TraceEvent event, std::string_view lane);
  [[nodiscard]] ThreadBuffer& BufferForThisThread();
  [[nodiscard]] int LaneTid(Domain domain, std::string_view lane);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_async_id_{1};
  std::chrono::steady_clock::time_point epoch_{};

  mutable std::mutex registry_mu_;  // guards buffers_ and lanes_
  std::map<std::thread::id, std::unique_ptr<ThreadBuffer>> buffers_;
  std::map<std::pair<int, std::string>, int> lanes_;  // (domain, lane) -> tid
  int next_tid_ = 1;
};

// Serializes an already-merged event list.  `lane_name(domain, tid)` labels
// the thread_name metadata rows.  Exposed so soc::ExecutionTrace can render
// standalone traces through the same emitter.
[[nodiscard]] std::string ChromeTraceJson(
    std::span<const TraceEvent> events,
    const std::function<std::string(Domain, int)>& lane_name);

[[nodiscard]] std::string JsonEscape(std::string_view s);

}  // namespace mlpm::obs
