#include "harness/package.h"

#include <sstream>

#include "graph/serialize.h"
#include "harness/export.h"
#include "quant/rules.h"

namespace mlpm::harness {
namespace {

std::string ModelPath(const models::BenchmarkEntry& e) {
  return "models/" + e.id + ".graph";
}
std::string LogPath(const models::BenchmarkEntry& e, const char* scenario) {
  return "logs/" + e.id + "." + scenario + ".log";
}

}  // namespace

SubmissionPackage PackageSubmission(const SubmissionResult& result,
                                    SuiteBundles& bundles) {
  SubmissionPackage pkg;
  pkg.chipset_name = result.chipset_name;
  pkg.version = result.version;

  for (const TaskRunResult& t : result.tasks) {
    const TaskBundle& bundle = bundles.Get(t.entry, result.version);
    pkg.files[ModelPath(t.entry)] =
        graph::SerializeGraph(bundle.mini_graph());
    if (t.single_stream)
      pkg.files[LogPath(t.entry, "single_stream")] =
          t.single_stream->log.Serialize();
    if (t.offline)
      pkg.files[LogPath(t.entry, "offline")] = t.offline->log.Serialize();
  }
  pkg.files["results.csv"] = ToCsv(result);

  std::ostringstream manifest;
  for (const auto& [path, contents] : pkg.files)
    manifest << path << ' ' << contents.size() << '\n';
  pkg.files["MANIFEST"] = manifest.str();
  return pkg;
}

CheckReport AuditPackage(const SubmissionPackage& package,
                         SuiteBundles& bundles,
                         const loadgen::TestSettings& expected) {
  CheckReport report;

  // Manifest must list every file with its exact size (tamper evidence).
  const auto manifest_it = package.files.find("MANIFEST");
  if (manifest_it == package.files.end()) {
    report.Problem("package is missing its MANIFEST");
  } else {
    std::istringstream ms(manifest_it->second);
    std::string path;
    std::size_t size = 0;
    std::size_t listed = 0;
    while (ms >> path >> size) {
      ++listed;
      const auto it = package.files.find(path);
      if (it == package.files.end())
        report.Problem("MANIFEST lists missing file " + path);
      else if (it->second.size() != size)
        report.Problem("size mismatch for " + path +
                       " (file edited after packaging?)");
    }
    if (listed + 1 != package.files.size())
      report.Problem("MANIFEST does not cover every packaged file");
  }

  for (const models::BenchmarkEntry& e : models::SuiteFor(package.version)) {
    // Model equivalence against the frozen reference (§5.1).
    const auto model_it = package.files.find(ModelPath(e));
    if (model_it == package.files.end()) {
      report.Problem("package is missing " + ModelPath(e));
    } else {
      try {
        const graph::Graph submitted = graph::ParseGraph(model_it->second);
        const TaskBundle& bundle = bundles.Get(e, package.version);
        const quant::LegalityReport eq = quant::CheckModelEquivalence(
            bundle.mini_graph(), submitted);
        for (const std::string& v : eq.violations)
          report.Problem(e.id + ": " + v);
      } catch (const CheckError& err) {
        report.Problem(e.id + ": unparseable model file: " + err.what());
      }
    }

    // Unedited single-stream log (every task must have one).
    const auto log_it = package.files.find(LogPath(e, "single_stream"));
    if (log_it == package.files.end()) {
      report.Problem("package is missing " + LogPath(e, "single_stream"));
    } else {
      loadgen::TestSettings ss = expected;
      ss.scenario = loadgen::TestScenario::kSingleStream;
      ss.mode = loadgen::TestMode::kPerformanceOnly;
      CheckReport log_report = CheckPerformanceLog(log_it->second, ss);
      for (std::string& p : log_report.problems)
        report.Problem(e.id + ": " + p);
    }

    // Offline logs are optional but validated when present.
    const auto off_it = package.files.find(LogPath(e, "offline"));
    if (off_it != package.files.end()) {
      loadgen::TestSettings off = expected;
      off.scenario = loadgen::TestScenario::kOffline;
      off.mode = loadgen::TestMode::kPerformanceOnly;
      CheckReport log_report = CheckPerformanceLog(off_it->second, off);
      for (std::string& p : log_report.problems)
        report.Problem(e.id + " (offline): " + p);
    }
  }

  if (!package.files.contains("results.csv"))
    report.Problem("package is missing results.csv");
  return report;
}

}  // namespace mlpm::harness
