#include "harness/result_store.h"

#include <algorithm>

#include "common/check.h"

namespace mlpm::harness {

void ResultStore::Add(std::string date_iso, SubmissionResult result) {
  Expects(date_iso.size() == 10 && date_iso[4] == '-' && date_iso[7] == '-',
          "date must be ISO yyyy-mm-dd");
  submissions_.push_back(DatedSubmission{std::move(date_iso),
                                         std::move(result)});
}

std::vector<DatedSubmission> ResultStore::LatestPerDevice() const {
  std::map<std::pair<std::string, models::SuiteVersion>,
           const DatedSubmission*>
      latest;
  for (const DatedSubmission& s : submissions_) {
    const auto key = std::make_pair(s.result.chipset_name, s.result.version);
    const auto it = latest.find(key);
    // ISO dates compare lexicographically.
    if (it == latest.end() || it->second->date_iso < s.date_iso)
      latest[key] = &s;
  }
  std::vector<DatedSubmission> out;
  out.reserve(latest.size());
  for (const auto& [key, sub] : latest) out.push_back(*sub);
  return out;
}

std::vector<DatedSubmission> ResultStore::HistoryFor(
    const std::string& chipset_name) const {
  std::vector<DatedSubmission> out;
  for (const DatedSubmission& s : submissions_)
    if (s.result.chipset_name == chipset_name) out.push_back(s);
  std::sort(out.begin(), out.end(),
            [](const DatedSubmission& a, const DatedSubmission& b) {
              return a.date_iso < b.date_iso;
            });
  return out;
}

}  // namespace mlpm::harness
