# Empty compiler generated dependencies file for rolling_submissions.
# This may be replaced when dependencies are built.
