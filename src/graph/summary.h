// Human-readable model summaries (layer table + totals), used by the docs,
// the examples, and anyone integrating a new model into the suite (paper
// App. B: model designers package new models into the app).
#pragma once

#include <string>

#include "graph/graph.h"

namespace mlpm::graph {

// Per-layer table: name, op, output shape, params, MACs — plus totals.
[[nodiscard]] std::string Summarize(const Graph& g);

// One-line totals: "<name>: <nodes> nodes, <params>M params, <gmacs> GMACs".
[[nodiscard]] std::string OneLineSummary(const Graph& g);

}  // namespace mlpm::graph
