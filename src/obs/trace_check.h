// Structural validator for Chrome trace-event JSON, shared by the
// `mlpm_trace_check` CLI (CI gate on traced smoke runs) and obs_test.
// Checks the subset of the format this repo emits: every event carries
// ph/pid/tid/ts (plus dur for complete spans), complete spans nest properly
// per (pid, tid), and async begin/end events pair up per (cat, id).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace mlpm::obs {

struct TraceCheckStats {
  std::size_t event_count = 0;             // excluding "M" metadata rows
  std::map<std::string, std::size_t> per_phase;     // "X" -> n, ...
  std::map<std::string, std::size_t> per_category;  // "node" -> n, ...
  std::map<int, std::size_t> per_pid;
  std::size_t unmatched_async_begins = 0;  // queries that never completed
};

// Returns the list of problems (empty means the trace is valid); fills
// `stats` when non-null even on failure, as far as parsing got.
[[nodiscard]] std::vector<std::string> ValidateChromeTrace(
    const std::string& json, TraceCheckStats* stats = nullptr);

}  // namespace mlpm::obs
