#include "common/fp16.h"

#include <bit>
#include <cstring>

namespace mlpm {

std::uint16_t FloatToHalfBits(float f) {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(f);
  const std::uint32_t sign = (bits >> 16) & 0x8000u;
  const std::uint32_t exp = (bits >> 23) & 0xFFu;
  std::uint32_t mant = bits & 0x7FFFFFu;

  if (exp == 0xFF) {  // inf / NaN
    return static_cast<std::uint16_t>(sign | 0x7C00u | (mant ? 0x200u : 0u));
  }

  // Re-bias exponent from 127 to 15.
  const int new_exp = static_cast<int>(exp) - 127 + 15;
  if (new_exp >= 0x1F) {  // overflow -> inf
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (new_exp <= 0) {  // subnormal half or zero
    if (new_exp < -10) return static_cast<std::uint16_t>(sign);  // underflow
    // Add the implicit leading one, then shift into subnormal position.
    mant |= 0x800000u;
    const int shift = 14 - new_exp;
    std::uint32_t half_mant = mant >> shift;
    // Round to nearest even.
    const std::uint32_t rem = mant & ((1u << shift) - 1);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half_mant & 1u))) ++half_mant;
    return static_cast<std::uint16_t>(sign | half_mant);
  }

  // Normalized: keep top 10 mantissa bits, round to nearest even.
  std::uint32_t half = sign | (static_cast<std::uint32_t>(new_exp) << 10) |
                       (mant >> 13);
  const std::uint32_t rem = mant & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1u))) ++half;  // may carry
  return static_cast<std::uint16_t>(half);
}

float HalfBitsToFloat(std::uint16_t h) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1Fu;
  std::uint32_t mant = h & 0x3FFu;

  std::uint32_t bits;
  if (exp == 0) {
    if (mant == 0) {
      bits = sign;  // signed zero
    } else {
      // Subnormal half: normalize.
      int e = -1;
      std::uint32_t m = mant;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      bits = sign | (static_cast<std::uint32_t>(127 - 15 - e) << 23) |
             ((m & 0x3FFu) << 13);
    }
  } else if (exp == 0x1F) {
    bits = sign | 0x7F800000u | (mant << 13);  // inf / NaN
  } else {
    bits = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  return std::bit_cast<float>(bits);
}

}  // namespace mlpm
