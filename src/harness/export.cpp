#include "harness/export.h"

#include <sstream>

namespace mlpm::harness {
namespace {

constexpr const char* kHeader =
    "chipset,version,task,model,numerics,framework,accelerator,accuracy,"
    "fp32_reference,ratio_to_fp32,quality_passed,p90_latency_ms,"
    "mean_latency_ms,offline_fps,energy_mj_per_inference,status,"
    "fault_count,degradation_count,dropped,timed_out,lint_errors,"
    "lint_warnings,peak_arena_bytes,naive_activation_bytes,shed,rejected,"
    "breaker_trips,kernel_isa,transform_applied,transform_passes,"
    "transform_rewrites,tiling_applied,tile_segments,tile_rows,"
    "tile_slab_bytes";

// CSV-quote a field if it contains a comma, quote or line break (RFC 4180:
// fields containing CR or LF must be enclosed in double quotes too, or a
// multi-line chipset/framework name silently splits one record into two).
std::string Field(const std::string& v) {
  if (v.find_first_of(",\"\n\r") == std::string::npos) return v;
  std::string quoted = "\"";
  for (char c : v) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void AppendRows(std::ostringstream& os, const SubmissionResult& result,
                const std::string& date_prefix) {
  os.precision(6);
  for (const TaskRunResult& t : result.tasks) {
    os << date_prefix << Field(result.chipset_name) << ','
       << ToString(result.version) << ',' << t.entry.id << ','
       << Field(t.entry.model_name) << ',' << ToString(t.numerics) << ','
       << Field(t.framework_name) << ',' << Field(t.accelerator_label) << ','
       << t.accuracy << ',' << t.fp32_reference << ',' << t.ratio_to_fp32
       << ',' << (t.quality_passed ? "true" : "false") << ',';
    if (t.single_stream)
      os << t.single_stream->percentile_latency_s * 1e3 << ','
         << t.single_stream->mean_latency_s * 1e3 << ',';
    else
      os << ",,";
    if (t.offline)
      os << t.offline->throughput_sps << ',';
    else
      os << ',';
    const std::size_t dropped =
        (t.single_stream ? t.single_stream->dropped_count : 0) +
        (t.offline ? t.offline->dropped_count : 0);
    const std::size_t timed_out =
        (t.single_stream ? t.single_stream->timed_out_count : 0) +
        (t.offline ? t.offline->timed_out_count : 0);
    os << t.energy_per_inference_j * 1e3 << ',' << ToString(t.status) << ','
       << t.fault_count << ',' << t.degradation_count << ',' << dropped << ','
       << timed_out << ',' << t.lint_error_count << ','
       << t.lint_warning_count << ',' << t.peak_arena_bytes << ','
       << t.naive_activation_bytes << ',' << t.shed_count << ','
       << t.rejected_count << ',' << t.breaker_trips << ','
       << Field(t.kernel_isa) << ','
       << (t.transform_applied ? "true" : "false") << ','
       << Field(t.transform_passes) << ',' << t.transform_rewrites << ','
       << (t.tiling_applied ? "true" : "false") << ',' << t.tile_segments
       << ',' << t.tile_rows << ',' << t.tile_slab_bytes << '\n';
  }
}

}  // namespace

std::string ToCsv(const SubmissionResult& result, bool include_header) {
  std::ostringstream os;
  if (include_header) os << kHeader << '\n';
  AppendRows(os, result, "");
  return os.str();
}

std::string ToCsv(const ResultStore& store) {
  std::ostringstream os;
  os << "date," << kHeader << '\n';
  for (const DatedSubmission& s : store.all())
    AppendRows(os, s.result, s.date_iso + ",");
  return os.str();
}

std::vector<std::vector<std::string>> ParseCsv(const std::string& text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;  // distinguishes "" (one empty field) from EOF
  const auto end_field = [&] {
    record.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  const auto end_record = [&] {
    end_field();
    records.push_back(std::move(record));
    record.clear();
  };
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';  // doubled quote = literal quote
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;  // commas and line breaks are data inside quotes
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        break;
      case '\r':
        if (i + 1 < text.size() && text[i + 1] == '\n') ++i;
        end_record();
        break;
      case '\n':
        end_record();
        break;
      default:
        field += c;
        field_started = true;
        break;
    }
  }
  // Final record when the text does not end in a newline.
  if (field_started || !record.empty()) end_record();
  return records;
}

}  // namespace mlpm::harness
