#include "common/statistics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace mlpm {

double Percentile(std::span<const double> values, double p) {
  Expects(!values.empty(), "Percentile of empty sample set");
  Expects(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

SampleStats Summarize(std::span<const double> values) {
  Expects(!values.empty(), "Summarize of empty sample set");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());

  SampleStats s;
  s.count = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  double sum = 0.0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(s.count);
  double var = 0.0;
  for (double v : sorted) var += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(s.count));

  const auto pct = [&sorted](double p) {
    if (sorted.size() == 1) return sorted.front();
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= sorted.size()) return sorted.back();
    return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
  };
  s.p50 = pct(50.0);
  s.p90 = pct(90.0);
  s.p99 = pct(99.0);
  return s;
}

double GeometricMean(std::span<const double> values) {
  Expects(!values.empty(), "GeometricMean of empty sample set");
  double log_sum = 0.0;
  for (double v : values) {
    Expects(v > 0.0, "GeometricMean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace mlpm
