// Runtime-dispatched SIMD microkernel registry.
//
// The execution engine's hot inner loops — the f32/u8 GEMM row workers, the
// conv/FC 4-wide dot product, and the depthwise per-tap multiply-accumulate —
// are reached through a `KernelTable` of function pointers instead of being
// called directly.  A `KernelRegistry` probes the host CPU once (cpuid-backed
// `__builtin_cpu_supports` on x86, HWCAP/compile-time on AArch64) and selects
// the best table: AVX2+FMA, NEON, or the portable scalar implementation.
//
// Exactness contract (DESIGN.md §13):
//   * u8/int8 kernels accumulate in uint32 modular arithmetic, which is
//     associative and commutative, so EVERY table must produce results
//     bit-identical to the scalar oracle.  kernel_dispatch_test enforces
//     this with randomized shapes including remainder rows/columns.
//   * f32 kernels may reassociate and fuse (FMA), so vectorized tables are
//     only required to match the scalar oracle within a small relative
//     tolerance, also enforced by tests.
//
// The scalar table is the portable fallback AND the oracle: it reproduces the
// pre-dispatch arithmetic order exactly, so a forced `--kernel-isa scalar`
// run is bit-identical to the engine before this registry existed.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace mlpm::infer::kernels {

// `kAuto` resolves to the best table the host supports; the concrete values
// force a table (falling back to scalar when the request is unavailable —
// the analysis pass flags that as diagnostic RUN007 before the run starts).
enum class KernelIsa : std::uint8_t { kAuto = 0, kScalar, kAvx2, kNeon };

[[nodiscard]] constexpr std::string_view ToString(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kAuto: return "auto";
    case KernelIsa::kScalar: return "scalar";
    case KernelIsa::kAvx2: return "avx2";
    case KernelIsa::kNeon: return "neon";
  }
  return "?";
}

// Parses "auto" / "scalar" / "avx2" / "neon"; nullopt for anything else.
[[nodiscard]] std::optional<KernelIsa> ParseKernelIsa(std::string_view name);

// What the host CPU can execute (independent of what this binary was
// compiled with; `KernelRegistry::Available` intersects the two).
struct CpuFeatures {
  bool avx2 = false;  // AVX2 and FMA3 both present
  bool neon = false;  // AArch64 Advanced SIMD
};

// Probes the host once per call; `KernelRegistry::Global()` caches it.
[[nodiscard]] CpuFeatures DetectCpuFeatures();

// One ISA's implementation of every dispatched microkernel.  All function
// pointers are always non-null.  Contracts mirror the scalar originals:
//
//   gemm_f32_rows  C[i,:] = A[i,:] * B^T for i in [i_begin, i_end);
//                  A is [m,k], B is stored transposed [n,k], C is [m,n].
//                  Rows are fully overwritten (no accumulation).
//   gemm_u8_rows   Zero-point-folded u8 GEMM rows: c = (i32)(dot_u8(a_i,b_j)
//                  + k*az*bz - bz*rowsum(a_i) - az*b_sums[j]), all uint32
//                  modular arithmetic — bit-exact across ISAs by contract.
//   row_sums_u8    sums[j] = uint32 sum of B^T row j, j in [j_begin, j_end).
//   dot4_f32       acc[r] += dot(x, w_r, len) for r in 0..3 — the conv and
//                  fully-connected 4-output-channel inner loop.
//   dw_madd_f32    acc[c] += x[c] * w[c] for c in [0, channels) — one
//                  depthwise tap over a channel-contiguous weight slice.
// Vectorized f32 kernels block their work in groups of four rows (gemm) or
// four output features (dot4 call sites), and a row's arithmetic differs
// between the blocked path and the remainder path.  The engine guarantees
// bit-identical results for ANY thread count (DESIGN.md §8), so every
// parallel caller must align its chunk boundaries to this block: otherwise
// the same row would be blocked in one partition and remaindered in another.
inline constexpr std::int64_t kF32RowBlock = 4;

struct KernelTable {
  KernelIsa isa = KernelIsa::kScalar;
  const char* name = "scalar";
  void (*gemm_f32_rows)(const float* a, const float* b_t,
                        std::int64_t i_begin, std::int64_t i_end,
                        std::size_t n, std::size_t k, float* c) = nullptr;
  void (*gemm_u8_rows)(const std::uint8_t* a, const std::uint8_t* b_t,
                       std::int64_t i_begin, std::int64_t i_end, std::size_t n,
                       std::size_t k, std::uint32_t a_zp, std::uint32_t b_zp,
                       const std::uint32_t* b_sums, std::int32_t* c) = nullptr;
  void (*row_sums_u8)(const std::uint8_t* b_t, std::int64_t j_begin,
                      std::int64_t j_end, std::size_t k,
                      std::uint32_t* sums) = nullptr;
  void (*dot4_f32)(const float* x, const float* w0, const float* w1,
                   const float* w2, const float* w3, std::int64_t len,
                   float* acc) = nullptr;
  void (*dw_madd_f32)(const float* x, const float* w, float* acc,
                      std::int64_t channels) = nullptr;
};

// The portable table — always present, the bit-exactness oracle.
[[nodiscard]] const KernelTable& ScalarKernels();

// Vectorized tables, or nullptr when the ISA was not compiled into this
// binary (e.g. avx2 on an ARM build).  Presence here says nothing about the
// host CPU — use KernelRegistry::Available for runtime availability.
[[nodiscard]] const KernelTable* Avx2KernelsOrNull();
[[nodiscard]] const KernelTable* NeonKernelsOrNull();

// Resolves an ISA request against (compiled-in tables ∩ host features).
// Selection is pure given `features`, so tests can inject synthetic feature
// sets; production code uses the process-wide `Global()` instance, which
// probes the host exactly once.
class KernelRegistry {
 public:
  KernelRegistry() : KernelRegistry(DetectCpuFeatures()) {}
  explicit KernelRegistry(const CpuFeatures& features) : features_(features) {}

  [[nodiscard]] static const KernelRegistry& Global();

  [[nodiscard]] const CpuFeatures& features() const { return features_; }

  // True when `isa` can actually run here: its table is compiled in and the
  // host CPU supports it.  kAuto and kScalar are always available.
  [[nodiscard]] bool Available(KernelIsa isa) const;

  // The concrete ISA a request lands on: kAuto picks the best available
  // table; an unavailable forced ISA falls back to kScalar (never fails
  // mid-run — lint reports RUN007 up front instead).
  [[nodiscard]] KernelIsa Resolve(KernelIsa requested) const;

  // The table `Resolve(requested)` names.
  [[nodiscard]] const KernelTable& Select(KernelIsa requested) const;

  // Every concrete ISA available on this host, best first (no kAuto).
  [[nodiscard]] std::vector<KernelIsa> AvailableIsas() const;

 private:
  CpuFeatures features_;
};

}  // namespace mlpm::infer::kernels
