#include "core/logging.h"

#include <charconv>
#include <sstream>

#include "common/check.h"

namespace mlpm::loadgen {

void TestLog::SetField(const std::string& key, std::string value) {
  Expects(key.find(' ') == std::string::npos &&
              key.find('\n') == std::string::npos,
          "log field keys must not contain whitespace");
  Expects(value.find('\n') == std::string::npos,
          "log field values must be single-line");
  fields_[key] = std::move(value);
}

const std::string* TestLog::FieldOrNull(const std::string& key) const {
  const auto it = fields_.find(key);
  return it == fields_.end() ? nullptr : &it->second;
}

void TestLog::Record(LogEventKind kind, std::uint64_t query_id, Seconds t) {
  events_.push_back(LogEvent{kind, query_id, t});
}

std::string TestLog::Serialize() const {
  std::ostringstream os;
  os.precision(9);
  os << "mlpm_loadgen_log v1\n";
  for (const auto& [k, v] : fields_) os << "field " << k << ' ' << v << '\n';
  for (const auto& e : events_) {
    switch (e.kind) {
      case LogEventKind::kQueryIssued: os << "issue "; break;
      case LogEventKind::kQueryCompleted: os << "complete "; break;
      case LogEventKind::kQueryShed: os << "shed "; break;
      case LogEventKind::kQueryRejected: os << "rejected "; break;
    }
    os << e.query_id << ' ' << std::fixed << e.timestamp.count() << '\n';
  }
  return os.str();
}

TestLog TestLog::Parse(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  Expects(static_cast<bool>(std::getline(is, line)), "empty log");
  Expects(line == "mlpm_loadgen_log v1", "unknown log format: " + line);

  TestLog log;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "field") {
      std::string key;
      ls >> key;
      std::string value;
      std::getline(ls, value);
      if (!value.empty() && value.front() == ' ') value.erase(0, 1);
      log.fields_[key] = value;
    } else if (tag == "issue" || tag == "complete" || tag == "shed" ||
               tag == "rejected") {
      std::uint64_t id = 0;
      double t = 0.0;
      ls >> id >> t;
      Expects(!ls.fail(), "malformed log event: " + line);
      LogEventKind kind = LogEventKind::kQueryCompleted;
      if (tag == "issue") kind = LogEventKind::kQueryIssued;
      else if (tag == "shed") kind = LogEventKind::kQueryShed;
      else if (tag == "rejected") kind = LogEventKind::kQueryRejected;
      log.events_.push_back(LogEvent{kind, id, Seconds{t}});
    } else {
      Expects(false, "unknown log line tag: " + tag);
    }
  }
  return log;
}

}  // namespace mlpm::loadgen
