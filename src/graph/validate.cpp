#include "graph/validate.h"

#include <unordered_set>

namespace mlpm::graph {

ValidationReport Validate(const Graph& g) {
  ValidationReport report;
  const auto tensor_count = static_cast<TensorId>(g.tensors().size());
  const auto in_range = [&](TensorId id) {
    return id >= 0 && id < tensor_count;
  };

  std::unordered_set<TensorId> defined(g.input_ids().begin(),
                                       g.input_ids().end());
  std::unordered_set<TensorId> consumed;
  std::unordered_set<TensorId> produced;

  for (const TensorId id : g.input_ids())
    if (!in_range(id)) report.Problem("graph input id out of range");

  for (std::size_t ni = 0; ni < g.nodes().size(); ++ni) {
    const Node& n = g.nodes()[ni];
    const std::string where = "node '" + n.name + "'";
    for (const TensorId id : n.inputs) {
      if (!in_range(id)) {
        report.Problem(where + ": input id out of range");
        continue;
      }
      if (g.tensor(id).kind != TensorKind::kActivation)
        report.Problem(where + ": input references a weight tensor");
      if (!defined.contains(id))
        report.Problem(where + ": uses tensor '" + g.tensor(id).name +
                       "' before it is produced");
      consumed.insert(id);
    }
    for (const TensorId id : n.weights) {
      if (!in_range(id)) {
        report.Problem(where + ": weight id out of range");
        continue;
      }
      if (g.tensor(id).kind != TensorKind::kWeight)
        report.Problem(where + ": weight references an activation tensor");
    }
    if (!in_range(n.output)) {
      report.Problem(where + ": output id out of range");
      continue;
    }
    if (produced.contains(n.output))
      report.Problem(where + ": output tensor produced twice");
    produced.insert(n.output);
    defined.insert(n.output);
  }

  for (const TensorId id : g.input_ids())
    if (produced.contains(id))
      report.Problem("graph input '" + g.tensor(id).name +
                     "' is also produced by a node");

  const std::unordered_set<TensorId> outputs(g.output_ids().begin(),
                                             g.output_ids().end());
  for (const TensorId id : g.output_ids()) {
    if (!in_range(id)) {
      report.Problem("graph output id out of range");
      continue;
    }
    if (!defined.contains(id))
      report.Problem("graph output '" + g.tensor(id).name +
                     "' is never produced");
  }

  // Dead-end activations: produced but neither consumed nor an output.
  for (const TensorId id : produced)
    if (!consumed.contains(id) && !outputs.contains(id))
      report.Problem("tensor '" + g.tensor(id).name +
                     "' is produced but never used");
  return report;
}

}  // namespace mlpm::graph
