// AVX2 + FMA microkernel table.  Compiled with -mavx2 -mfma on x86 builds
// only (see src/infer/CMakeLists.txt); the registry dispatches here when the
// host CPU advertises both features.
//
// Exactness: the u8 kernels accumulate widened products in 32-bit lanes and
// reduce with wrapping adds — modulo-2^32 arithmetic is associative, so any
// lane order gives the same bits as the scalar oracle.  The f32 kernels use
// 8-lane FMA accumulators, which reassociates the sum and fuses the
// round step, so they match the oracle only within the documented relative
// tolerance (DESIGN.md §13).
#include "infer/kernels/registry.h"

#if defined(MLPM_KERNELS_HAVE_AVX2)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

namespace mlpm::infer::kernels {
namespace {

inline float Hsum256(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

// Wrapping (mod 2^32) horizontal sum of the eight 32-bit lanes.
inline std::uint32_t HsumEpi32(__m256i v) {
  __m128i lo = _mm256_castsi256_si128(v);
  __m128i hi = _mm256_extracti128_si256(v, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x4E));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0xB1));
  return static_cast<std::uint32_t>(_mm_cvtsi128_si32(s));
}

inline float DotF32(const float* x, const float* y, std::size_t k) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= k; i += 8)
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i), acc);
  float s = Hsum256(acc);
  for (; i < k; ++i) s += x[i] * y[i];
  return s;
}

// u8·u8 dot product mod 2^32.  16 bytes per step: widen both operands to
// u16 (values <= 255 so i16 is exact), _mm256_madd_epi16 multiplies and adds
// adjacent pairs into 32-bit lanes (pair sums <= 2*255*255, no overflow),
// then wrapping 32-bit adds accumulate — bit-exact vs the scalar oracle.
inline std::uint32_t DotU8(const std::uint8_t* x, const std::uint8_t* y,
                           std::size_t k) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 16 <= k; i += 16) {
    const __m256i xv = _mm256_cvtepu8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + i)));
    const __m256i yv = _mm256_cvtepu8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(y + i)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(xv, yv));
  }
  std::uint32_t s = HsumEpi32(acc);
  for (; i < k; ++i)
    s += static_cast<std::uint32_t>(x[i]) * static_cast<std::uint32_t>(y[i]);
  return s;
}

// Sum of a u8 row via psadbw (sum of absolute differences against zero),
// which adds each group of 8 bytes into a 64-bit lane — exact.
inline std::uint32_t RowSumU8(const std::uint8_t* row, std::size_t k) {
  __m256i acc = _mm256_setzero_si256();
  const __m256i zero = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 32 <= k; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + i));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(v, zero));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::uint32_t s = static_cast<std::uint32_t>(lanes[0] + lanes[1] +
                                               lanes[2] + lanes[3]);
  for (; i < k; ++i) s += row[i];
  return s;
}

void GemmF32RowsAvx2(const float* a, const float* b_t, std::int64_t i_begin,
                     std::int64_t i_end, std::size_t n, std::size_t k,
                     float* c) {
  std::int64_t i = i_begin;
  // 4 rows x 2 columns of outputs: 8 vector accumulators plus 6 streamed
  // loads per k-step stay within the 16 ymm registers.
  for (; i + 4 <= i_end; i += 4) {
    const float* a0 = a + static_cast<std::size_t>(i) * k;
    const float* a1 = a0 + k;
    const float* a2 = a1 + k;
    const float* a3 = a2 + k;
    std::size_t j = 0;
    for (; j + 2 <= n; j += 2) {
      const float* b0 = b_t + j * k;
      const float* b1 = b0 + k;
      __m256 acc00 = _mm256_setzero_ps(), acc01 = _mm256_setzero_ps();
      __m256 acc10 = _mm256_setzero_ps(), acc11 = _mm256_setzero_ps();
      __m256 acc20 = _mm256_setzero_ps(), acc21 = _mm256_setzero_ps();
      __m256 acc30 = _mm256_setzero_ps(), acc31 = _mm256_setzero_ps();
      std::size_t kk = 0;
      for (; kk + 8 <= k; kk += 8) {
        const __m256 bv0 = _mm256_loadu_ps(b0 + kk);
        const __m256 bv1 = _mm256_loadu_ps(b1 + kk);
        const __m256 av0 = _mm256_loadu_ps(a0 + kk);
        acc00 = _mm256_fmadd_ps(av0, bv0, acc00);
        acc01 = _mm256_fmadd_ps(av0, bv1, acc01);
        const __m256 av1 = _mm256_loadu_ps(a1 + kk);
        acc10 = _mm256_fmadd_ps(av1, bv0, acc10);
        acc11 = _mm256_fmadd_ps(av1, bv1, acc11);
        const __m256 av2 = _mm256_loadu_ps(a2 + kk);
        acc20 = _mm256_fmadd_ps(av2, bv0, acc20);
        acc21 = _mm256_fmadd_ps(av2, bv1, acc21);
        const __m256 av3 = _mm256_loadu_ps(a3 + kk);
        acc30 = _mm256_fmadd_ps(av3, bv0, acc30);
        acc31 = _mm256_fmadd_ps(av3, bv1, acc31);
      }
      float s[4][2] = {{Hsum256(acc00), Hsum256(acc01)},
                       {Hsum256(acc10), Hsum256(acc11)},
                       {Hsum256(acc20), Hsum256(acc21)},
                       {Hsum256(acc30), Hsum256(acc31)}};
      for (; kk < k; ++kk) {
        const float bv0 = b0[kk], bv1 = b1[kk];
        s[0][0] += a0[kk] * bv0; s[0][1] += a0[kk] * bv1;
        s[1][0] += a1[kk] * bv0; s[1][1] += a1[kk] * bv1;
        s[2][0] += a2[kk] * bv0; s[2][1] += a2[kk] * bv1;
        s[3][0] += a3[kk] * bv0; s[3][1] += a3[kk] * bv1;
      }
      for (std::size_t r = 0; r < 4; ++r) {
        c[(static_cast<std::size_t>(i) + r) * n + j] = s[r][0];
        c[(static_cast<std::size_t>(i) + r) * n + j + 1] = s[r][1];
      }
    }
    for (; j < n; ++j) {
      const float* bj = b_t + j * k;
      c[static_cast<std::size_t>(i) * n + j] = DotF32(a0, bj, k);
      c[static_cast<std::size_t>(i + 1) * n + j] = DotF32(a1, bj, k);
      c[static_cast<std::size_t>(i + 2) * n + j] = DotF32(a2, bj, k);
      c[static_cast<std::size_t>(i + 3) * n + j] = DotF32(a3, bj, k);
    }
  }
  for (; i < i_end; ++i) {
    const float* ai = a + static_cast<std::size_t>(i) * k;
    for (std::size_t j = 0; j < n; ++j)
      c[static_cast<std::size_t>(i) * n + j] = DotF32(ai, b_t + j * k, k);
  }
}

void GemmU8RowsAvx2(const std::uint8_t* a, const std::uint8_t* b_t,
                    std::int64_t i_begin, std::int64_t i_end, std::size_t n,
                    std::size_t k, std::uint32_t a_zp, std::uint32_t b_zp,
                    const std::uint32_t* b_sums, std::int32_t* c) {
  const std::uint32_t kzz = static_cast<std::uint32_t>(k) * a_zp * b_zp;
  for (std::int64_t i = i_begin; i < i_end; ++i) {
    const std::uint8_t* ai = a + static_cast<std::size_t>(i) * k;
    const std::uint32_t base = kzz - b_zp * RowSumU8(ai, k);
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint32_t s = DotU8(ai, b_t + j * k, k);
      c[static_cast<std::size_t>(i) * n + j] =
          static_cast<std::int32_t>(s + base - a_zp * b_sums[j]);
    }
  }
}

void RowSumsU8Avx2(const std::uint8_t* b_t, std::int64_t j_begin,
                   std::int64_t j_end, std::size_t k, std::uint32_t* sums) {
  for (std::int64_t j = j_begin; j < j_end; ++j)
    sums[j] = RowSumU8(b_t + static_cast<std::size_t>(j) * k, k);
}

void Dot4F32Avx2(const float* x, const float* w0, const float* w1,
                 const float* w2, const float* w3, std::int64_t len,
                 float* acc) {
  __m256 s0 = _mm256_setzero_ps(), s1 = _mm256_setzero_ps();
  __m256 s2 = _mm256_setzero_ps(), s3 = _mm256_setzero_ps();
  std::int64_t i = 0;
  for (; i + 8 <= len; i += 8) {
    const __m256 xv = _mm256_loadu_ps(x + i);
    s0 = _mm256_fmadd_ps(xv, _mm256_loadu_ps(w0 + i), s0);
    s1 = _mm256_fmadd_ps(xv, _mm256_loadu_ps(w1 + i), s1);
    s2 = _mm256_fmadd_ps(xv, _mm256_loadu_ps(w2 + i), s2);
    s3 = _mm256_fmadd_ps(xv, _mm256_loadu_ps(w3 + i), s3);
  }
  float r0 = Hsum256(s0), r1 = Hsum256(s1), r2 = Hsum256(s2),
        r3 = Hsum256(s3);
  for (; i < len; ++i) {
    const float v = x[i];
    r0 += v * w0[i];
    r1 += v * w1[i];
    r2 += v * w2[i];
    r3 += v * w3[i];
  }
  acc[0] += r0;
  acc[1] += r1;
  acc[2] += r2;
  acc[3] += r3;
}

void DwMaddF32Avx2(const float* x, const float* w, float* acc,
                   std::int64_t channels) {
  std::int64_t c = 0;
  for (; c + 8 <= channels; c += 8)
    _mm256_storeu_ps(acc + c,
                     _mm256_fmadd_ps(_mm256_loadu_ps(x + c),
                                     _mm256_loadu_ps(w + c),
                                     _mm256_loadu_ps(acc + c)));
  for (; c < channels; ++c) acc[c] += x[c] * w[c];
}

}  // namespace

const KernelTable* Avx2KernelsOrNull() {
  static constexpr KernelTable kTable = {
      KernelIsa::kAvx2, "avx2",      GemmF32RowsAvx2, GemmU8RowsAvx2,
      RowSumsU8Avx2,    Dot4F32Avx2, DwMaddF32Avx2};
  return &kTable;
}

}  // namespace mlpm::infer::kernels

#endif  // MLPM_KERNELS_HAVE_AVX2
