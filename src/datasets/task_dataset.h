// The common dataset interface the LoadGen's QSL and the harness's accuracy
// mode consume (paper §4.1).
//
// Ground truth in every concrete dataset is teacher-derived: the FP32
// reference model's own prediction corrupted with seeded noise so the FP32
// score lands on the paper's published quality (DESIGN.md §1).  This makes
// "x% of FP32" quality targets exact by construction while keeping the
// quantization-degradation mechanism real.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "infer/tensor.h"

namespace mlpm::datasets {

class TaskDataset {
 public:
  virtual ~TaskDataset() = default;

  // Number of validation samples.
  [[nodiscard]] virtual std::size_t size() const = 0;

  // Full set of graph inputs for sample `index` (deterministic).
  [[nodiscard]] virtual std::vector<infer::Tensor> InputsFor(
      std::size_t index) const = 0;

  // Scores one full pass: outputs[i] holds the model's raw output tensors
  // for sample i, i in [0, size()).  Returns the task metric in [0, 1].
  [[nodiscard]] virtual double ScoreOutputs(
      std::span<const std::vector<infer::Tensor>> outputs) const = 0;

  [[nodiscard]] virtual std::string_view metric_name() const = 0;

  // Samples from the *training* split used for PTQ calibration (disjoint
  // seed namespace from validation; paper §5.1's approved ~500-sample set).
  [[nodiscard]] virtual std::vector<infer::Tensor> CalibrationInputsFor(
      std::size_t index) const = 0;
};

}  // namespace mlpm::datasets
