// Tests for the Appendix-E extensions: the LSTM op and RNN-T encoder
// prototype, the WER metric, the speech data set, the Apple A14 / Core ML
// stack, elementwise fusion, and the stepped DVFS governor.
#include <gtest/gtest.h>

#include <cmath>

#include "backends/vendor_policy.h"
#include "common/rng.h"
#include "datasets/speech_dataset.h"
#include "graph/cost.h"
#include "infer/executor.h"
#include "infer/weights.h"
#include "datasets/preprocess.h"
#include "datasets/superres_dataset.h"
#include "metrics/psnr.h"
#include "metrics/wer.h"
#include "models/superres.h"
#include "soc/battery.h"
#include "models/rnnt.h"
#include "soc/simulator.h"

namespace mlpm {
namespace {

// ---- LSTM op ----

TEST(Lstm, ShapeAndWeights) {
  graph::GraphBuilder b("t");
  graph::TensorId x = b.Input("in", {6, 4});
  x = b.Lstm(x, 8, "l");
  EXPECT_EQ(b.ShapeOf(x), graph::TensorShape({6, 8}));
  b.MarkOutput(x);
  const graph::Graph g = std::move(b).Build();
  // wx [32,4] + wh [32,8] + b [32].
  EXPECT_EQ(g.ParameterCount(), 32 * 4 + 32 * 8 + 32);
}

TEST(Lstm, MacsMatchFormula) {
  graph::GraphBuilder b("t");
  graph::TensorId x = b.Input("in", {6, 4});
  b.MarkOutput(b.Lstm(x, 8));
  const graph::GraphCost c = graph::AnalyzeGraph(std::move(b).Build());
  EXPECT_EQ(c.total_macs, 6 * 4 * 8 * (4 + 8));
}

TEST(Lstm, RejectsBadInputs) {
  graph::GraphBuilder b("t");
  graph::TensorId img = b.Input("in", {1, 4, 4, 3});
  EXPECT_THROW((void)b.Lstm(img, 8), CheckError);
  graph::TensorId seq = b.Input("seq", {4, 2});
  EXPECT_THROW((void)b.Lstm(seq, 0), CheckError);
}

TEST(Lstm, ZeroWeightsGiveZeroOutput) {
  graph::GraphBuilder b("t");
  graph::TensorId x = b.Input("in", {3, 2});
  b.MarkOutput(b.Lstm(x, 2, "l"));
  const graph::Graph g = std::move(b).Build();
  infer::WeightStore w;
  w.Put("l/wx", infer::Tensor(graph::TensorShape({8, 2}),
                              std::vector<float>(16, 0.0f)));
  w.Put("l/wh", infer::Tensor(graph::TensorShape({8, 2}),
                              std::vector<float>(16, 0.0f)));
  w.Put("l/b", infer::Tensor(graph::TensorShape({8}),
                             std::vector<float>(8, 0.0f)));
  const infer::Executor exec(g, w);
  std::vector<infer::Tensor> in;
  in.emplace_back(graph::TensorShape({3, 2}),
                  std::vector<float>{1, 2, 3, 4, 5, 6});
  const auto out = exec.Run(in);
  // All gates at 0 -> i=f=o=0.5, g=0 -> cell stays 0, h = 0.5*tanh(0) = 0.
  for (float v : out[0].values()) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Lstm, SingleStepMatchesHandComputation) {
  // One step, H=1, D=1: gates = [wx_i*x, wx_f*x, wx_g*x, wx_o*x] + b.
  graph::GraphBuilder b("t");
  graph::TensorId x = b.Input("in", {1, 1});
  b.MarkOutput(b.Lstm(x, 1, "l"));
  const graph::Graph g = std::move(b).Build();
  infer::WeightStore w;
  w.Put("l/wx", infer::Tensor(graph::TensorShape({4, 1}),
                              {1.0f, 2.0f, 3.0f, 4.0f}));
  w.Put("l/wh", infer::Tensor(graph::TensorShape({4, 1}),
                              std::vector<float>(4, 0.0f)));
  w.Put("l/b",
        infer::Tensor(graph::TensorShape({4}), std::vector<float>(4, 0.0f)));
  const infer::Executor exec(g, w);
  std::vector<infer::Tensor> in;
  in.emplace_back(graph::TensorShape({1, 1}), std::vector<float>{1.0f});
  const auto out = exec.Run(in);
  const auto sigmoid = [](double v) { return 1.0 / (1.0 + std::exp(-v)); };
  const double cell = sigmoid(1.0) * std::tanh(3.0);
  const double expect = sigmoid(4.0) * std::tanh(cell);
  EXPECT_NEAR(out[0].data()[0], expect, 1e-5);
}

TEST(Lstm, StatePropagatesAcrossSteps) {
  // With recurrent weights non-zero, identical inputs give different
  // outputs at successive steps (state is carried).
  graph::GraphBuilder b("t");
  graph::TensorId x = b.Input("in", {3, 1});
  b.MarkOutput(b.Lstm(x, 1, "l"));
  const graph::Graph g = std::move(b).Build();
  infer::WeightStore w;
  w.Put("l/wx", infer::Tensor(graph::TensorShape({4, 1}),
                              {1.0f, 1.0f, 1.0f, 1.0f}));
  w.Put("l/wh", infer::Tensor(graph::TensorShape({4, 1}),
                              {1.0f, 1.0f, 1.0f, 1.0f}));
  w.Put("l/b",
        infer::Tensor(graph::TensorShape({4}), std::vector<float>(4, 0.0f)));
  const infer::Executor exec(g, w);
  std::vector<infer::Tensor> in;
  in.emplace_back(graph::TensorShape({3, 1}),
                  std::vector<float>{1.0f, 1.0f, 1.0f});
  const auto out = exec.Run(in);
  EXPECT_NE(out[0].data()[0], out[0].data()[1]);
  EXPECT_NE(out[0].data()[1], out[0].data()[2]);
}

// ---- RNN-T model ----

TEST(Rnnt, FullModelShapes) {
  const models::RnntConfig cfg;
  const graph::Graph g = models::BuildMobileRnnt(cfg);
  EXPECT_EQ(g.tensor(g.output_ids()[0]).shape,
            graph::TensorShape({cfg.frames / 2, cfg.vocab_size}));
  EXPECT_GT(g.ParameterCount(), 10'000'000);
}

TEST(Rnnt, MiniModelRuns) {
  const models::RnntConfig cfg = models::MiniRnntConfig();
  const graph::Graph g = models::BuildMobileRnnt(cfg);
  const infer::WeightStore w = infer::InitializeWeights(g, 7);
  const infer::Executor exec(g, w);
  infer::Tensor in(graph::TensorShape({cfg.frames, cfg.feature_dim}));
  Rng rng(1);
  for (auto& v : in.values()) v = static_cast<float>(rng.NextGaussian());
  const std::vector<infer::Tensor> inputs{in};
  const auto out = exec.Run(inputs);
  EXPECT_EQ(out[0].shape(),
            graph::TensorShape({cfg.frames / 2, cfg.vocab_size}));
}

TEST(Rnnt, RejectsBadTimeReduction) {
  models::RnntConfig cfg = models::MiniRnntConfig();
  cfg.time_reduction_after = cfg.encoder_layers;  // outside the stack
  EXPECT_THROW((void)models::BuildMobileRnnt(cfg), CheckError);
  cfg = models::MiniRnntConfig();
  cfg.frames = 31;  // odd
  EXPECT_THROW((void)models::BuildMobileRnnt(cfg), CheckError);
}

TEST(GreedyCtc, CollapsesRepeatsAndDropsBlanks) {
  // frames x vocab(3): argmax sequence 1,1,0,2,2,1 -> tokens 1,2,1.
  infer::Tensor logits(graph::TensorShape({6, 3}));
  const int argmax[] = {1, 1, 0, 2, 2, 1};
  for (int f = 0; f < 6; ++f)
    logits.data()[f * 3 + argmax[f]] = 5.0f;
  const std::vector<int> tokens = models::GreedyCtcDecode(logits);
  EXPECT_EQ(tokens, (std::vector<int>{1, 2, 1}));
}

TEST(GreedyCtc, BlankSeparatedRepeatsKept) {
  // 1, blank, 1 -> two separate 1 tokens.
  infer::Tensor logits(graph::TensorShape({3, 2}));
  logits.data()[0 * 2 + 1] = 5.0f;
  logits.data()[1 * 2 + 0] = 5.0f;
  logits.data()[2 * 2 + 1] = 5.0f;
  EXPECT_EQ(models::GreedyCtcDecode(logits), (std::vector<int>{1, 1}));
}

// ---- WER ----

TEST(Wer, EditDistanceKnownValues) {
  const std::vector<int> a{1, 2, 3};
  EXPECT_EQ(metrics::EditDistance(a, a), 0u);
  EXPECT_EQ(metrics::EditDistance(a, std::vector<int>{1, 2}), 1u);
  EXPECT_EQ(metrics::EditDistance(a, std::vector<int>{1, 9, 3}), 1u);
  EXPECT_EQ(metrics::EditDistance(a, std::vector<int>{}), 3u);
  EXPECT_EQ(metrics::EditDistance(std::vector<int>{}, a), 3u);
  EXPECT_EQ(metrics::EditDistance(std::vector<int>{3, 2, 1}, a), 2u);
}

TEST(Wer, RateNormalizedByReferenceLength) {
  const std::vector<std::vector<int>> preds{{1, 2, 3, 4}};
  const std::vector<std::vector<int>> refs{{1, 2, 3, 5}};
  EXPECT_DOUBLE_EQ(metrics::WordErrorRate(preds, refs), 0.25);
}

TEST(Wer, PerfectMatchIsZero) {
  const std::vector<std::vector<int>> seqs{{1, 2}, {3}};
  EXPECT_DOUBLE_EQ(metrics::WordErrorRate(seqs, seqs), 0.0);
}

// ---- speech dataset ----

TEST(SpeechDataset, Fp32ScoresHighAgainstOwnReferences) {
  const models::RnntConfig cfg = models::MiniRnntConfig();
  const graph::Graph g = models::BuildMobileRnnt(cfg);
  const infer::WeightStore w = infer::InitializeWeights(g, 7);
  datasets::SpeechDatasetConfig dc;
  dc.num_samples = 16;
  const datasets::SpeechDataset ds(g, w, cfg, dc);
  const infer::Executor fp32(g, w);
  std::vector<std::vector<infer::Tensor>> outs;
  for (std::size_t i = 0; i < ds.size(); ++i)
    outs.push_back(fp32.Run(ds.InputsFor(i)));
  const double score = ds.ScoreOutputs(outs);
  EXPECT_GT(score, 0.8);
  EXPECT_LT(score, 1.0);  // corruption makes FP32 imperfect
}

TEST(SpeechDataset, ReferencesNeverContainBlank) {
  const models::RnntConfig cfg = models::MiniRnntConfig();
  const graph::Graph g = models::BuildMobileRnnt(cfg);
  const infer::WeightStore w = infer::InitializeWeights(g, 7);
  datasets::SpeechDatasetConfig dc;
  dc.num_samples = 8;
  const datasets::SpeechDataset ds(g, w, cfg, dc);
  for (std::size_t i = 0; i < ds.size(); ++i)
    for (int tok : ds.ReferenceFor(i)) {
      EXPECT_GT(tok, 0);
      EXPECT_LT(tok, static_cast<int>(cfg.vocab_size));
    }
}

TEST(SpeechDataset, InputsDeterministic) {
  const models::RnntConfig cfg = models::MiniRnntConfig();
  const graph::Graph g = models::BuildMobileRnnt(cfg);
  const infer::WeightStore w = infer::InitializeWeights(g, 7);
  datasets::SpeechDatasetConfig dc;
  dc.num_samples = 4;
  const datasets::SpeechDataset ds(g, w, cfg, dc);
  const auto a = ds.InputsFor(2);
  const auto b = ds.InputsFor(2);
  for (std::size_t i = 0; i < a[0].size(); ++i)
    EXPECT_EQ(a[0].data()[i], b[0].data()[i]);
}


// ---- super-resolution extension ----

TEST(SuperRes, OutputShapeDoublesResolution) {
  const graph::Graph g =
      models::BuildSuperResolution(models::ModelScale::kMini);
  EXPECT_EQ(g.tensor(g.output_ids()[0]).shape,
            graph::TensorShape({1, 32, 32, 3}));
}

TEST(SuperRes, PrototypeStaysNearBilinearBaseline) {
  const models::SuperResConfig cfg = models::MiniSuperResConfig();
  const graph::Graph g = models::BuildSuperResolution(cfg);
  const infer::WeightStore w = models::InitializeSuperResWeights(g, 7);
  datasets::SuperResDatasetConfig dc;
  dc.lr_size = cfg.lr_size;
  dc.num_samples = 8;
  const datasets::SuperResDataset ds(dc);
  const infer::Executor exec(g, w);
  std::vector<std::vector<infer::Tensor>> outs;
  std::vector<std::vector<infer::Tensor>> base;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    outs.push_back(exec.Run(ds.InputsFor(i)));
    std::vector<infer::Tensor> b;
    b.push_back(datasets::ResizeBilinear(ds.InputsFor(i)[0], 32, 32));
    base.push_back(std::move(b));
  }
  const double model_psnr = ds.MeanPsnrDb(outs);
  const double base_psnr = ds.MeanPsnrDb(base);
  EXPECT_GT(model_psnr, base_psnr - 4.0);  // small residual perturbation
  EXPECT_GT(model_psnr, 20.0);
}

TEST(SuperRes, FullModelIsHeavyweight) {
  // ~10x classification compute (the paper's heavy-weight end, §3.1).
  const graph::GraphCost sr = graph::AnalyzeGraph(
      models::BuildSuperResolution(models::ModelScale::kFull));
  EXPECT_GT(sr.TotalGMacs(), 5.0);
}

TEST(Psnr, KnownValues) {
  infer::Tensor a(graph::TensorShape({4}), {0.0f, 0.5f, 1.0f, 0.25f});
  EXPECT_TRUE(std::isinf(metrics::Psnr(a, a)));
  infer::Tensor b = a;
  for (auto& v : b.values()) v += 0.1f;
  // MSE = 0.01 -> PSNR = 20 dB at peak 1.
  EXPECT_NEAR(metrics::Psnr(a, b), 20.0, 0.1);
  EXPECT_NEAR(metrics::MeanSquaredError(a, b), 0.01, 1e-6);
}

TEST(Psnr, ShapeMismatchThrows) {
  infer::Tensor a(graph::TensorShape({4}));
  infer::Tensor b(graph::TensorShape({5}));
  EXPECT_THROW((void)metrics::Psnr(a, b), CheckError);
}

// ---- battery model ----

TEST(Battery, DutyCycledPower) {
  soc::WorkloadDraw w;
  w.energy_per_inference_j = 0.01;
  w.inferences_per_second = 50.0;
  EXPECT_DOUBLE_EQ(soc::AveragePowerWatts(w), 0.5);
}

TEST(Battery, BackToBackPowerUsesLatency) {
  soc::WorkloadDraw w;
  w.energy_per_inference_j = 0.004;
  w.latency_s = 0.002;  // 2 W sustained
  EXPECT_DOUBLE_EQ(soc::AveragePowerWatts(w), 2.0);
}

TEST(Battery, HoursAndInferencesConsistent) {
  soc::BatterySpec battery;
  battery.capacity_wh = 10.0;
  battery.baseline_power_w = 0.0;
  soc::WorkloadDraw w;
  w.energy_per_inference_j = 1.0;
  w.inferences_per_second = 1.0;  // 1 W -> 10 hours -> 36000 inferences
  EXPECT_NEAR(soc::HoursOfOperation(battery, w), 10.0, 1e-9);
  EXPECT_NEAR(soc::InferencesPerCharge(battery, w), 36000.0, 1e-6);
}

TEST(Battery, RejectsDegenerateInputs) {
  soc::WorkloadDraw w;  // back-to-back but no latency
  w.energy_per_inference_j = 1.0;
  EXPECT_THROW((void)soc::AveragePowerWatts(w), CheckError);
}

// ---- Apple A14 / Core ML ----

TEST(AppleA14, ChipsetWellFormed) {
  const soc::ChipsetDesc c = soc::AppleA14();
  EXPECT_TRUE(c.HasEngine("ane"));
  EXPECT_TRUE(c.HasEngine("gpu"));
  EXPECT_TRUE(c.HasEngine("cpu"));
  EXPECT_GT(c.Engine("ane").peak_gmacs_fp16, 0.0);
}

TEST(AppleA14, CoreMlPolicyShapes) {
  const backends::SubmissionConfig nlp = backends::GetSubmission(
      soc::AppleA14(), models::TaskType::kQuestionAnswering,
      models::SuiteVersion::kV1_0);
  EXPECT_EQ(nlp.numerics, DataType::kFloat16);
  EXPECT_EQ(nlp.framework.name, "Core ML");
  EXPECT_EQ(nlp.single_stream.engines.front(), "ane");
  const backends::SubmissionConfig ic = backends::GetSubmission(
      soc::AppleA14(), models::TaskType::kImageClassification,
      models::SuiteVersion::kV1_0);
  EXPECT_EQ(ic.offline_replicas.size(), 2u);
}

// ---- elementwise fusion ----

TEST(Fusion, VendorFusionRemovesElementwiseDispatch) {
  graph::GraphBuilder b("t");
  graph::TensorId x = b.Input("in", {1, 8, 8, 4});
  graph::TensorId y = b.Conv2d(x, 4, 3, 1);
  y = b.Add(x, y);
  y = b.Activate(y, graph::Activation::kRelu);
  b.MarkOutput(y);
  const graph::Graph g = std::move(b).Build();

  soc::ChipsetDesc chip = soc::Dimensity1100();
  soc::ExecutionPolicy p;
  p.engines = {"apu"};
  soc::RuntimeOverheads fused;
  fused.fuse_elementwise = true;
  fused.copy_boundary_tensors = false;
  soc::RuntimeOverheads unfused = fused;
  unfused.fuse_elementwise = false;

  const double t_fused =
      soc::Compile(g, DataType::kInt8, chip, p, fused).LatencySeconds();
  const double t_unfused =
      soc::Compile(g, DataType::kInt8, chip, p, unfused).LatencySeconds();
  // Exactly two elementwise dispatches saved.
  const double per_layer =
      chip.Engine("apu").per_layer_overhead_us * 1e-6;
  EXPECT_NEAR(t_unfused - t_fused, 2 * per_layer, 1e-9);
}

TEST(Fusion, VendorSdkEnablesItNnapiDoesNot) {
  EXPECT_TRUE(backends::VendorSdkTraits("x").fuses_elementwise);
  EXPECT_FALSE(backends::NnapiTraits("x").fuses_elementwise);
  EXPECT_TRUE(backends::OpenVinoTraits().fuses_elementwise);
}

// ---- stepped governor ----

TEST(Governor, SteppedQuantizesToLadder) {
  soc::ThermalParams p;
  p.governor = soc::GovernorMode::kStepped;
  p.governor_steps = 4;
  soc::ThermalModel linear{soc::ThermalParams{}};
  soc::ThermalModel stepped{p};
  // Heat both to ~30% into the throttle band.
  const double target =
      p.throttle_start_c + 0.3 * (p.throttle_limit_c - p.throttle_start_c);
  const double power = (target - p.ambient_c) / p.resistance_c_per_w;
  linear.Step(power, 1e6);
  stepped.Step(power, 1e6);
  // Stepped rounds the 30% excursion up to the 50% trip point.
  const double expect_stepped = 1.0 - 0.5 * (1.0 - p.min_throttle_factor);
  EXPECT_NEAR(stepped.ThrottleFactor(), expect_stepped, 0.02);
  EXPECT_GT(linear.ThrottleFactor(), stepped.ThrottleFactor());
}

TEST(Governor, SteppedAgreesAtExtremes) {
  soc::ThermalParams p;
  p.governor = soc::GovernorMode::kStepped;
  soc::ThermalModel t{p};
  EXPECT_DOUBLE_EQ(t.ThrottleFactor(), 1.0);  // cold
  t.Step(100.0, 1e6);                          // way past the limit
  EXPECT_DOUBLE_EQ(t.ThrottleFactor(), p.min_throttle_factor);
}

}  // namespace
}  // namespace mlpm
