// Runtime kernel dispatch (DESIGN.md §13): the registry's feature probe,
// ISA resolution and fallback; the exactness contract of every table the
// host can run (INT8 bit-identical to the scalar oracle, f32 within a
// documented tolerance); and the harness-level guarantee that a forced
// ISA flows through RunOptions into the executors, the result fields and
// the RUN007 pre-run lint.
//
// The CI matrix runs this binary with MLPM_KERNEL_ISA=scalar and =auto
// (and under an -mavx2 build); the env var picks the dispatched side of
// the harness comparison so sanitizers sweep every table.
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "harness/run_session.h"
#include "infer/executor.h"
#include "infer/int8_conv.h"
#include "infer/int8_gemm.h"
#include "infer/kernels/registry.h"
#include "infer/weights.h"
#include "models/mobilenet_edgetpu.h"
#include "models/zoo.h"

namespace mlpm {
namespace {

using infer::kernels::CpuFeatures;
using infer::kernels::KernelIsa;
using infer::kernels::KernelRegistry;
using infer::kernels::KernelTable;

std::vector<float> RandomFloats(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.NextUniform(-1.0, 1.0));
  return v;
}

std::vector<std::uint8_t> RandomBytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> v(n);
  for (auto& x : v) x = static_cast<std::uint8_t>(rng.NextBelow(256));
  return v;
}

// --- registry ---------------------------------------------------------------

TEST(KernelRegistry, ParseAndToStringRoundTrip) {
  for (const KernelIsa isa : {KernelIsa::kAuto, KernelIsa::kScalar,
                              KernelIsa::kAvx2, KernelIsa::kNeon}) {
    const auto back =
        infer::kernels::ParseKernelIsa(infer::kernels::ToString(isa));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, isa);
  }
  EXPECT_FALSE(infer::kernels::ParseKernelIsa("sse9").has_value());
  EXPECT_FALSE(infer::kernels::ParseKernelIsa("").has_value());
  EXPECT_FALSE(infer::kernels::ParseKernelIsa("AVX2").has_value());
}

TEST(KernelRegistry, ScalarIsAlwaysAvailable) {
  const KernelRegistry none(CpuFeatures{});
  EXPECT_TRUE(none.Available(KernelIsa::kAuto));
  EXPECT_TRUE(none.Available(KernelIsa::kScalar));
  EXPECT_FALSE(none.Available(KernelIsa::kAvx2));
  EXPECT_FALSE(none.Available(KernelIsa::kNeon));
}

TEST(KernelRegistry, AutoOnFeaturelessHostResolvesToScalar) {
  const KernelRegistry none(CpuFeatures{});
  EXPECT_EQ(none.Resolve(KernelIsa::kAuto), KernelIsa::kScalar);
  EXPECT_EQ(none.Select(KernelIsa::kAuto).isa, KernelIsa::kScalar);
}

TEST(KernelRegistry, ForcedUnavailableIsaFallsBackToScalar) {
  const KernelRegistry none(CpuFeatures{});
  EXPECT_EQ(none.Resolve(KernelIsa::kAvx2), KernelIsa::kScalar);
  EXPECT_EQ(none.Resolve(KernelIsa::kNeon), KernelIsa::kScalar);
  EXPECT_EQ(none.Select(KernelIsa::kAvx2).isa, KernelIsa::kScalar);
}

TEST(KernelRegistry, FeatureBitAloneIsNotEnough) {
  // A CPU feature without the matching compiled-in table (or vice versa)
  // must not select a missing kernel: availability is probe AND table.
  CpuFeatures f;
  f.avx2 = true;
  f.neon = true;
  const KernelRegistry reg(f);
#if defined(MLPM_KERNELS_HAVE_AVX2)
  EXPECT_TRUE(reg.Available(KernelIsa::kAvx2));
  EXPECT_EQ(reg.Resolve(KernelIsa::kAuto), KernelIsa::kAvx2);
  EXPECT_EQ(reg.Select(KernelIsa::kAvx2).isa, KernelIsa::kAvx2);
#else
  EXPECT_FALSE(reg.Available(KernelIsa::kAvx2));
  EXPECT_EQ(reg.Resolve(KernelIsa::kAvx2), KernelIsa::kScalar);
#endif
#if defined(MLPM_KERNELS_HAVE_NEON) && defined(__aarch64__)
  EXPECT_TRUE(reg.Available(KernelIsa::kNeon));
#else
  EXPECT_FALSE(reg.Available(KernelIsa::kNeon));
#endif
}

TEST(KernelRegistry, GlobalNeverResolvesToAuto) {
  const KernelRegistry& reg = KernelRegistry::Global();
  const KernelIsa resolved = reg.Resolve(KernelIsa::kAuto);
  EXPECT_NE(resolved, KernelIsa::kAuto);
  EXPECT_TRUE(reg.Available(resolved));
}

TEST(KernelRegistry, AvailableIsasEndsWithScalar) {
  const std::vector<KernelIsa> isas = KernelRegistry::Global().AvailableIsas();
  ASSERT_FALSE(isas.empty());
  EXPECT_EQ(isas.back(), KernelIsa::kScalar);
  for (const KernelIsa isa : isas)
    EXPECT_TRUE(KernelRegistry::Global().Available(isa));
}

// --- exactness contract -----------------------------------------------------

// INT8 GEMM accumulates in uint32 (mod 2^32): associative and commutative,
// so any SIMD reordering must reproduce the scalar oracle bit for bit —
// across random shapes that straddle every tile and remainder path, and
// random zero points.
TEST(KernelDispatch, U8GemmBitIdenticalToOracleOnEveryTable) {
  Rng rng(0xD15);
  for (const KernelIsa isa : KernelRegistry::Global().AvailableIsas()) {
    const KernelTable& table = KernelRegistry::Global().Select(isa);
    for (int trial = 0; trial < 24; ++trial) {
      const std::size_t m = 1 + rng.NextBelow(17);
      const std::size_t n = 1 + rng.NextBelow(17);
      const std::size_t k = 1 + rng.NextBelow(96);
      const auto a_zp = static_cast<std::uint8_t>(rng.NextBelow(256));
      const auto b_zp = static_cast<std::uint8_t>(rng.NextBelow(256));
      const std::vector<std::uint8_t> a = RandomBytes(m * k, 100 + trial);
      const std::vector<std::uint8_t> b = RandomBytes(n * k, 200 + trial);
      std::vector<std::int32_t> ref(m * n), got(m * n);
      infer::GemmU8U8I32Ref(a, a_zp, b, b_zp, m, n, k, ref);
      infer::GemmU8U8I32(a, a_zp, b, b_zp, m, n, k, got, table);
      EXPECT_EQ(ref, got)
          << infer::kernels::ToString(isa) << " m=" << m << " n=" << n
          << " k=" << k << " a_zp=" << int{a_zp} << " b_zp=" << int{b_zp};
    }
  }
}

// f32 SIMD kernels reassociate the k-loop and contract with FMA; the
// contract is closeness, not bit-equality.  The scalar table, which keeps
// the pre-registry arithmetic order, must stay bit-identical.
TEST(KernelDispatch, F32GemmWithinToleranceOnEveryTable) {
  Rng rng(0xF32);
  for (const KernelIsa isa : KernelRegistry::Global().AvailableIsas()) {
    const KernelTable& table = KernelRegistry::Global().Select(isa);
    for (int trial = 0; trial < 16; ++trial) {
      const std::size_t m = 1 + rng.NextBelow(13);
      const std::size_t n = 1 + rng.NextBelow(13);
      const std::size_t k = 1 + rng.NextBelow(200);
      const std::vector<float> a = RandomFloats(m * k, 300 + trial);
      const std::vector<float> b = RandomFloats(n * k, 400 + trial);
      std::vector<float> ref(m * n), got(m * n);
      infer::GemmF32Ref(a, b, m, n, k, ref);
      infer::GemmF32(a, b, m, n, k, got, table);
      const double tol =
          isa == KernelIsa::kScalar
              ? 0.0
              : 1e-5 * static_cast<double>(k);  // |values| <= 1
      for (std::size_t i = 0; i < ref.size(); ++i)
        EXPECT_LE(std::fabs(static_cast<double>(ref[i]) - got[i]), tol)
            << infer::kernels::ToString(isa) << " m=" << m << " n=" << n
            << " k=" << k << " i=" << i;
    }
  }
}

// The prepacked INT8 conv lowers to the u8 GEMM, and requantization is
// shared elementwise code — so a dispatched conv must equal the legacy
// scalar path bit for bit on every table.
TEST(KernelDispatch, Int8ConvBitIdenticalToLegacyOnEveryTable) {
  Rng rng(7);
  infer::Tensor input(graph::TensorShape({1, 9, 9, 24}));
  infer::Tensor weights(graph::TensorShape({20, 3, 3, 24}));
  infer::Tensor bias(graph::TensorShape({20}));
  for (auto& v : input.values())
    v = static_cast<float>(rng.NextUniform(-1, 1));
  for (auto& v : weights.values())
    v = static_cast<float>(rng.NextUniform(-0.5, 0.5));
  const infer::QuantizationParams in_q = infer::ChooseQuantParams(-1.0f, 1.0f);
  const infer::QuantizationParams w_q =
      infer::ChooseQuantParams(-0.5f, 0.5f);
  const infer::Tensor legacy = infer::ConvInt8NHWC(
      input, weights, bias, 1, graph::Padding::kSame, in_q, w_q);
  const infer::PackedConvWeights packed = infer::PackConvWeights(weights, w_q);

  for (const KernelIsa isa : KernelRegistry::Global().AvailableIsas()) {
    const KernelTable& table = KernelRegistry::Global().Select(isa);
    infer::ConvScratch scratch;
    const infer::Tensor out =
        infer::ConvInt8NHWC(input, packed, bias, 1, graph::Padding::kSame,
                            in_q, &scratch, nullptr, &table);
    ASSERT_EQ(out.size(), legacy.size());
    for (std::size_t i = 0; i < out.size(); ++i)
      EXPECT_EQ(out.at(i), legacy.at(i))
          << infer::kernels::ToString(isa) << " i=" << i;
  }
}

// --- executor ---------------------------------------------------------------

// Forced-scalar and dispatched executors over a real model (conv +
// depthwise + FC): same graph, same weights, outputs within f32 tolerance,
// and the executor reports the table it actually used plus non-zero
// dispatch counts for every kernel class the model contains.
TEST(KernelDispatch, ExecutorScalarVsAutoWithinTolerance) {
  const graph::Graph g =
      models::BuildMobileNetEdgeTpu(models::ModelScale::kMini);
  const infer::WeightStore w = infer::InitializeWeights(g, 7);
  const infer::Executor scalar(g, w, infer::NumericsMode::kFp32, nullptr,
                               KernelIsa::kScalar);
  const infer::Executor autod(g, w, infer::NumericsMode::kFp32, nullptr,
                              KernelIsa::kAuto);
  EXPECT_EQ(scalar.kernel_isa(), KernelIsa::kScalar);
  EXPECT_EQ(autod.kernel_isa(),
            KernelRegistry::Global().Resolve(KernelIsa::kAuto));

  infer::Tensor input(g.tensor(g.input_ids()[0]).shape);
  Rng rng(3);
  for (auto& v : input.values()) v = static_cast<float>(rng.NextDouble());
  const std::vector<infer::Tensor> inputs{input};
  const auto out_s = scalar.Run(inputs);
  const auto out_a = autod.Run(inputs);
  ASSERT_EQ(out_s.size(), out_a.size());
  for (std::size_t o = 0; o < out_s.size(); ++o) {
    ASSERT_EQ(out_s[o].size(), out_a[o].size());
    for (std::size_t i = 0; i < out_s[o].size(); ++i)
      EXPECT_NEAR(out_s[o].at(i), out_a[o].at(i), 5e-3) << "o=" << o
                                                        << " i=" << i;
  }

  const infer::KernelDispatchCounts counts = autod.dispatch_counts();
  EXPECT_GT(counts.conv2d, 0u);
  EXPECT_GT(counts.depthwise_conv2d, 0u);
  EXPECT_GT(counts.fully_connected, 0u);
}

// With the scalar table forced, the dispatched executor must reproduce the
// pre-registry arithmetic order — bit-identical to the default-constructed
// executor's output.
TEST(KernelDispatch, ForcedScalarExecutorIsBitIdenticalToItself) {
  const graph::Graph g =
      models::BuildMobileNetEdgeTpu(models::ModelScale::kMini);
  const infer::WeightStore w = infer::InitializeWeights(g, 7);
  const infer::Executor a(g, w, infer::NumericsMode::kFp32, nullptr,
                          KernelIsa::kScalar);
  const infer::Executor b(g, w, infer::NumericsMode::kFp32, nullptr,
                          KernelIsa::kScalar);
  infer::Tensor input(g.tensor(g.input_ids()[0]).shape);
  Rng rng(5);
  for (auto& v : input.values()) v = static_cast<float>(rng.NextDouble());
  const std::vector<infer::Tensor> inputs{input};
  const auto out_a = a.Run(inputs);
  const auto out_b = b.Run(inputs);
  ASSERT_EQ(out_a.size(), out_b.size());
  for (std::size_t o = 0; o < out_a.size(); ++o)
    for (std::size_t i = 0; i < out_a[o].size(); ++i)
      EXPECT_EQ(out_a[o].at(i), out_b[o].at(i));
}

// --- harness ----------------------------------------------------------------

// The CI matrix exports MLPM_KERNEL_ISA to sweep the dispatched side of
// this comparison; unset or "auto" exercises the default dispatch path.
KernelIsa DispatchedIsaUnderTest() {
  const char* env = std::getenv("MLPM_KERNEL_ISA");
  if (env == nullptr) return KernelIsa::kAuto;
  const auto isa = infer::kernels::ParseKernelIsa(env);
  return isa.value_or(KernelIsa::kAuto);
}

TEST(KernelDispatch, HarnessScalarVsDispatchedAccuracyAgree) {
  const soc::ChipsetDesc chipset = soc::CatalogV10().front();
  harness::SuiteBundles bundles;

  harness::RunOptions base;
  base.run_performance = false;
  base.run_offline = false;
  base.cooldown_s = 0.0;

  harness::RunOptions scalar = base;
  scalar.kernel_isa = KernelIsa::kScalar;
  const harness::SubmissionResult rs = harness::RunSubmission(
      chipset, models::SuiteVersion::kV1_0, bundles, scalar);

  harness::RunOptions dispatched = base;
  dispatched.kernel_isa = DispatchedIsaUnderTest();
  const harness::SubmissionResult rd = harness::RunSubmission(
      chipset, models::SuiteVersion::kV1_0, bundles, dispatched);

  const std::string resolved(infer::kernels::ToString(
      KernelRegistry::Global().Resolve(dispatched.kernel_isa)));
  ASSERT_EQ(rs.tasks.size(), rd.tasks.size());
  for (std::size_t i = 0; i < rs.tasks.size(); ++i) {
    const harness::TaskRunResult& a = rs.tasks[i];
    const harness::TaskRunResult& b = rd.tasks[i];
    EXPECT_EQ(a.kernel_isa, "scalar") << a.entry.id;
    EXPECT_EQ(b.kernel_isa, resolved) << b.entry.id;
    // Kernel tables change f32 rounding, not model quality: the scored
    // accuracy must agree closely and the quality gate identically.
    EXPECT_NEAR(a.accuracy, b.accuracy, 0.05) << a.entry.id;
    EXPECT_NEAR(a.ratio_to_fp32, b.ratio_to_fp32, 0.05) << a.entry.id;
    EXPECT_EQ(a.quality_passed, b.quality_passed) << a.entry.id;
    EXPECT_EQ(a.lint_error_count, 0u) << a.entry.id << "\n" << a.lint_log;
  }
}

TEST(KernelDispatch, ForcedUnavailableIsaLintsRun007AndFallsBack) {
  const KernelRegistry& reg = KernelRegistry::Global();
  // Whichever SIMD ISA this host lacks (x86 lacks NEON, ARM lacks AVX2;
  // a host with both compiled in and present cannot run this check).
  KernelIsa missing = KernelIsa::kAuto;
  for (const KernelIsa isa : {KernelIsa::kNeon, KernelIsa::kAvx2})
    if (!reg.Available(isa)) missing = isa;
  if (missing == KernelIsa::kAuto) GTEST_SKIP() << "every ISA is available";

  const soc::ChipsetDesc chipset = soc::CatalogV10().front();
  harness::SuiteBundles bundles;
  harness::RunOptions opts;
  opts.run_performance = false;
  opts.run_offline = false;
  opts.cooldown_s = 0.0;
  opts.kernel_isa = missing;
  const harness::SubmissionResult r = harness::RunSubmission(
      chipset, models::SuiteVersion::kV1_0, bundles, opts);
  ASSERT_FALSE(r.tasks.empty());
  for (const harness::TaskRunResult& t : r.tasks) {
    EXPECT_EQ(t.kernel_isa, "scalar") << t.entry.id;
    EXPECT_GE(t.lint_error_count, 1u) << t.entry.id;
    EXPECT_NE(t.lint_log.find("RUN007"), std::string::npos)
        << t.entry.id << "\n" << t.lint_log;
    // Report mode: the diagnostic is recorded but the task still runs.
    EXPECT_GT(t.accuracy_sample_count, 0u) << t.entry.id;
  }
}

}  // namespace
}  // namespace mlpm
