#include "metrics/map.h"

#include <algorithm>
#include <set>

#include "common/check.h"

namespace mlpm::metrics {
namespace {

struct RankedDet {
  float score;
  std::size_t image;
  const models::Detection* det;
};

}  // namespace

double AveragePrecision(std::span<const ImageDetections> detections,
                        std::span<const ImageGroundTruth> ground_truth,
                        int class_id, double iou_threshold) {
  Expects(detections.size() == ground_truth.size(),
          "detections / ground truth image count mismatch");

  // Pool and rank this class's detections across all images.
  std::vector<RankedDet> ranked;
  for (std::size_t img = 0; img < detections.size(); ++img)
    for (const auto& d : detections[img])
      if (d.class_id == class_id) ranked.push_back({d.score, img, &d});
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedDet& a, const RankedDet& b) {
              return a.score > b.score;
            });

  std::size_t total_gt = 0;
  for (const auto& g : ground_truth)
    for (const auto& gt : g)
      if (gt.class_id == class_id) ++total_gt;
  if (total_gt == 0) return 0.0;  // class absent; caller skips it

  // Greedy matching: each GT may match at most one detection.
  std::vector<std::vector<bool>> gt_used(ground_truth.size());
  for (std::size_t i = 0; i < ground_truth.size(); ++i)
    gt_used[i].assign(ground_truth[i].size(), false);

  std::vector<bool> is_tp(ranked.size(), false);
  for (std::size_t r = 0; r < ranked.size(); ++r) {
    const auto& rd = ranked[r];
    const auto& gts = ground_truth[rd.image];
    double best_iou = 0.0;
    std::size_t best_gt = gts.size();
    for (std::size_t g = 0; g < gts.size(); ++g) {
      if (gts[g].class_id != class_id || gt_used[rd.image][g]) continue;
      const double iou = rd.det->box.IoU(gts[g].box);
      if (iou > best_iou) {
        best_iou = iou;
        best_gt = g;
      }
    }
    if (best_gt < gts.size() && best_iou >= iou_threshold) {
      is_tp[r] = true;
      gt_used[rd.image][best_gt] = true;
    }
  }

  // Precision/recall curve and 101-point interpolated AP.
  std::vector<double> precision(ranked.size());
  std::vector<double> recall(ranked.size());
  std::size_t tp = 0;
  for (std::size_t r = 0; r < ranked.size(); ++r) {
    if (is_tp[r]) ++tp;
    precision[r] = static_cast<double>(tp) / static_cast<double>(r + 1);
    recall[r] = static_cast<double>(tp) / static_cast<double>(total_gt);
  }
  // Make precision monotonically non-increasing from the right.
  for (std::size_t r = precision.size(); r-- > 1;)
    precision[r - 1] = std::max(precision[r - 1], precision[r]);

  double ap = 0.0;
  std::size_t idx = 0;
  for (int i = 0; i <= 100; ++i) {
    const double r_level = static_cast<double>(i) / 100.0;
    while (idx < recall.size() && recall[idx] < r_level) ++idx;
    ap += idx < precision.size() ? precision[idx] : 0.0;
  }
  return ap / 101.0;
}

double MeanAveragePrecision(std::span<const ImageDetections> detections,
                            std::span<const ImageGroundTruth> ground_truth,
                            double iou_threshold) {
  std::set<int> classes;
  for (const auto& g : ground_truth)
    for (const auto& gt : g) classes.insert(gt.class_id);
  if (classes.empty()) return 0.0;
  double sum = 0.0;
  for (int c : classes)
    sum += AveragePrecision(detections, ground_truth, c, iou_threshold);
  return sum / static_cast<double>(classes.size());
}

double CocoMap(std::span<const ImageDetections> detections,
               std::span<const ImageGroundTruth> ground_truth) {
  double sum = 0.0;
  int n = 0;
  for (double t = 0.50; t < 0.96; t += 0.05) {
    sum += MeanAveragePrecision(detections, ground_truth, t);
    ++n;
  }
  return sum / n;
}

}  // namespace mlpm::metrics
