// Operator vocabulary of the graph IR.
//
// The set covers what the five MLPerf Mobile reference models need (paper
// §3.2): inverted-bottleneck CNNs (MobileNetEdgeTPU, MobileNet v2, MobileDet),
// SSDLite detection heads, DeepLab v3+ ASPP/decoder, and MobileBERT
// transformer blocks.  Attention is a fused op — the executor and the cost
// model both understand its internal structure, which keeps the IR free of
// generic transpose/batched-matmul plumbing the models don't otherwise need.
#pragma once

#include <cstdint>
#include <string_view>
#include <variant>
#include <vector>

namespace mlpm::graph {

enum class OpType : std::uint8_t {
  kInput,
  kConv2d,
  kDepthwiseConv2d,
  kFullyConnected,
  kAdd,            // elementwise, used for residual connections
  kMul,            // elementwise
  kAvgPool,
  kMaxPool,
  kGlobalAvgPool,
  kResizeBilinear,
  kConcat,
  kReshape,
  kSoftmax,
  kActivation,     // standalone activation
  kLayerNorm,
  kEmbeddingLookup,
  kMultiHeadAttention,
  kLstm,  // fused unidirectional LSTM layer over a sequence
  // A materialized compile-time value: no activation inputs, one weight
  // tensor holding the value, output copies it verbatim.  Produced by the
  // transform layer's constant-folding pass (src/transform); reference
  // models never contain one.  Appended last so existing serialized graphs
  // and fingerprints are unaffected.
  kConstant,
};

// Activations that may be fused into conv / fc nodes (TFLite-style).
enum class Activation : std::uint8_t {
  kNone,
  kRelu,
  kRelu6,
  kSigmoid,
  kTanh,
  kGelu,
};

// Coarse operator classes the SoC cost model keys its efficiency tables on.
// (A DSP is great at dense INT8 conv but poor at attention; a GPU is the
// reverse — paper §7.5.)
enum class OpClass : std::uint8_t {
  kConvDense,      // regular convolution / pointwise 1x1
  kConvDepthwise,  // depthwise convolution (bandwidth-bound)
  kGemm,           // fully connected / attention projections
  kAttention,      // softmax(QK^T)V core
  kElementwise,    // add/mul/activation/norm/softmax/resize/pool
  kMemory,         // reshape/concat/embedding (pure data movement)
};

enum class Padding : std::uint8_t { kSame, kValid };

struct Conv2dAttrs {
  std::int64_t out_channels = 0;
  int kernel_h = 1;
  int kernel_w = 1;
  int stride = 1;
  int dilation = 1;
  Padding padding = Padding::kSame;
  Activation activation = Activation::kNone;
};

struct DepthwiseConv2dAttrs {
  int kernel_h = 3;
  int kernel_w = 3;
  int stride = 1;
  int dilation = 1;
  Padding padding = Padding::kSame;
  Activation activation = Activation::kNone;
};

struct FullyConnectedAttrs {
  std::int64_t out_features = 0;
  Activation activation = Activation::kNone;
};

struct PoolAttrs {
  int kernel = 2;
  int stride = 2;
  Padding padding = Padding::kValid;
};

struct ResizeAttrs {
  std::int64_t out_h = 0;
  std::int64_t out_w = 0;
};

struct ConcatAttrs {
  int axis = -1;  // negative axes count from the back
};

struct ReshapeAttrs {
  std::vector<std::int64_t> new_dims;
};

struct SoftmaxAttrs {
  int axis = -1;
};

struct ActivationAttrs {
  Activation activation = Activation::kRelu;
};

struct LayerNormAttrs {
  double epsilon = 1e-6;
};

struct EmbeddingAttrs {
  std::int64_t vocab_size = 0;
  std::int64_t embed_dim = 0;
};

struct AttentionAttrs {
  int num_heads = 1;
  std::int64_t head_dim = 0;  // per-head dimension; model dim = heads*head_dim
};

struct LstmAttrs {
  std::int64_t hidden_dim = 0;
};

struct EmptyAttrs {};

using OpAttrs =
    std::variant<EmptyAttrs, Conv2dAttrs, DepthwiseConv2dAttrs,
                 FullyConnectedAttrs, PoolAttrs, ResizeAttrs, ConcatAttrs,
                 ReshapeAttrs, SoftmaxAttrs, ActivationAttrs, LayerNormAttrs,
                 EmbeddingAttrs, AttentionAttrs, LstmAttrs>;

[[nodiscard]] std::string_view ToString(OpType t);
[[nodiscard]] std::string_view ToString(OpClass c);
[[nodiscard]] std::string_view ToString(Activation a);

// The coarse class an op belongs to for cost-model purposes.  Depthwise and
// dense convolutions are split because their arithmetic intensity differs by
// an order of magnitude.
[[nodiscard]] OpClass ClassOf(OpType t);

}  // namespace mlpm::graph
