// Extension — iOS support (paper App. E: iOS results were expected shortly
// after publication).  Runs the v1.0 suite on the Apple A14 / Core ML stack
// beside the Android v1.0 submissions.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"

int main() {
  using namespace mlpm;
  const models::SuiteVersion version = models::SuiteVersion::kV1_0;

  std::vector<soc::ChipsetDesc> chips = {
      soc::Dimensity1100(), soc::Exynos2100(), soc::Snapdragon888(),
      soc::AppleA14()};

  TextTable t("iOS extension — v1.0 single-stream p90 latency, phones + A14");
  t.SetHeader({"Chipset", "Stack", "classification", "detection",
               "segmentation", "NLP"});
  for (const soc::ChipsetDesc& chip : chips) {
    const backends::SubmissionConfig ic = backends::GetSubmission(
        chip, models::TaskType::kImageClassification, version);
    std::vector<std::string> row{chip.name, ic.framework.name};
    for (const models::TaskType task :
         {models::TaskType::kImageClassification,
          models::TaskType::kObjectDetection,
          models::TaskType::kImageSegmentation,
          models::TaskType::kQuestionAnswering}) {
      const benchutil::PerfOutcome p =
          benchutil::RunSingleStream(chip, version, task);
      row.push_back(FormatMs(p.p90_latency_s));
    }
    t.AddRow(std::move(row));
  }
  std::printf("%s", t.Render().c_str());
  std::printf(
      "\nthe A14's Core ML stack brings \"additional hardware and software\n"
      "diversity\" (App. E): a natively-FP16 neural engine changes the\n"
      "numerics trade-off on the NLP task.\n");
  return 0;
}
