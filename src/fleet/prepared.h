// The immutable per-config artifact fleet shards share: a vendor submission
// and its compiled single-stream plan (prepacked weights live inside the
// compiled segments).  Built once per distinct (version, task, chipset)
// through infer::PreparedCache and handed to shards as
// shared_ptr<const PreparedShardModel> — fleet memory scales with distinct
// configs, not devices (DESIGN.md §16).
#pragma once

#include "backends/vendor_policy.h"
#include "soc/compile.h"

namespace mlpm::fleet {

struct PreparedShardModel {
  backends::SubmissionConfig sub;
  soc::CompiledModel single_stream;
};

}  // namespace mlpm::fleet
