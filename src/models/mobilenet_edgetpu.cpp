#include "models/mobilenet_edgetpu.h"

#include <vector>

namespace mlpm::models {

using graph::Activation;
using graph::GraphBuilder;
using graph::TensorId;

namespace {

struct BlockSpec {
  std::int64_t out_ch;
  int expand;
  int stride;
  int kernel;
  bool fused;
  int repeat;
};

}  // namespace

ClassifierConfig MiniClassifierConfig() {
  return ClassifierConfig{/*input_size=*/32, /*num_classes=*/16};
}

graph::Graph BuildMobileNetEdgeTpu(ModelScale scale) {
  return BuildMobileNetEdgeTpu(
      scale == ModelScale::kFull ? ClassifierConfig{} : MiniClassifierConfig(),
      scale);
}

graph::Graph BuildMobileNetEdgeTpu(const ClassifierConfig& cfg,
                                   ModelScale scale) {
  GraphBuilder b("mobilenet_edgetpu");
  TensorId x = b.Input("images",
                       {1, cfg.input_size, cfg.input_size, 3});

  // Stage list follows the published MobileNetEdgeTPU search result: fused
  // IBNs through the 48-channel stage, depthwise IBNs after.
  std::vector<BlockSpec> blocks;
  std::int64_t stem_ch = 0;
  std::int64_t head_ch = 0;
  if (scale == ModelScale::kFull) {
    stem_ch = 32;
    head_ch = 1280;
    blocks = {
        {16, 1, 1, 3, true, 1},   // stage 1
        {32, 8, 2, 3, true, 1},  {32, 4, 1, 3, true, 3},    // stage 2
        {48, 8, 2, 3, true, 1},  {48, 4, 1, 3, true, 3},    // stage 3
        {96, 8, 2, 3, false, 1}, {96, 4, 1, 3, false, 3},   // stage 4
        {96, 8, 1, 3, false, 1}, {96, 4, 1, 3, false, 1},   // stage 5 head
        {160, 8, 2, 5, false, 1}, {160, 4, 1, 5, false, 3},  // stage 6
        {192, 8, 1, 5, false, 1},                            // stage 7
    };
  } else {
    stem_ch = 8;
    head_ch = 64;
    blocks = {
        {8, 1, 1, 3, true, 1},
        {16, 4, 2, 3, true, 2},
        {24, 4, 2, 3, false, 2},
        {32, 4, 2, 3, false, 2},
    };
  }

  x = b.Conv2d(x, stem_ch, 3, 2, Activation::kRelu6, graph::Padding::kSame, 1,
               "stem");
  for (const BlockSpec& s : blocks)
    for (int r = 0; r < s.repeat; ++r)
      x = InvertedBottleneck(b, x, s.out_ch, s.expand,
                             r == 0 ? s.stride : 1, s.kernel, s.fused);

  x = b.Conv2d(x, head_ch, 1, 1, Activation::kRelu6, graph::Padding::kSame, 1,
               "head_conv");
  x = b.GlobalAvgPool(x, "gap");
  x = b.Reshape(x, {1, head_ch}, "flatten");
  x = b.FullyConnected(x, cfg.num_classes, Activation::kNone, "logits");
  b.MarkOutput(x);
  return std::move(b).Build();
}

}  // namespace mlpm::models
