# Empty dependencies file for mlpm_quant.
# This may be replaced when dependencies are built.
