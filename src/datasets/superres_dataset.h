// Super-resolution data set: the one task whose ground truth needs no
// teacher — HR images are generated, LR inputs are their bilinear
// downsamples, and the score is mean PSNR against the true HR image
// (normalized to [0,1] as PSNR/50 for the TaskDataset contract).
#pragma once

#include <cstdint>
#include <vector>

#include "datasets/task_dataset.h"

namespace mlpm::datasets {

struct SuperResDatasetConfig {
  std::size_t num_samples = 32;
  std::int64_t lr_size = 16;
  int upscale = 2;
  std::uint64_t seed = 0x5B;
};

class SuperResDataset final : public TaskDataset {
 public:
  explicit SuperResDataset(SuperResDatasetConfig config);

  [[nodiscard]] std::size_t size() const override {
    return cfg_.num_samples;
  }
  [[nodiscard]] std::vector<infer::Tensor> InputsFor(
      std::size_t index) const override;
  [[nodiscard]] double ScoreOutputs(
      std::span<const std::vector<infer::Tensor>> outputs) const override;
  [[nodiscard]] std::string_view metric_name() const override {
    return "PSNR/50";
  }
  [[nodiscard]] std::vector<infer::Tensor> CalibrationInputsFor(
      std::size_t index) const override;

  // Mean PSNR in dB (the un-normalized metric).
  [[nodiscard]] double MeanPsnrDb(
      std::span<const std::vector<infer::Tensor>> outputs) const;

  [[nodiscard]] infer::Tensor HighResFor(std::uint64_t name_space,
                                         std::size_t index) const;

 private:
  SuperResDatasetConfig cfg_;
};

}  // namespace mlpm::datasets
