#include "models/zoo.h"

#include "models/deeplab.h"
#include "models/mobilebert.h"
#include "models/mobilenet_edgetpu.h"
#include "models/ssd.h"

namespace mlpm::models {

std::vector<BenchmarkEntry> SuiteFor(SuiteVersion v) {
  std::vector<BenchmarkEntry> suite;
  suite.push_back(BenchmarkEntry{
      "image_classification", TaskType::kImageClassification,
      "MobileNetEdgeTPU", "ImageNet 2012", "Top-1", 224,
      /*quality_target=*/0.98, /*fp32=*/0.7619, /*params=*/4'000'000});
  if (v == SuiteVersion::kV0_7) {
    suite.push_back(BenchmarkEntry{
        "object_detection", TaskType::kObjectDetection, "SSD-MobileNet v2",
        "COCO 2017", "mAP", 300,
        /*quality_target=*/0.93, /*fp32=*/0.244, /*params=*/17'000'000});
  } else {
    suite.push_back(BenchmarkEntry{
        "object_detection", TaskType::kObjectDetection, "MobileDET-SSD",
        "COCO 2017", "mAP", 320,
        /*quality_target=*/0.95, /*fp32=*/0.285, /*params=*/4'000'000});
  }
  suite.push_back(BenchmarkEntry{
      "image_segmentation", TaskType::kImageSegmentation,
      "DeepLab v3+ (MobileNet v2)", "ADE20K (32 classes)", "mIoU", 512,
      /*quality_target=*/0.97, /*fp32=*/0.548, /*params=*/2'000'000});
  suite.push_back(BenchmarkEntry{
      "question_answering", TaskType::kQuestionAnswering, "MobileBERT",
      "Mini SQuAD v1.1 dev", "F1", 384,
      /*quality_target=*/0.93, /*fp32=*/0.9398, /*params=*/25'000'000});
  return suite;
}

graph::Graph BuildReferenceGraph(const BenchmarkEntry& e, SuiteVersion v,
                                 ModelScale scale) {
  switch (e.task) {
    case TaskType::kImageClassification:
      return BuildMobileNetEdgeTpu(scale);
    case TaskType::kObjectDetection:
      return v == SuiteVersion::kV0_7 ? BuildSsdMobileNetV2(scale).graph
                                      : BuildMobileDetSsd(scale).graph;
    case TaskType::kImageSegmentation:
      return BuildDeepLabV3Plus(scale);
    case TaskType::kQuestionAnswering:
      return BuildMobileBert(scale);
  }
  Expects(false, "unknown task");
  return BuildMobileNetEdgeTpu(scale);  // unreachable
}

}  // namespace mlpm::models
