#include "infer/tile_planner.h"

#include <algorithm>
#include <variant>

#include "common/check.h"
#include "graph/bounds.h"
#include "infer/memory_plan.h"

namespace mlpm::infer {
namespace {

using graph::Graph;
using graph::Node;
using graph::OpType;
using graph::TensorId;

// A segment must split into at least this many tiles (when its output has
// that many rows) so tiles can serve as the thread pool's parallel grain.
constexpr std::int64_t kMinTilesPerSegment = 8;

std::size_t AlignUp(std::size_t n) {
  return (n + kArenaAlignElements - 1) / kArenaAlignElements *
         kArenaAlignElements;
}

// How many nodes read each tensor, with graph outputs pinned (they must be
// fully materialized, so they can never be segment-interior).
std::vector<int> ConsumerCounts(const Graph& g) {
  std::vector<int> counts(g.tensors().size(), 0);
  for (const Node& n : g.nodes())
    for (const TensorId id : n.inputs) ++counts[static_cast<std::size_t>(id)];
  for (const TensorId id : g.output_ids()) ++counts[static_cast<std::size_t>(id)];
  return counts;
}

bool IsConvLike(OpType op) {
  return op == OpType::kConv2d || op == OpType::kDepthwiseConv2d;
}

// Input rows one node needs to produce `rows_out` of its output, ignoring
// crop clamping (clamping only shrinks, so this is the worst case).
std::int64_t RowsIn(const Node& n, std::int64_t rows_out,
                    std::int64_t in_height, std::int64_t out_height) {
  int kernel = 1, stride = 1, dilation = 1;
  switch (n.op) {
    case OpType::kConv2d: {
      const auto& a = std::get<graph::Conv2dAttrs>(n.attrs);
      kernel = a.kernel_h;
      stride = a.stride;
      dilation = a.dilation;
      break;
    }
    case OpType::kDepthwiseConv2d: {
      const auto& a = std::get<graph::DepthwiseConv2dAttrs>(n.attrs);
      kernel = a.kernel_h;
      stride = a.stride;
      dilation = a.dilation;
      break;
    }
    case OpType::kAvgPool:
    case OpType::kMaxPool: {
      const auto& a = std::get<graph::PoolAttrs>(n.attrs);
      kernel = a.kernel;
      stride = a.stride;
      break;
    }
    case OpType::kResizeBilinear:
      // Half-pixel bilinear: a band of `rows_out` output rows spans at most
      // floor((rows_out - 1) * in/out) + 1 source starts plus the second
      // tap of the last row (bounds.cpp ResizeSpan can never exceed this).
      return std::min(in_height,
                      (rows_out - 1) * in_height / out_height + 3);
    default:
      return std::min(rows_out, in_height);  // elementwise: same rows
  }
  const std::int64_t eff_k =
      static_cast<std::int64_t>(dilation) * (kernel - 1) + 1;
  return std::min(in_height, (rows_out - 1) * stride + eff_k);
}

// Per-interior worst-case slab rows for an output band of `tile_rows`,
// back-propagated through the chain.  `rows[j]` is for the output of node
// `first + j`, j in [0, last - first).
std::vector<std::int64_t> SlabRows(const Graph& g, std::int32_t first,
                                   std::int32_t last, std::int64_t tile_rows) {
  std::vector<std::int64_t> rows(static_cast<std::size_t>(last - first));
  std::int64_t need = tile_rows;
  for (std::int32_t i = last; i > first; --i) {
    const Node& n = g.nodes()[static_cast<std::size_t>(i)];
    const std::int64_t in_h = g.tensor(n.inputs[0]).shape.height();
    need = RowsIn(n, need, in_h, g.tensor(n.output).shape.height());
    rows[static_cast<std::size_t>(i - first - 1)] = need;
  }
  return rows;
}

// Packs the interior slabs for a band size; fills slab_rows/offsets/
// elements on `s` and returns the block's byte size.
std::size_t PackSlabs(const Graph& g, TileSegment& s,
                      std::int64_t tile_rows) {
  s.slab_rows = SlabRows(g, s.first_node, s.last_node, tile_rows);
  s.slab_offsets.assign(s.interior.size(), 0);
  std::size_t cursor = 0;
  for (std::size_t j = 0; j < s.interior.size(); ++j) {
    const graph::TensorShape& sh = g.tensor(s.interior[j]).shape;
    s.slab_offsets[j] = cursor;
    cursor += AlignUp(static_cast<std::size_t>(s.slab_rows[j] * sh.width() *
                                               sh.channels()));
  }
  s.slab_elements = cursor;
  return cursor * sizeof(float);
}

// Grows the longest valid chain starting at node index `i`; returns the
// last node index (== i when no chain forms).
std::int32_t GrowChain(const Graph& g, const std::vector<int>& consumers,
                       std::int32_t i) {
  const auto node_count = static_cast<std::int32_t>(g.nodes().size());
  std::int32_t last = i;
  while (last + 1 < node_count) {
    const Node& cur = g.nodes()[static_cast<std::size_t>(last)];
    const Node& next = g.nodes()[static_cast<std::size_t>(last + 1)];
    if (!NodeIsTileable(g, next)) break;
    if (next.inputs.empty() || next.inputs[0] != cur.output) break;
    if (consumers[static_cast<std::size_t>(cur.output)] != 1) break;
    // A binary op's second operand must be exterior.  The single-consumer
    // rule already forbids an interior operand (it would fork the chain);
    // this re-check keeps the invariant local and future-proof.
    bool second_is_interior = false;
    for (std::size_t k = 1; k < next.inputs.size(); ++k)
      for (std::int32_t m = i; m <= last; ++m)
        if (next.inputs[k] == g.nodes()[static_cast<std::size_t>(m)].output)
          second_is_interior = true;
    if (second_is_interior) break;
    ++last;
  }
  return last;
}

bool ChainWorthKeeping(const Graph& g, std::int32_t first, std::int32_t last) {
  if (last - first < 1) return false;  // need >= 2 nodes
  for (std::int32_t i = first; i <= last; ++i)
    if (IsConvLike(g.nodes()[static_cast<std::size_t>(i)].op)) return true;
  return false;
}

}  // namespace

std::size_t TilePlan::slab_bytes() const {
  std::size_t peak = 0;
  for (const TileSegment& s : segments)
    peak = std::max(peak, s.slab_elements * sizeof(float));
  return peak;
}

bool NodeIsTileable(const Graph& g, const Node& n) {
  if (!graph::SupportsBoundsInference(n.op)) return false;
  const graph::TensorShape& out = g.tensor(n.output).shape;
  if (out.rank() != 4 || out.batch() != 1) return false;
  for (const TensorId id : n.inputs) {
    const graph::TensorShape& in = g.tensor(id).shape;
    if (in.rank() != 4 || in.batch() != 1) return false;
  }
  return !n.inputs.empty();
}

bool HasFusableSegment(const Graph& g) {
  const std::vector<int> consumers = ConsumerCounts(g);
  const auto node_count = static_cast<std::int32_t>(g.nodes().size());
  for (std::int32_t i = 0; i < node_count; ++i) {
    if (!NodeIsTileable(g, g.nodes()[static_cast<std::size_t>(i)])) continue;
    const std::int32_t last = GrowChain(g, consumers, i);
    if (ChainWorthKeeping(g, i, last)) return true;
    i = last;  // nothing inside [i, last] starts a longer chain
  }
  return false;
}

TilePlan BuildTilePlan(const Graph& g, const TileOptions& opt) {
  TilePlan plan;
  plan.interior.assign(g.tensors().size(), false);
  plan.segment_of_node.assign(g.nodes().size(), -1);
  if (!opt.enabled) return plan;
  Expects(opt.rows == -1 || opt.rows >= 1,
          "tile rows must be -1 (auto) or >= 1");

  const std::vector<int> consumers = ConsumerCounts(g);
  const auto node_count = static_cast<std::int32_t>(g.nodes().size());
  std::vector<TileSegment> cands;
  for (std::int32_t i = 0; i < node_count; ++i) {
    if (!NodeIsTileable(g, g.nodes()[static_cast<std::size_t>(i)])) continue;
    const std::int32_t last = GrowChain(g, consumers, i);
    if (!ChainWorthKeeping(g, i, last)) {
      i = last;
      continue;
    }

    TileSegment s;
    s.first_node = i;
    s.last_node = last;
    for (std::int32_t m = i; m < last; ++m)
      s.interior.push_back(g.nodes()[static_cast<std::size_t>(m)].output);
    const Node& tail = g.nodes()[static_cast<std::size_t>(last)];
    s.out_rows = g.tensor(tail.output).shape.height();

    if (opt.rows >= 1) {
      s.tile_rows = std::min(opt.rows, s.out_rows);
      PackSlabs(g, s, s.tile_rows);
    } else {
      // Auto: the largest band whose slab block fits the cache budget.
      // Big outputs are additionally capped so the segment yields enough
      // tiles to feed the pool; outputs with fewer rows than that target
      // get one band — slicing them buys no parallel grain and only pays
      // per-tile overhead.  Band size never changes results, only
      // locality.
      std::int64_t rows = s.out_rows <= kMinTilesPerSegment
                              ? s.out_rows
                              : s.out_rows / kMinTilesPerSegment;
      while (rows > 1 && PackSlabs(g, s, rows) > opt.cache_bytes) --rows;
      s.tile_rows = rows;
      PackSlabs(g, s, rows);
    }
    cands.push_back(std::move(s));
    i = last;
  }
  if (cands.empty()) return plan;

  const auto materialize = [&](const std::vector<TileSegment>& segs) {
    TilePlan p;
    p.interior.assign(g.tensors().size(), false);
    p.segment_of_node.assign(g.nodes().size(), -1);
    for (const TileSegment& s : segs) {
      for (const TensorId id : s.interior)
        p.interior[static_cast<std::size_t>(id)] = true;
      for (std::int32_t m = s.first_node; m <= s.last_node; ++m)
        p.segment_of_node[static_cast<std::size_t>(m)] =
            static_cast<std::int32_t>(p.segments.size());
      p.segments.push_back(s);
    }
    return p;
  };
  const auto peak_with = [&](const std::vector<TileSegment>& segs) {
    const TilePlan p = materialize(segs);
    return MemoryPlan::Build(g, &p).peak_arena_bytes();
  };

  // Footprint gate.  A segment pays for its slabs by pinning its exterior
  // inputs until the segment tail (the head re-reads them tile by tile),
  // and that pin can pack worse than the interiors the segment removes —
  // e.g. a chain fused into a huge fully-materialized graph output keeps
  // its head input alive across the output's whole interval.  Greedily
  // drop segments while a drop lowers the tile-aware peak; if the
  // survivors still pack worse than the untiled arena, tiling buys nothing
  // here and the whole-op plan wins outright.
  const std::size_t untiled_peak = MemoryPlan::Build(g).peak_arena_bytes();
  std::size_t peak = peak_with(cands);
  bool improved = true;
  while (improved && !cands.empty()) {
    improved = false;
    for (std::size_t k = 0; k < cands.size(); ++k) {
      std::vector<TileSegment> trial = cands;
      trial.erase(trial.begin() + static_cast<std::ptrdiff_t>(k));
      const std::size_t trial_peak = peak_with(trial);
      if (trial_peak < peak) {
        cands = std::move(trial);
        peak = trial_peak;
        improved = true;
        break;
      }
    }
  }
  if (peak > untiled_peak || cands.empty()) return plan;
  return materialize(cands);
}

}  // namespace mlpm::infer
