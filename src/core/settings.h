// Test settings (paper §4.2, §6.1).
//
// Defaults encode the MLPerf Mobile run rules: single-stream measures the
// 90th-percentile latency over >= 1,024 samples and >= 60 seconds; offline
// issues 24,576 samples in one burst and reports average throughput.
#pragma once

#include <cstdint>
#include <string_view>

#include "core/clock.h"

namespace mlpm::loadgen {

// kSingleStream and kOffline are the two modes MLPerf Mobile uses (§4.2).
// The other two complete the LoadGen's pattern vocabulary (§4.1 mentions
// latency-bounded throughput):
//   kServer      — queries arrive in a seeded Poisson process at a target
//                  rate and queue at the device;
//   kMultiStream — a camera-style pattern: a query of N samples (frames
//                  from N concurrent streams) every fixed interval; the run
//                  is valid if queries complete within the interval.
enum class TestScenario : std::uint8_t {
  kSingleStream,
  kOffline,
  kServer,
  kMultiStream,
};
enum class TestMode : std::uint8_t { kPerformanceOnly, kAccuracyOnly };

[[nodiscard]] constexpr std::string_view ToString(TestScenario s) {
  switch (s) {
    case TestScenario::kSingleStream: return "single_stream";
    case TestScenario::kOffline: return "offline";
    case TestScenario::kServer: return "server";
    case TestScenario::kMultiStream: return "multi_stream";
  }
  return "?";
}
[[nodiscard]] constexpr std::string_view ToString(TestMode m) {
  return m == TestMode::kPerformanceOnly ? "performance" : "accuracy";
}

// The official seed all submissions must use (checker-verified); an
// arbitrary but fixed constant, spelling "MLPerf".
inline constexpr std::uint64_t kOfficialSeed = 0x4D4C50657266ULL;

struct TestSettings {
  TestScenario scenario = TestScenario::kSingleStream;
  TestMode mode = TestMode::kPerformanceOnly;
  std::uint64_t seed = kOfficialSeed;

  // Single-stream run rules.
  std::size_t min_query_count = 1024;
  Seconds min_duration{60.0};

  // Offline run rules.
  std::size_t offline_sample_count = 24'576;

  // Latency percentile reported for single-stream / server.
  double latency_percentile = 90.0;

  // Server run rules: Poisson arrival rate and the latency bound a run
  // must meet at the reported percentile to be valid.
  double server_target_qps = 100.0;
  Seconds server_latency_bound{0.050};
  std::size_t server_query_count = 2048;

  // Server admission control (DESIGN.md §12): when nonzero, an arrival
  // that would find this many admitted-but-unfinished queries ahead of it
  // is shed deterministically — logged, counted, and never issued to the
  // SUT — instead of queueing without bound.  Zero disables shedding.
  std::size_t server_max_queue_depth = 0;
  // Largest fraction of offered server queries that may be shed/rejected
  // before the run fails SLO validity (TestResult::shed_bound_met).
  double server_max_shed_fraction = 0.1;

  // Multi-stream run rules: N samples per query, a query every interval;
  // the run is valid if the percentile per-query latency fits the interval.
  std::size_t multistream_samples_per_query = 8;
  Seconds multistream_interval{0.050};  // 20 Hz camera cadence
  std::size_t multistream_query_count = 512;

  // 0 means "use the QSL's PerformanceSampleCount()".
  std::size_t performance_sample_count = 0;

  // Per-query watchdog deadline, measured on the test clock from the
  // scheduled issue time.  A query that has not completed within the
  // deadline is expired as timed-out (its late completion, if any, is
  // counted but excluded from the latency statistics).  Zero disables the
  // watchdog: never-completed queries are then reported as dropped.
  Seconds query_timeout{0.0};
};

}  // namespace mlpm::loadgen
