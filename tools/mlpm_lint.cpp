// mlpm_lint: standalone static-verification CLI (DESIGN.md §9).
//
// Lints model-IR files, the shipped reference models, and the vendor
// submission configurations without executing anything.  Exit codes keep
// lint findings distinct from tool failure so CI can gate on each
// separately:
//   0  clean (notes do not gate)
//   1  findings at warning or error severity
//   2  usage error or internal failure — nothing was fully linted
//
// Usage:
//   mlpm_lint [--json] [--version v0.7|v1.0|all] [FILE.graph ...]
//   mlpm_lint --models             lint every suite reference graph
//   mlpm_lint --chipset NAME|all   lint vendor submissions for the chipset(s)
//   mlpm_lint --codes              print the diagnostic-code catalogue
//   mlpm_lint --memory             static activation-memory summary for the
//                                  reference models (planner only, nothing
//                                  is executed)
//   mlpm_lint --kernel-isa NAME    lint a run configuration that forces the
//                                  kernel ISA NAME against this host's
//                                  kernel registry (RUN007 when unknown or
//                                  unavailable)
//   mlpm_lint --transform          dry-run the verified transform pipeline
//                                  (src/transform, FP32) over the reference
//                                  models: per-pass rewrite counts and
//                                  verification timings, plus any XFM
//                                  diagnostics as lint findings
//   mlpm_lint --tile auto|N        lint a run configuration that requests
//                                  tiled execution with the given tile
//                                  height against every selected reference
//                                  model (RUN008 when the height is invalid
//                                  or a model has no fusable segment)
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/passes.h"
#include "backends/vendor_policy.h"
#include "graph/serialize.h"
#include "infer/kernels/registry.h"
#include "infer/memory_plan.h"
#include "infer/tile_planner.h"
#include "infer/weights.h"
#include "models/zoo.h"
#include "soc/chipset.h"
#include "transform/pass_manager.h"

namespace {

using namespace mlpm;  // NOLINT(google-build-using-namespace): CLI entry point

struct TargetReport {
  std::string name;
  analysis::DiagnosticEngine engine;
};

struct Options {
  bool json = false;
  bool lint_models = false;
  bool print_codes = false;
  bool memory_summary = false;
  bool transform_summary = false;
  std::string chipset;     // empty = none, "all" = every catalog chipset
  std::string kernel_isa;  // empty = not requested
  std::string tile;        // empty = not requested; "auto" or a row count
  std::vector<models::SuiteVersion> versions = {models::SuiteVersion::kV0_7,
                                                models::SuiteVersion::kV1_0};
  std::vector<std::string> files;
};

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--json] [--version v0.7|v1.0|all] [--models]"
               " [--chipset NAME|all] [--codes] [--memory] [--transform]"
               " [--kernel-isa auto|scalar|avx2|neon] [--tile auto|N]"
               " [FILE.graph ...]\n";
  return 2;
}

// Static activation-memory summary (DESIGN.md §10): per reference model,
// the planner's packed arena footprint vs the naive one-buffer-per-tensor
// sum.  Pure planning — no weights are initialized, nothing runs.
void PrintMemorySummary(const Options& opt) {
  std::printf("%-40s %12s %12s %8s %8s\n", "model", "arena KiB", "naive KiB",
              "saved", "aliases");
  for (const models::SuiteVersion v : opt.versions) {
    for (const models::BenchmarkEntry& e : models::SuiteFor(v)) {
      const graph::Graph g =
          models::BuildReferenceGraph(e, v, models::ModelScale::kFull);
      const infer::MemoryPlan plan = infer::MemoryPlan::Build(g);
      const std::string name =
          std::string(ToString(v)) + "/" + e.id + " (" + e.model_name + ")";
      std::printf("%-40s %12.1f %12.1f %7.1f%% %8zu\n", name.c_str(),
                  static_cast<double>(plan.peak_arena_bytes()) / 1024.0,
                  static_cast<double>(plan.naive_bytes()) / 1024.0,
                  100.0 * plan.savings_ratio(), plan.alias_count());
    }
  }
}

// Lint one serialized graph file: syntax-only load, then the model passes.
void LintFile(const std::string& path, std::vector<TargetReport>& reports) {
  TargetReport r;
  r.name = path;
  std::ifstream in(path);
  if (!in) {
    r.engine.Report("GRAPH005", analysis::GraphSource(path),
                    "cannot open file");
    reports.push_back(std::move(r));
    return;
  }
  std::ostringstream text;
  text << in.rdbuf();
  try {
    const graph::Graph g = graph::ParseGraphUnchecked(text.str());
    analysis::RunModelPasses(g, r.engine);
  } catch (const std::exception& e) {
    // Even the syntax-only parser can reject a file (bad header, malformed
    // record); that is structural corruption by definition.
    r.engine.Report("GRAPH005", analysis::GraphSource(path), e.what());
  }
  reports.push_back(std::move(r));
}

void LintReferenceModels(const Options& opt,
                         std::vector<TargetReport>& reports) {
  for (const models::SuiteVersion v : opt.versions) {
    for (const models::BenchmarkEntry& e : models::SuiteFor(v)) {
      TargetReport r;
      r.name = std::string(ToString(v)) + "/" + e.id + " (" + e.model_name +
               ")";
      const graph::Graph g =
          models::BuildReferenceGraph(e, v, models::ModelScale::kFull);
      analysis::RunModelPasses(g, r.engine);
      reports.push_back(std::move(r));
    }
  }
}

void LintChipset(const soc::ChipsetDesc& chipset, models::SuiteVersion v,
                 std::vector<TargetReport>& reports) {
  for (const models::BenchmarkEntry& e : models::SuiteFor(v)) {
    TargetReport r;
    r.name = chipset.name + "/" + std::string(ToString(v)) + "/" + e.id;
    const backends::SubmissionConfig sub =
        backends::GetSubmission(chipset, e.task, v);
    const graph::Graph g =
        models::BuildReferenceGraph(e, v, models::ModelScale::kFull);

    analysis::QuantConfigView q;
    q.activation_dtype = sub.numerics;
    analysis::CheckQuantLegality(g, q, r.engine);

    analysis::MappingConfigView m;
    m.chipset = &chipset;
    m.numerics = sub.numerics;
    m.policy = &sub.single_stream;
    m.label = r.name + "/single_stream";
    analysis::CheckSocMapping(g, m, r.engine);
    for (std::size_t i = 0; i < sub.offline_replicas.size(); ++i) {
      m.policy = &sub.offline_replicas[i];
      m.label = r.name + "/offline[" + std::to_string(i) + "]";
      analysis::CheckSocMapping(g, m, r.engine);
    }
    reports.push_back(std::move(r));
  }
}

void LintSubmissions(const Options& opt, std::vector<TargetReport>& reports) {
  bool matched = false;
  for (const models::SuiteVersion v : opt.versions) {
    const std::vector<soc::ChipsetDesc> catalog =
        v == models::SuiteVersion::kV0_7 ? soc::CatalogV07()
                                         : soc::CatalogV10();
    for (const soc::ChipsetDesc& c : catalog) {
      if (opt.chipset != "all" && c.name != opt.chipset) continue;
      matched = true;
      LintChipset(c, v, reports);
    }
  }
  if (!matched) {
    TargetReport r;
    r.name = opt.chipset;
    r.engine.Report("SOC001", analysis::ConfigSource("--chipset"),
                    "no chipset named '" + opt.chipset +
                        "' in the selected catalog round(s)");
    reports.push_back(std::move(r));
  }
}

// Lints a run configuration that forces `name` as the kernel ISA, resolved
// against this host's kernel registry — the pre-run diagnostic for a CLI
// `--kernel-isa` value that would silently fall back to scalar (RUN007).
void LintKernelIsa(const std::string& name,
                   std::vector<TargetReport>& reports) {
  TargetReport r;
  r.name = "run-config (--kernel-isa " + name + ")";
  analysis::RunConfigView rc;
  rc.kernel_isa = name;
  const std::optional<infer::kernels::KernelIsa> isa =
      infer::kernels::ParseKernelIsa(name);
  rc.kernel_isa_available =
      isa && infer::kernels::KernelRegistry::Global().Available(*isa);
  analysis::CheckRunConfig(rc, r.engine);
  reports.push_back(std::move(r));
}

// Lints a run configuration that requests tiled execution with tile height
// `value` ("auto" or a decimal row count) against every selected reference
// model: RUN008 error for an invalid height, RUN008 warning per model with
// no fusable segment (infer::HasFusableSegment) — the pre-run diagnostic
// for a CLI `--tile` value that would have no effect (DESIGN.md §15).
void LintTileConfig(const Options& opt, const std::string& value,
                    std::vector<TargetReport>& reports) {
  std::int64_t rows = -1;
  if (value != "auto") {
    char* end = nullptr;
    errno = 0;
    const long long parsed = std::strtoll(value.c_str(), &end, 10);
    if (value.empty() || end == value.c_str() || *end != '\0' ||
        errno == ERANGE) {
      TargetReport r;
      r.name = "run-config (--tile " + value + ")";
      r.engine.Report("RUN008", analysis::ConfigSource("run.tile_rows"),
                      "tile height '" + value +
                          "' is not a number; use auto or a positive row "
                          "count");
      reports.push_back(std::move(r));
      return;
    }
    rows = parsed;
  }
  for (const models::SuiteVersion v : opt.versions) {
    for (const models::BenchmarkEntry& e : models::SuiteFor(v)) {
      TargetReport r;
      r.name = std::string(ToString(v)) + "/" + e.id + " (--tile " + value +
               ")";
      const graph::Graph g =
          models::BuildReferenceGraph(e, v, models::ModelScale::kFull);
      analysis::RunConfigView rc;
      rc.tiling_requested = true;
      rc.tile_rows = rows;
      rc.graph_has_fusable_segment = infer::HasFusableSegment(g);
      analysis::CheckRunConfig(rc, r.engine);
      reports.push_back(std::move(r));
    }
  }
}

// Dry-runs the default transform pipeline over every selected reference
// model.  Nothing outside this process is affected: the transformed graph
// is discarded, only the per-pass summary and the XFM diagnostics remain.
// Weights use the harness's default seed so constant folding sees the same
// values a run would.
void DryRunTransforms(const Options& opt, std::vector<TargetReport>& reports) {
  for (const models::SuiteVersion v : opt.versions) {
    for (const models::BenchmarkEntry& e : models::SuiteFor(v)) {
      TargetReport r;
      r.name = std::string(ToString(v)) + "/" + e.id + " (" + e.model_name +
               ")";
      const graph::Graph g =
          models::BuildReferenceGraph(e, v, models::ModelScale::kFull);
      const infer::WeightStore weights = infer::InitializeWeights(g, 1u);
      const transform::PassManager pm = transform::MakeDefaultPipeline(
          {.mode = infer::NumericsMode::kFp32, .metrics = nullptr});
      transform::TransformResult res = pm.Run(g, weights);
      if (!opt.json)
        std::cout << "== transform " << r.name << " ==\n" << res.Summary();
      r.engine = std::move(res.diagnostics);
      reports.push_back(std::move(r));
    }
  }
}

void PrintCodes() {
  for (const analysis::CodeInfo& c : analysis::DiagnosticCatalogue())
    std::cout << c.code << "  " << ToString(c.default_severity) << "  "
              << c.summary << '\n';
}

void AppendJsonString(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\' << c;
    else if (c == '\n') os << "\\n";
    else os << c;
  }
  os << '"';
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--models") {
      opt.lint_models = true;
    } else if (arg == "--codes") {
      opt.print_codes = true;
    } else if (arg == "--memory") {
      opt.memory_summary = true;
    } else if (arg == "--transform") {
      opt.transform_summary = true;
    } else if (arg == "--chipset") {
      if (++i >= argc) return Usage(argv[0]);
      opt.chipset = argv[i];
    } else if (arg == "--kernel-isa") {
      if (++i >= argc) return Usage(argv[0]);
      opt.kernel_isa = argv[i];
    } else if (arg == "--tile") {
      if (++i >= argc) return Usage(argv[0]);
      opt.tile = argv[i];
    } else if (arg == "--version") {
      if (++i >= argc) return Usage(argv[0]);
      const std::string v = argv[i];
      if (v == "v0.7") opt.versions = {models::SuiteVersion::kV0_7};
      else if (v == "v1.0") opt.versions = {models::SuiteVersion::kV1_0};
      else if (v == "all") { /* keep both */ }
      else return Usage(argv[0]);
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage(argv[0]);
    } else {
      opt.files.push_back(arg);
    }
  }
  if (opt.print_codes) {
    PrintCodes();
    return 0;
  }
  if (opt.memory_summary) {
    try {
      PrintMemorySummary(opt);
    } catch (const std::exception& e) {
      std::cerr << "mlpm_lint: " << e.what() << '\n';
      return 2;
    }
    return 0;
  }
  if (!opt.lint_models && opt.chipset.empty() && opt.kernel_isa.empty() &&
      opt.tile.empty() && !opt.transform_summary && opt.files.empty())
    return Usage(argv[0]);

  std::vector<TargetReport> reports;
  try {
    for (const std::string& f : opt.files) LintFile(f, reports);
    if (opt.lint_models) LintReferenceModels(opt, reports);
    if (!opt.chipset.empty()) LintSubmissions(opt, reports);
    if (!opt.kernel_isa.empty()) LintKernelIsa(opt.kernel_isa, reports);
    if (!opt.tile.empty()) LintTileConfig(opt, opt.tile, reports);
    if (opt.transform_summary) DryRunTransforms(opt, reports);
  } catch (const std::exception& e) {
    std::cerr << "mlpm_lint: " << e.what() << '\n';
    return 2;
  }

  analysis::Severity max = analysis::Severity::kNote;
  bool any = false;
  for (const TargetReport& r : reports) {
    if (!r.engine.empty()) {
      any = true;
      if (r.engine.MaxSeverity() > max) max = r.engine.MaxSeverity();
    }
  }

  if (opt.json) {
    std::cout << "{\"targets\":[";
    for (std::size_t i = 0; i < reports.size(); ++i) {
      if (i) std::cout << ',';
      std::cout << "{\"name\":";
      AppendJsonString(std::cout, reports[i].name);
      std::cout << ",\"report\":" << reports[i].engine.ToJson() << '}';
    }
    std::cout << "],\"max_severity\":\""
              << (any ? ToString(max) : std::string_view("clean")) << "\"}\n";
  } else {
    for (const TargetReport& r : reports) {
      if (r.engine.empty()) continue;
      std::cout << "== " << r.name << " ==\n" << r.engine.ToText();
    }
    std::cout << reports.size() << " target(s) linted, "
              << (any ? std::string("max severity ") +
                            std::string(ToString(max))
                      : std::string("all clean"))
              << '\n';
  }
  // Findings exit 1 regardless of severity tier; 2 is reserved for usage
  // and internal errors so automation can tell "the model is bad" from
  // "the tool invocation is bad".  Notes alone do not gate.
  return (any && max >= analysis::Severity::kWarning) ? 1 : 0;
}
