#include "infer/int8_gemm.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"

namespace mlpm::infer {
namespace {

// Register tile: 4x4 output blocks, 16 independent accumulators.  Each
// accumulator sums its k terms in increasing order, so every output element
// sees exactly the same operation sequence as the scalar reference kernel.
constexpr std::size_t kTile = 4;
// K-blocking keeps the streamed A/B row segments L1-resident for large k.
// Accumulators round-trip through C between blocks, which preserves values
// exactly (a float store/load is value-preserving).
constexpr std::size_t kKBlock = 512;

void GemmF32RowRange(const float* a, const float* b_t, std::int64_t i_begin,
                     std::int64_t i_end, std::size_t n, std::size_t k,
                     float* c) {
  std::fill(c + static_cast<std::size_t>(i_begin) * n,
            c + static_cast<std::size_t>(i_end) * n, 0.0f);
  for (std::size_t kb = 0; kb < k; kb += kKBlock) {
    const std::size_t kc = std::min(kKBlock, k - kb);
    std::int64_t i = i_begin;
    for (; i + static_cast<std::int64_t>(kTile) <= i_end; i += kTile) {
      const float* a0 = a + static_cast<std::size_t>(i) * k + kb;
      const float* a1 = a0 + k;
      const float* a2 = a1 + k;
      const float* a3 = a2 + k;
      std::size_t j = 0;
      for (; j + kTile <= n; j += kTile) {
        const float* b0 = b_t + j * k + kb;
        const float* b1 = b0 + k;
        const float* b2 = b1 + k;
        const float* b3 = b2 + k;
        float* c0 = c + static_cast<std::size_t>(i) * n + j;
        float* c1 = c0 + n;
        float* c2 = c1 + n;
        float* c3 = c2 + n;
        float acc00 = c0[0], acc01 = c0[1], acc02 = c0[2], acc03 = c0[3];
        float acc10 = c1[0], acc11 = c1[1], acc12 = c1[2], acc13 = c1[3];
        float acc20 = c2[0], acc21 = c2[1], acc22 = c2[2], acc23 = c2[3];
        float acc30 = c3[0], acc31 = c3[1], acc32 = c3[2], acc33 = c3[3];
        for (std::size_t kk = 0; kk < kc; ++kk) {
          const float av0 = a0[kk], av1 = a1[kk], av2 = a2[kk], av3 = a3[kk];
          const float bv0 = b0[kk], bv1 = b1[kk], bv2 = b2[kk], bv3 = b3[kk];
          acc00 += av0 * bv0; acc01 += av0 * bv1;
          acc02 += av0 * bv2; acc03 += av0 * bv3;
          acc10 += av1 * bv0; acc11 += av1 * bv1;
          acc12 += av1 * bv2; acc13 += av1 * bv3;
          acc20 += av2 * bv0; acc21 += av2 * bv1;
          acc22 += av2 * bv2; acc23 += av2 * bv3;
          acc30 += av3 * bv0; acc31 += av3 * bv1;
          acc32 += av3 * bv2; acc33 += av3 * bv3;
        }
        c0[0] = acc00; c0[1] = acc01; c0[2] = acc02; c0[3] = acc03;
        c1[0] = acc10; c1[1] = acc11; c1[2] = acc12; c1[3] = acc13;
        c2[0] = acc20; c2[1] = acc21; c2[2] = acc22; c2[3] = acc23;
        c3[0] = acc30; c3[1] = acc31; c3[2] = acc32; c3[3] = acc33;
      }
      for (; j < n; ++j) {
        const float* bj = b_t + j * k + kb;
        float s0 = c[static_cast<std::size_t>(i) * n + j];
        float s1 = c[static_cast<std::size_t>(i + 1) * n + j];
        float s2 = c[static_cast<std::size_t>(i + 2) * n + j];
        float s3 = c[static_cast<std::size_t>(i + 3) * n + j];
        for (std::size_t kk = 0; kk < kc; ++kk) {
          const float bv = bj[kk];
          s0 += a0[kk] * bv;
          s1 += a1[kk] * bv;
          s2 += a2[kk] * bv;
          s3 += a3[kk] * bv;
        }
        c[static_cast<std::size_t>(i) * n + j] = s0;
        c[static_cast<std::size_t>(i + 1) * n + j] = s1;
        c[static_cast<std::size_t>(i + 2) * n + j] = s2;
        c[static_cast<std::size_t>(i + 3) * n + j] = s3;
      }
    }
    for (; i < i_end; ++i) {
      const float* ai = a + static_cast<std::size_t>(i) * k + kb;
      for (std::size_t j = 0; j < n; ++j) {
        const float* bj = b_t + j * k + kb;
        float s = c[static_cast<std::size_t>(i) * n + j];
        for (std::size_t kk = 0; kk < kc; ++kk) s += ai[kk] * bj[kk];
        c[static_cast<std::size_t>(i) * n + j] = s;
      }
    }
  }
}

// The integer kernel folds the zero points out of the inner loop:
//   sum_k (a-az)(b-bz) = sum_k a*b - az*sum_k b - bz*sum_k a + k*az*bz.
// All arithmetic runs modulo 2^32 in uint32 (the final value fits int32
// exactly as in the reference kernel; C++20 defines the modular
// unsigned->signed conversion), leaving a plain u8*u8 dot product inside.
void GemmU8RowRange(const std::uint8_t* a, const std::uint8_t* b_t,
                    std::int64_t i_begin, std::int64_t i_end, std::size_t n,
                    std::size_t k, std::uint32_t a_zp, std::uint32_t b_zp,
                    const std::uint32_t* b_sums, std::int32_t* c) {
  const std::uint32_t kzz =
      static_cast<std::uint32_t>(k) * a_zp * b_zp;
  const auto row_sum = [k](const std::uint8_t* row) {
    std::uint32_t s = 0;
    for (std::size_t kk = 0; kk < k; ++kk) s += row[kk];
    return s;
  };
  std::int64_t i = i_begin;
  for (; i + static_cast<std::int64_t>(kTile) <= i_end; i += kTile) {
    const std::uint8_t* a0 = a + static_cast<std::size_t>(i) * k;
    const std::uint8_t* a1 = a0 + k;
    const std::uint8_t* a2 = a1 + k;
    const std::uint8_t* a3 = a2 + k;
    const std::uint32_t base0 = kzz - b_zp * row_sum(a0);
    const std::uint32_t base1 = kzz - b_zp * row_sum(a1);
    const std::uint32_t base2 = kzz - b_zp * row_sum(a2);
    const std::uint32_t base3 = kzz - b_zp * row_sum(a3);
    std::size_t j = 0;
    for (; j + kTile <= n; j += kTile) {
      const std::uint8_t* b0 = b_t + j * k;
      const std::uint8_t* b1 = b0 + k;
      const std::uint8_t* b2 = b1 + k;
      const std::uint8_t* b3 = b2 + k;
      std::uint32_t acc[kTile][kTile] = {};
      for (std::size_t kk = 0; kk < k; ++kk) {
        const std::uint32_t av0 = a0[kk], av1 = a1[kk], av2 = a2[kk],
                            av3 = a3[kk];
        const std::uint32_t bv0 = b0[kk], bv1 = b1[kk], bv2 = b2[kk],
                            bv3 = b3[kk];
        acc[0][0] += av0 * bv0; acc[0][1] += av0 * bv1;
        acc[0][2] += av0 * bv2; acc[0][3] += av0 * bv3;
        acc[1][0] += av1 * bv0; acc[1][1] += av1 * bv1;
        acc[1][2] += av1 * bv2; acc[1][3] += av1 * bv3;
        acc[2][0] += av2 * bv0; acc[2][1] += av2 * bv1;
        acc[2][2] += av2 * bv2; acc[2][3] += av2 * bv3;
        acc[3][0] += av3 * bv0; acc[3][1] += av3 * bv1;
        acc[3][2] += av3 * bv2; acc[3][3] += av3 * bv3;
      }
      const std::uint32_t bases[kTile] = {base0, base1, base2, base3};
      for (std::size_t r = 0; r < kTile; ++r)
        for (std::size_t q = 0; q < kTile; ++q)
          c[(static_cast<std::size_t>(i) + r) * n + j + q] =
              static_cast<std::int32_t>(acc[r][q] + bases[r] -
                                        a_zp * b_sums[j + q]);
    }
    for (; j < n; ++j) {
      const std::uint8_t* bj = b_t + j * k;
      std::uint32_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const std::uint32_t bv = bj[kk];
        s0 += a0[kk] * bv;
        s1 += a1[kk] * bv;
        s2 += a2[kk] * bv;
        s3 += a3[kk] * bv;
      }
      const std::uint32_t col = a_zp * b_sums[j];
      c[static_cast<std::size_t>(i) * n + j] =
          static_cast<std::int32_t>(s0 + base0 - col);
      c[static_cast<std::size_t>(i + 1) * n + j] =
          static_cast<std::int32_t>(s1 + base1 - col);
      c[static_cast<std::size_t>(i + 2) * n + j] =
          static_cast<std::int32_t>(s2 + base2 - col);
      c[static_cast<std::size_t>(i + 3) * n + j] =
          static_cast<std::int32_t>(s3 + base3 - col);
    }
  }
  for (; i < i_end; ++i) {
    const std::uint8_t* ai = a + static_cast<std::size_t>(i) * k;
    const std::uint32_t base = kzz - b_zp * row_sum(ai);
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint8_t* bj = b_t + j * k;
      std::uint32_t s = 0;
      for (std::size_t kk = 0; kk < k; ++kk)
        s += static_cast<std::uint32_t>(ai[kk]) * bj[kk];
      c[static_cast<std::size_t>(i) * n + j] =
          static_cast<std::int32_t>(s + base - a_zp * b_sums[j]);
    }
  }
}

}  // namespace

void QuantizeU8(std::span<const float> src, float scale,
                std::int32_t zero_point, std::span<std::uint8_t> dst) {
  Expects(src.size() == dst.size(), "quantize size mismatch");
  Expects(scale > 0.0f, "quantize scale must be positive");
  const float inv = 1.0f / scale;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const float q =
        std::round(src[i] * inv) + static_cast<float>(zero_point);
    dst[i] = static_cast<std::uint8_t>(std::clamp(q, 0.0f, 255.0f));
  }
}

float DequantizeAcc(std::int32_t acc, float lhs_scale, float rhs_scale) {
  return static_cast<float>(acc) * lhs_scale * rhs_scale;
}

void GemmU8U8I32(std::span<const std::uint8_t> a, std::int32_t a_zp,
                 std::span<const std::uint8_t> b_t, std::int32_t b_zp,
                 std::size_t m, std::size_t n, std::size_t k,
                 std::span<std::int32_t> c, const ThreadPool* pool) {
  Expects(a.size() == m * k, "A size mismatch");
  Expects(b_t.size() == n * k, "B size mismatch");
  Expects(c.size() == m * n, "C size mismatch");
  std::vector<std::uint32_t> b_sums(n);
  ParallelForRange(pool, 0, static_cast<std::int64_t>(n),
                   [&](std::int64_t lo, std::int64_t hi) {
                     for (std::int64_t j = lo; j < hi; ++j) {
                       const std::uint8_t* row =
                           b_t.data() + static_cast<std::size_t>(j) * k;
                       std::uint32_t s = 0;
                       for (std::size_t kk = 0; kk < k; ++kk) s += row[kk];
                       b_sums[static_cast<std::size_t>(j)] = s;
                     }
                   });
  ParallelForRange(pool, 0, static_cast<std::int64_t>(m),
                   [&](std::int64_t lo, std::int64_t hi) {
                     GemmU8RowRange(a.data(), b_t.data(), lo, hi, n, k,
                                    static_cast<std::uint32_t>(a_zp),
                                    static_cast<std::uint32_t>(b_zp),
                                    b_sums.data(), c.data());
                   });
}

void GemmF32(std::span<const float> a, std::span<const float> b_t,
             std::size_t m, std::size_t n, std::size_t k, std::span<float> c,
             const ThreadPool* pool) {
  Expects(a.size() == m * k, "A size mismatch");
  Expects(b_t.size() == n * k, "B size mismatch");
  Expects(c.size() == m * n, "C size mismatch");
  ParallelForRange(pool, 0, static_cast<std::int64_t>(m),
                   [&](std::int64_t lo, std::int64_t hi) {
                     GemmF32RowRange(a.data(), b_t.data(), lo, hi, n, k,
                                     c.data());
                   });
}

void GemmU8U8I32Ref(std::span<const std::uint8_t> a, std::int32_t a_zp,
                    std::span<const std::uint8_t> b_t, std::int32_t b_zp,
                    std::size_t m, std::size_t n, std::size_t k,
                    std::span<std::int32_t> c) {
  Expects(a.size() == m * k, "A size mismatch");
  Expects(b_t.size() == n * k, "B size mismatch");
  Expects(c.size() == m * n, "C size mismatch");
  for (std::size_t i = 0; i < m; ++i) {
    const std::uint8_t* arow = a.data() + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint8_t* brow = b_t.data() + j * k;
      std::int32_t acc = 0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += (static_cast<std::int32_t>(arow[kk]) - a_zp) *
               (static_cast<std::int32_t>(brow[kk]) - b_zp);
      }
      c[i * n + j] = acc;
    }
  }
}

void GemmF32Ref(std::span<const float> a, std::span<const float> b_t,
                std::size_t m, std::size_t n, std::size_t k,
                std::span<float> c) {
  Expects(a.size() == m * k, "A size mismatch");
  Expects(b_t.size() == n * k, "B size mismatch");
  Expects(c.size() == m * n, "C size mismatch");
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a.data() + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b_t.data() + j * k;
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      c[i * n + j] = acc;
    }
  }
}

}  // namespace mlpm::infer
