file(REMOVE_RECURSE
  "libmlpm_soc.a"
)
