// Static activation memory planner and arena execution.
//
// The planner's contract has two halves: (1) structural — no two buffers
// whose lifetimes overlap may share arena bytes, aliases only ride on ops
// that tolerate in-place writes, and the packed arena never exceeds the
// naive footprint beyond alignment slack; (2) behavioural — executing
// against the plan is bit-identical to the legacy allocate-per-node oracle
// for every reference model, numerics mode and thread count.  Both halves
// are checked here, the structural one over randomly generated graphs.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "backends/reference_backend.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/dataset_qsl.h"
#include "core/loadgen.h"
#include "graph/graph.h"
#include "graph/liveness.h"
#include "harness/task_bundle.h"
#include "infer/executor.h"
#include "infer/memory_plan.h"
#include "infer/prepared_model.h"
#include "infer/weights.h"
#include "models/zoo.h"
#include "quant/calibration.h"

namespace mlpm {
namespace {

std::vector<infer::Tensor> GraphInputs(const graph::Graph& g,
                                       std::uint64_t seed) {
  std::vector<infer::Tensor> inputs;
  Rng rng(seed);
  for (const graph::TensorId id : g.input_ids()) {
    infer::Tensor t(g.tensor(id).shape);
    for (auto& v : t.values())
      v = static_cast<float>(rng.NextUniform(0.0, 1.0));
    inputs.push_back(std::move(t));
  }
  return inputs;
}

void ExpectBitIdentical(const std::vector<infer::Tensor>& want,
                        const std::vector<infer::Tensor>& got,
                        const std::string& what) {
  ASSERT_EQ(want.size(), got.size()) << what;
  for (std::size_t o = 0; o < want.size(); ++o) {
    ASSERT_EQ(want[o].size(), got[o].size()) << what;
    for (std::size_t i = 0; i < want[o].size(); ++i)
      ASSERT_EQ(want[o].at(i), got[o].at(i))
          << what << " output " << o << " element " << i;
  }
}

TEST(Liveness, IntervalsMatchHandComputedChain) {
  graph::GraphBuilder b("chain");
  const graph::TensorId in = b.Input("in", graph::TensorShape({1, 8, 8, 3}));
  const graph::TensorId conv = b.Conv2d(in, 4, 3, 1);
  const graph::TensorId act = b.Activate(conv, graph::Activation::kRelu);
  b.MarkOutput(act);
  const graph::Graph g = std::move(b).Build();
  // Node order: [0] conv, [1] activation (the builder registers graph
  // inputs as tensors, not nodes).
  const std::vector<graph::LiveInterval> live = graph::ComputeLiveness(g);

  EXPECT_EQ(live[static_cast<std::size_t>(in)].def, -1);  // live at entry
  EXPECT_EQ(live[static_cast<std::size_t>(in)].last_use, 0);
  EXPECT_TRUE(live[static_cast<std::size_t>(in)].is_activation);
  EXPECT_EQ(live[static_cast<std::size_t>(conv)].def, 0);
  EXPECT_EQ(live[static_cast<std::size_t>(conv)].last_use, 1);
  // Graph output pinned past the final node.
  EXPECT_EQ(live[static_cast<std::size_t>(act)].def, 1);
  EXPECT_EQ(live[static_cast<std::size_t>(act)].last_use,
            static_cast<std::int32_t>(g.nodes().size()));
  // Disjoint intervals don't overlap; chained ones do.
  EXPECT_TRUE(live[static_cast<std::size_t>(in)].Overlaps(
      live[static_cast<std::size_t>(conv)]));
}

// Structural invariants of one plan against its graph.
void CheckPlanInvariants(const graph::Graph& g, const infer::MemoryPlan& plan) {
  constexpr std::size_t kAlign = infer::kArenaAlignElements;
  const auto aligned = [](std::size_t n) {
    return (n + kAlign - 1) / kAlign * kAlign;
  };

  // No two lifetime-overlapping buffers may intersect in the arena.
  const auto& bufs = plan.buffers();
  for (std::size_t a = 0; a < bufs.size(); ++a) {
    for (std::size_t c = a + 1; c < bufs.size(); ++c) {
      const bool live_overlap = bufs[a].def <= bufs[c].last_use &&
                                bufs[c].def <= bufs[a].last_use;
      if (!live_overlap) continue;
      const bool range_overlap =
          bufs[a].offset < bufs[c].offset + aligned(bufs[c].elements) &&
          bufs[c].offset < bufs[a].offset + aligned(bufs[a].elements);
      EXPECT_FALSE(range_overlap)
          << g.name() << ": buffers " << bufs[a].root << " and "
          << bufs[c].root << " are simultaneously live and overlap";
    }
    EXPECT_LE(bufs[a].offset + aligned(bufs[a].elements),
              plan.arena_elements());
  }

  // Placement sanity: inputs/weights stay external; every produced tensor
  // is planned; aliases only on in-place-capable ops over live-matched
  // element counts.
  for (const graph::Node& n : g.nodes()) {
    const auto out = static_cast<std::size_t>(n.output);
    const infer::TensorPlacement& p = plan.placements()[out];
    if (n.op == graph::OpType::kInput) {
      EXPECT_EQ(p.kind, infer::PlacementKind::kUnplanned);
      continue;
    }
    EXPECT_NE(p.kind, infer::PlacementKind::kUnplanned) << g.name();
    if (p.kind == infer::PlacementKind::kAlias) {
      EXPECT_TRUE(infer::SupportsInPlace(n.op)) << g.name();
      const infer::TensorPlacement& src =
          plan.placements()[static_cast<std::size_t>(n.inputs[0])];
      EXPECT_EQ(p.buffer, src.buffer) << g.name();
      EXPECT_EQ(p.offset, src.offset) << g.name();
    }
  }

  EXPECT_LE(plan.peak_arena_bytes(),
            plan.naive_bytes() + bufs.size() * kAlign * sizeof(float));
}

// Random graphs over shape-preserving ops: conv, depthwise, add, mul,
// activation, same-shape reshape, concat+conv (channel merge).  Every op
// keeps {1, 8, 8, 4} so any earlier tensor is a legal operand, which is
// exactly the regime where lifetime mistakes would overlap buffers.
graph::Graph RandomGraph(std::uint64_t seed) {
  Rng rng(seed);
  graph::GraphBuilder b("random_" + std::to_string(seed));
  const graph::TensorShape shape({1, 8, 8, 4});
  std::vector<graph::TensorId> pool{b.Input("in", shape)};
  const int steps = 4 + static_cast<int>(rng.NextBelow(10));
  for (int s = 0; s < steps; ++s) {
    const graph::TensorId a =
        pool[static_cast<std::size_t>(rng.NextBelow(pool.size()))];
    const graph::TensorId c =
        pool[static_cast<std::size_t>(rng.NextBelow(pool.size()))];
    switch (rng.NextBelow(6)) {
      case 0: pool.push_back(b.Conv2d(a, 4, 3, 1)); break;
      case 1: pool.push_back(b.DepthwiseConv2d(a, 3, 1)); break;
      case 2: pool.push_back(b.Add(a, c)); break;
      case 3: pool.push_back(b.Mul(a, c)); break;
      case 4:
        pool.push_back(b.Activate(a, graph::Activation::kRelu));
        break;
      case 5: pool.push_back(b.Reshape(a, {1, 8, 8, 4})); break;
    }
  }
  // One or two outputs, always including the last tensor.
  b.MarkOutput(pool.back());
  if (rng.NextBelow(2) == 0 && pool.size() > 2)
    b.MarkOutput(pool[pool.size() / 2]);
  return std::move(b).Build();
}

TEST(MemoryPlanProperty, RandomGraphsNeverOverlapLiveBuffers) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const graph::Graph g = RandomGraph(seed);
    const infer::MemoryPlan plan = infer::MemoryPlan::Build(g);
    CheckPlanInvariants(g, plan);
  }
}

TEST(MemoryPlanProperty, RandomGraphsExecuteBitIdenticalToLegacy) {
  ThreadPool pool(3);
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const graph::Graph g = RandomGraph(seed);
    const infer::WeightStore w = infer::InitializeWeights(g, seed);
    const infer::Executor exec(g, w);
    const std::vector<infer::Tensor> inputs = GraphInputs(g, seed + 100);

    const auto legacy = exec.Run(inputs);
    infer::ExecutionContext ctx = exec.CreateContext();
    ExpectBitIdentical(legacy, exec.Run(inputs, ctx), g.name() + " serial");
    ExpectBitIdentical(legacy, exec.Run(inputs, ctx, {}, &pool),
                       g.name() + " threaded");
  }
}

TEST(MemoryPlan, ReshapeAndElementwiseAliasOntoDyingBuffers) {
  graph::GraphBuilder b("alias_chain");
  const auto in = b.Input("in", graph::TensorShape({1, 8, 8, 4}));
  const auto conv = b.Conv2d(in, 4, 3, 1);
  const auto act = b.Activate(conv, graph::Activation::kRelu);
  const auto resh = b.Reshape(act, {1, 8, 8, 4});
  const auto fc = b.FullyConnected(resh, 10);
  b.MarkOutput(fc);
  const graph::Graph g = std::move(b).Build();
  const infer::MemoryPlan plan = infer::MemoryPlan::Build(g);

  // conv's buffer dies at the relu, so relu writes in place; the reshape
  // then rides the same buffer as a pure view.  Only conv and fc own arena
  // storage.
  EXPECT_EQ(plan.placements()[static_cast<std::size_t>(act)].kind,
            infer::PlacementKind::kAlias);
  EXPECT_EQ(plan.placements()[static_cast<std::size_t>(resh)].kind,
            infer::PlacementKind::kAlias);
  EXPECT_EQ(plan.placements()[static_cast<std::size_t>(resh)].buffer, conv);
  EXPECT_EQ(plan.alias_count(), 2u);
  EXPECT_EQ(plan.buffers().size(), 2u);
  CheckPlanInvariants(g, plan);
}

TEST(MemoryPlan, NoAliasWhenProducerBufferStaysLive) {
  graph::GraphBuilder b("no_alias");
  const auto in = b.Input("in", graph::TensorShape({1, 8, 8, 4}));
  const auto conv = b.Conv2d(in, 4, 3, 1);
  const auto act = b.Activate(conv, graph::Activation::kRelu);
  // conv is read again *after* the relu, so the relu must not clobber it.
  const auto sum = b.Add(act, conv);
  b.MarkOutput(sum);
  const graph::Graph g = std::move(b).Build();
  const infer::MemoryPlan plan = infer::MemoryPlan::Build(g);

  EXPECT_EQ(plan.placements()[static_cast<std::size_t>(act)].kind,
            infer::PlacementKind::kArena);
  // The add's first input (act) does die at the add, so the add may alias.
  EXPECT_EQ(plan.placements()[static_cast<std::size_t>(sum)].kind,
            infer::PlacementKind::kAlias);
  CheckPlanInvariants(g, plan);

  // And the numbers agree with the oracle.
  const infer::WeightStore w = infer::InitializeWeights(g, 3);
  const infer::Executor exec(g, w);
  const auto inputs = GraphInputs(g, 5);
  infer::ExecutionContext ctx = exec.CreateContext();
  ExpectBitIdentical(exec.Run(inputs), exec.Run(inputs, ctx), "no_alias");
}

TEST(ArenaExecution, BitIdenticalToLegacyForAllModelsNumericsAndThreads) {
  ThreadPool pool(3);
  for (const models::BenchmarkEntry& e :
       models::SuiteFor(models::SuiteVersion::kV1_0)) {
    const graph::Graph g = models::BuildReferenceGraph(
        e, models::SuiteVersion::kV1_0, models::ModelScale::kMini);
    const infer::WeightStore w = infer::InitializeWeights(g, 7);
    const std::vector<infer::Tensor> inputs = GraphInputs(g, 42);

    // Calibrated INT8 exercises the fake-quant-over-aliased-buffer path.
    const std::vector<quant::CalibrationSample> samples{GraphInputs(g, 1),
                                                        GraphInputs(g, 2)};
    const infer::QuantParams qp = quant::CalibratePtq(g, w, samples);

    for (const infer::NumericsMode mode :
         {infer::NumericsMode::kFp32, infer::NumericsMode::kFp16,
          infer::NumericsMode::kInt8}) {
      const infer::Executor exec(g, w, mode,
                                 mode == infer::NumericsMode::kInt8 ? &qp
                                                                    : nullptr);
      const std::string what =
          e.id + "/" + std::string(ToString(mode));
      const auto legacy = exec.Run(inputs);
      infer::ExecutionContext ctx = exec.CreateContext();
      // Twice through the same context: a stale value surviving the first
      // run would surface in the second.
      ExpectBitIdentical(legacy, exec.Run(inputs, ctx), what + " run1");
      ExpectBitIdentical(legacy, exec.Run(inputs, ctx), what + " run2");
      ExpectBitIdentical(legacy, exec.Run(inputs, ctx, {}, &pool),
                         what + " threaded");
    }
  }
}

TEST(ArenaExecution, ContextReuseAcrossDistinctSamples) {
  const auto e = models::SuiteFor(models::SuiteVersion::kV1_0)[0];
  const graph::Graph g = models::BuildReferenceGraph(
      e, models::SuiteVersion::kV1_0, models::ModelScale::kMini);
  const infer::WeightStore w = infer::InitializeWeights(g, 7);
  const infer::Executor exec(g, w);
  infer::ExecutionContext ctx = exec.CreateContext();
  for (std::uint64_t s = 0; s < 5; ++s) {
    const auto inputs = GraphInputs(g, 500 + s);
    ExpectBitIdentical(exec.Run(inputs), exec.Run(inputs, ctx),
                       "sample " + std::to_string(s));
  }
}

TEST(ArenaExecution, PreparedModelMatchesLegacyExecutor) {
  const auto e = models::SuiteFor(models::SuiteVersion::kV1_0)[0];
  const graph::Graph g = models::BuildReferenceGraph(
      e, models::SuiteVersion::kV1_0, models::ModelScale::kMini);
  const infer::WeightStore w = infer::InitializeWeights(g, 7);
  const infer::PreparedModel prepared(g, w);
  const auto inputs = GraphInputs(g, 9);
  const auto legacy = prepared.executor().Run(inputs);
  ExpectBitIdentical(legacy, prepared.Run(inputs), "per-call context");
  infer::ExecutionContext ctx = prepared.CreateContext();
  ExpectBitIdentical(legacy, prepared.Run(inputs, ctx), "reused context");
}

// Harness level: the serial ReferenceBackend (arena path) must reproduce
// the accuracy score of a hand-rolled legacy-executor loop bit-for-bit.
TEST(ArenaExecution, ReferenceBackendAccuracyMatchesLegacyOracle) {
  const auto e = models::SuiteFor(models::SuiteVersion::kV1_0)[0];
  const std::unique_ptr<harness::TaskBundle> bundle =
      harness::TaskBundle::Create(e, models::SuiteVersion::kV1_0);
  const infer::Executor exec(bundle->mini_graph(), bundle->weights());

  loadgen::TestSettings acc;
  acc.mode = loadgen::TestMode::kAccuracyOnly;
  loadgen::DatasetQsl qsl(bundle->dataset());
  loadgen::RealClock clock;
  backends::ReferenceBackend sut("arena", exec, qsl);
  const loadgen::TestResult got = loadgen::RunTest(sut, qsl, acc, clock);

  // Legacy oracle: the pre-plan execution path over the same samples.
  std::vector<std::vector<infer::Tensor>> oracle;
  std::vector<std::size_t> indices(bundle->dataset().size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  loadgen::DatasetQsl oracle_qsl(bundle->dataset());
  oracle_qsl.LoadSamplesToRam(indices);
  oracle.reserve(indices.size());
  for (const std::size_t i : indices)
    oracle.push_back(exec.Run(oracle_qsl.Loaded(i)));

  ASSERT_EQ(oracle.size(), got.accuracy_outputs.size());
  for (std::size_t s = 0; s < oracle.size(); ++s)
    ExpectBitIdentical(oracle[s], got.accuracy_outputs[s],
                       "sample " + std::to_string(s));
  EXPECT_EQ(bundle->dataset().ScoreOutputs(got.accuracy_outputs),
            bundle->dataset().ScoreOutputs(oracle));
}

TEST(MemoryPlan, FullScaleModelsBeatNaiveFootprint) {
  for (const auto version :
       {models::SuiteVersion::kV0_7, models::SuiteVersion::kV1_0}) {
    for (const models::BenchmarkEntry& e : models::SuiteFor(version)) {
      const graph::Graph g =
          models::BuildReferenceGraph(e, version, models::ModelScale::kFull);
      const infer::MemoryPlan plan = infer::MemoryPlan::Build(g);
      EXPECT_LT(plan.peak_arena_bytes(), plan.naive_bytes())
          << ToString(version) << "/" << e.id;
      CheckPlanInvariants(g, plan);
    }
  }
}

}  // namespace
}  // namespace mlpm
