#include "harness/journal.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

#if __has_include(<unistd.h>)
#include <unistd.h>
#define MLPM_JOURNAL_HAS_FSYNC 1
#else
#define MLPM_JOURNAL_HAS_FSYNC 0
#endif

namespace mlpm::harness {

std::uint64_t Fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

constexpr std::string_view kHeader = "mlpm_journal v1";

// ---- payload encoding -------------------------------------------------
//
// Entries are one of:
//   u <key> <uint>\n
//   d <key> <hexfloat>\n            (bit-exact double round trip)
//   b <key> 0|1\n
//   s <key> <len>\n<len bytes>\n    (arbitrary bytes, incl. newlines)
//   D <key> <n> <hexfloat>...\n
//   U <key> <n> <uint>...\n
//   L <key> <n>\n  then n x  <len>\n<len bytes>\n

std::string HexDouble(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

void PutU(std::string& out, std::string_view key, std::uint64_t v) {
  out += "u ";
  out += key;
  out += ' ';
  out += std::to_string(v);
  out += '\n';
}

void PutD(std::string& out, std::string_view key, double v) {
  out += "d ";
  out += key;
  out += ' ';
  out += HexDouble(v);
  out += '\n';
}

void PutB(std::string& out, std::string_view key, bool v) {
  out += "b ";
  out += key;
  out += v ? " 1\n" : " 0\n";
}

void PutS(std::string& out, std::string_view key, std::string_view bytes) {
  out += "s ";
  out += key;
  out += ' ';
  out += std::to_string(bytes.size());
  out += '\n';
  out += bytes;
  out += '\n';
}

void PutDV(std::string& out, std::string_view key,
           const std::vector<double>& v) {
  out += "D ";
  out += key;
  out += ' ';
  out += std::to_string(v.size());
  for (const double d : v) {
    out += ' ';
    out += HexDouble(d);
  }
  out += '\n';
}

void PutUV(std::string& out, std::string_view key,
           const std::vector<std::size_t>& v) {
  out += "U ";
  out += key;
  out += ' ';
  out += std::to_string(v.size());
  for (const std::size_t u : v) {
    out += ' ';
    out += std::to_string(u);
  }
  out += '\n';
}

void PutL(std::string& out, std::string_view key,
          const std::vector<std::string>& v) {
  out += "L ";
  out += key;
  out += ' ';
  out += std::to_string(v.size());
  out += '\n';
  for (const std::string& s : v) {
    out += std::to_string(s.size());
    out += '\n';
    out += s;
    out += '\n';
  }
}

// ---- payload decoding -------------------------------------------------

struct Field {
  char tag = '?';
  std::string key;
  std::string scalar;                 // u/d/b value text
  std::string bytes;                  // s payload
  std::vector<double> doubles;        // D
  std::vector<std::uint64_t> uints;   // U
  std::vector<std::string> strings;   // L
};

std::uint64_t ParseU64(const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  Expects(errno == 0 && end != text.c_str() && *end == '\0',
          "journal: bad integer '" + text + "'");
  return v;
}

double ParseDouble(const std::string& text) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  Expects(end != text.c_str() && *end == '\0',
          "journal: bad double '" + text + "'");
  return v;
}

// Walks a payload, yielding entries.  Throws CheckError on any structural
// damage — the caller decides whether that aborts (writer-side) or just
// truncates the valid prefix (loader-side).
class PayloadParser {
 public:
  explicit PayloadParser(const std::string& payload) : payload_(payload) {}

  [[nodiscard]] bool Next(Field& f) {
    if (pos_ >= payload_.size()) return false;
    const std::string line = TakeLine();
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    Expects(tag.size() == 1, "journal: bad entry tag '" + tag + "'");
    f = Field{};
    f.tag = tag[0];
    ls >> f.key;
    Expects(!f.key.empty(), "journal: entry without key");
    switch (f.tag) {
      case 'u':
      case 'd':
      case 'b': {
        ls >> f.scalar;
        Expects(!ls.fail(), "journal: missing value for key " + f.key);
        break;
      }
      case 's': {
        std::string len_text;
        ls >> len_text;
        f.bytes = TakeBlock(ParseU64(len_text));
        break;
      }
      case 'D': {
        std::string n_text;
        ls >> n_text;
        const std::uint64_t n = ParseU64(n_text);
        f.doubles.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i) {
          std::string v;
          ls >> v;
          Expects(!ls.fail(), "journal: short double list for " + f.key);
          f.doubles.push_back(ParseDouble(v));
        }
        break;
      }
      case 'U': {
        std::string n_text;
        ls >> n_text;
        const std::uint64_t n = ParseU64(n_text);
        f.uints.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i) {
          std::string v;
          ls >> v;
          Expects(!ls.fail(), "journal: short uint list for " + f.key);
          f.uints.push_back(ParseU64(v));
        }
        break;
      }
      case 'L': {
        std::string n_text;
        ls >> n_text;
        const std::uint64_t n = ParseU64(n_text);
        f.strings.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i) {
          const std::string len_line = TakeLine();
          f.strings.push_back(TakeBlock(ParseU64(len_line)));
        }
        break;
      }
      default:
        Expects(false, "journal: unknown entry tag '" + std::string(1, f.tag) +
                           "'");
    }
    return true;
  }

 private:
  [[nodiscard]] std::string TakeLine() {
    const std::size_t nl = payload_.find('\n', pos_);
    Expects(nl != std::string::npos, "journal: unterminated entry line");
    std::string line = payload_.substr(pos_, nl - pos_);
    pos_ = nl + 1;
    return line;
  }

  [[nodiscard]] std::string TakeBlock(std::uint64_t len) {
    Expects(pos_ + len + 1 <= payload_.size(),
            "journal: block runs past the payload");
    std::string bytes = payload_.substr(pos_, len);
    pos_ += len;
    Expects(payload_[pos_] == '\n', "journal: block missing terminator");
    ++pos_;
    return bytes;
  }

  const std::string& payload_;
  std::size_t pos_ = 0;
};

// ---- TestResult codec -------------------------------------------------

std::string EncodeTestResult(const loadgen::TestResult& r) {
  std::string out;
  PutU(out, "scenario", static_cast<std::uint64_t>(r.scenario));
  PutU(out, "mode", static_cast<std::uint64_t>(r.mode));
  PutDV(out, "latencies_s", r.latencies_s);
  PutD(out, "duration_s", r.duration_s);
  PutU(out, "sample_count", r.sample_count);
  PutD(out, "percentile_latency_s", r.percentile_latency_s);
  PutD(out, "mean_latency_s", r.mean_latency_s);
  PutD(out, "throughput_sps", r.throughput_sps);
  PutB(out, "min_duration_met", r.min_duration_met);
  PutB(out, "min_query_count_met", r.min_query_count_met);
  PutB(out, "latency_bound_met", r.latency_bound_met);
  PutB(out, "shed_bound_met", r.shed_bound_met);
  PutU(out, "dropped_count", r.dropped_count);
  PutU(out, "timed_out_count", r.timed_out_count);
  PutU(out, "duplicate_count", r.duplicate_count);
  PutU(out, "unknown_count", r.unknown_count);
  PutU(out, "shed_count", r.shed_count);
  PutU(out, "rejected_count", r.rejected_count);
  PutL(out, "error_log", r.error_log);
  PutS(out, "invalid_reason", r.invalid_reason);
  PutS(out, "log", r.log.Serialize());
  return out;
}

loadgen::TestResult DecodeTestResult(const std::string& payload) {
  loadgen::TestResult r;
  PayloadParser parser(payload);
  Field f;
  while (parser.Next(f)) {
    if (f.key == "scenario") {
      const std::uint64_t v = ParseU64(f.scalar);
      Expects(v <= 3, "journal: bad scenario " + f.scalar);
      r.scenario = static_cast<loadgen::TestScenario>(v);
    } else if (f.key == "mode") {
      const std::uint64_t v = ParseU64(f.scalar);
      Expects(v <= 1, "journal: bad mode " + f.scalar);
      r.mode = static_cast<loadgen::TestMode>(v);
    } else if (f.key == "latencies_s") {
      r.latencies_s = std::move(f.doubles);
    } else if (f.key == "duration_s") {
      r.duration_s = ParseDouble(f.scalar);
    } else if (f.key == "sample_count") {
      r.sample_count = ParseU64(f.scalar);
    } else if (f.key == "percentile_latency_s") {
      r.percentile_latency_s = ParseDouble(f.scalar);
    } else if (f.key == "mean_latency_s") {
      r.mean_latency_s = ParseDouble(f.scalar);
    } else if (f.key == "throughput_sps") {
      r.throughput_sps = ParseDouble(f.scalar);
    } else if (f.key == "min_duration_met") {
      r.min_duration_met = f.scalar == "1";
    } else if (f.key == "min_query_count_met") {
      r.min_query_count_met = f.scalar == "1";
    } else if (f.key == "latency_bound_met") {
      r.latency_bound_met = f.scalar == "1";
    } else if (f.key == "shed_bound_met") {
      r.shed_bound_met = f.scalar == "1";
    } else if (f.key == "dropped_count") {
      r.dropped_count = ParseU64(f.scalar);
    } else if (f.key == "timed_out_count") {
      r.timed_out_count = ParseU64(f.scalar);
    } else if (f.key == "duplicate_count") {
      r.duplicate_count = ParseU64(f.scalar);
    } else if (f.key == "unknown_count") {
      r.unknown_count = ParseU64(f.scalar);
    } else if (f.key == "shed_count") {
      r.shed_count = ParseU64(f.scalar);
    } else if (f.key == "rejected_count") {
      r.rejected_count = ParseU64(f.scalar);
    } else if (f.key == "error_log") {
      r.error_log = std::move(f.strings);
    } else if (f.key == "invalid_reason") {
      r.invalid_reason = std::move(f.bytes);
    } else if (f.key == "log") {
      r.log = loadgen::TestLog::Parse(f.bytes);
    }
    // Unknown keys are skipped: older binaries read newer journals.
  }
  return r;
}

}  // namespace

// ---- task record codec ------------------------------------------------

std::string EncodeTaskRecord(const TaskRunResult& tr) {
  std::string out;
  PutS(out, "task", tr.entry.id);
  PutU(out, "numerics", static_cast<std::uint64_t>(tr.numerics));
  PutS(out, "framework", tr.framework_name);
  PutS(out, "accelerator", tr.accelerator_label);
  PutD(out, "accuracy", tr.accuracy);
  PutD(out, "fp32_reference", tr.fp32_reference);
  PutD(out, "ratio_to_fp32", tr.ratio_to_fp32);
  PutB(out, "quality_passed", tr.quality_passed);
  PutUV(out, "calibration_indices", tr.calibration_indices);
  PutU(out, "accuracy_sample_count", tr.accuracy_sample_count);
  PutU(out, "dataset_size", tr.dataset_size);
  if (tr.single_stream)
    PutS(out, "single_stream", EncodeTestResult(*tr.single_stream));
  if (tr.offline) PutS(out, "offline", EncodeTestResult(*tr.offline));
  PutD(out, "energy_per_inference_j", tr.energy_per_inference_j);
  PutD(out, "peak_temperature_c", tr.peak_temperature_c);
  PutU(out, "peak_arena_bytes", tr.peak_arena_bytes);
  PutU(out, "naive_activation_bytes", tr.naive_activation_bytes);
  PutU(out, "status", static_cast<std::uint64_t>(tr.status));
  PutS(out, "status_detail", tr.status_detail);
  PutU(out, "fault_count", tr.fault_count);
  PutU(out, "degradation_count", tr.degradation_count);
  PutU(out, "shed_count", tr.shed_count);
  PutU(out, "rejected_count", tr.rejected_count);
  PutU(out, "breaker_trips", tr.breaker_trips);
  PutB(out, "degraded_to_cpu", tr.degraded_to_cpu);
  PutU(out, "performance_attempts",
       static_cast<std::uint64_t>(tr.performance_attempts));
  PutS(out, "fault_log", tr.fault_log);
  PutU(out, "lint_error_count", tr.lint_error_count);
  PutU(out, "lint_warning_count", tr.lint_warning_count);
  PutS(out, "lint_log", tr.lint_log);
  PutS(out, "kernel_isa", tr.kernel_isa);
  PutB(out, "transform_requested", tr.transform_requested);
  PutB(out, "transform_applied", tr.transform_applied);
  PutS(out, "transform_passes", tr.transform_passes);
  PutU(out, "transform_rewrites", tr.transform_rewrites);
  PutU(out, "transform_nodes_before", tr.transform_nodes_before);
  PutU(out, "transform_nodes_after", tr.transform_nodes_after);
  PutS(out, "transform_detail", tr.transform_detail);
  PutB(out, "tiling_requested", tr.tiling_requested);
  PutB(out, "tiling_applied", tr.tiling_applied);
  PutU(out, "tile_segments", tr.tile_segments);
  PutU(out, "tile_rows", static_cast<std::uint64_t>(tr.tile_rows));
  PutU(out, "tile_slab_bytes", tr.tile_slab_bytes);
  // accuracy_outputs are deliberately not journaled: they are only needed
  // transiently for scoring, and the derived score is recorded above.
  return out;
}

TaskRunResult DecodeTaskRecord(const std::string& payload) {
  TaskRunResult tr;
  PayloadParser parser(payload);
  Field f;
  while (parser.Next(f)) {
    if (f.key == "task") {
      tr.entry.id = std::move(f.bytes);
    } else if (f.key == "numerics") {
      const std::uint64_t v = ParseU64(f.scalar);
      Expects(v <= 4, "journal: bad numerics " + f.scalar);
      tr.numerics = static_cast<DataType>(v);
    } else if (f.key == "framework") {
      tr.framework_name = std::move(f.bytes);
    } else if (f.key == "accelerator") {
      tr.accelerator_label = std::move(f.bytes);
    } else if (f.key == "accuracy") {
      tr.accuracy = ParseDouble(f.scalar);
    } else if (f.key == "fp32_reference") {
      tr.fp32_reference = ParseDouble(f.scalar);
    } else if (f.key == "ratio_to_fp32") {
      tr.ratio_to_fp32 = ParseDouble(f.scalar);
    } else if (f.key == "quality_passed") {
      tr.quality_passed = f.scalar == "1";
    } else if (f.key == "calibration_indices") {
      tr.calibration_indices.assign(f.uints.begin(), f.uints.end());
    } else if (f.key == "accuracy_sample_count") {
      tr.accuracy_sample_count = ParseU64(f.scalar);
    } else if (f.key == "dataset_size") {
      tr.dataset_size = ParseU64(f.scalar);
    } else if (f.key == "single_stream") {
      tr.single_stream = DecodeTestResult(f.bytes);
    } else if (f.key == "offline") {
      tr.offline = DecodeTestResult(f.bytes);
    } else if (f.key == "energy_per_inference_j") {
      tr.energy_per_inference_j = ParseDouble(f.scalar);
    } else if (f.key == "peak_temperature_c") {
      tr.peak_temperature_c = ParseDouble(f.scalar);
    } else if (f.key == "peak_arena_bytes") {
      tr.peak_arena_bytes = ParseU64(f.scalar);
    } else if (f.key == "naive_activation_bytes") {
      tr.naive_activation_bytes = ParseU64(f.scalar);
    } else if (f.key == "status") {
      const std::uint64_t v = ParseU64(f.scalar);
      Expects(v <= 3, "journal: bad status " + f.scalar);
      tr.status = static_cast<TaskStatus>(v);
    } else if (f.key == "status_detail") {
      tr.status_detail = std::move(f.bytes);
    } else if (f.key == "fault_count") {
      tr.fault_count = ParseU64(f.scalar);
    } else if (f.key == "degradation_count") {
      tr.degradation_count = ParseU64(f.scalar);
    } else if (f.key == "shed_count") {
      tr.shed_count = ParseU64(f.scalar);
    } else if (f.key == "rejected_count") {
      tr.rejected_count = ParseU64(f.scalar);
    } else if (f.key == "breaker_trips") {
      tr.breaker_trips = ParseU64(f.scalar);
    } else if (f.key == "degraded_to_cpu") {
      tr.degraded_to_cpu = f.scalar == "1";
    } else if (f.key == "performance_attempts") {
      tr.performance_attempts = static_cast<int>(ParseU64(f.scalar));
    } else if (f.key == "fault_log") {
      tr.fault_log = std::move(f.bytes);
    } else if (f.key == "lint_error_count") {
      tr.lint_error_count = ParseU64(f.scalar);
    } else if (f.key == "lint_warning_count") {
      tr.lint_warning_count = ParseU64(f.scalar);
    } else if (f.key == "lint_log") {
      tr.lint_log = std::move(f.bytes);
    } else if (f.key == "kernel_isa") {
      tr.kernel_isa = std::move(f.bytes);
    } else if (f.key == "transform_requested") {
      tr.transform_requested = f.scalar == "1";
    } else if (f.key == "transform_applied") {
      tr.transform_applied = f.scalar == "1";
    } else if (f.key == "transform_passes") {
      tr.transform_passes = std::move(f.bytes);
    } else if (f.key == "transform_rewrites") {
      tr.transform_rewrites = ParseU64(f.scalar);
    } else if (f.key == "transform_nodes_before") {
      tr.transform_nodes_before = ParseU64(f.scalar);
    } else if (f.key == "transform_nodes_after") {
      tr.transform_nodes_after = ParseU64(f.scalar);
    } else if (f.key == "transform_detail") {
      tr.transform_detail = std::move(f.bytes);
    } else if (f.key == "tiling_requested") {
      tr.tiling_requested = f.scalar == "1";
    } else if (f.key == "tiling_applied") {
      tr.tiling_applied = f.scalar == "1";
    } else if (f.key == "tile_segments") {
      tr.tile_segments = ParseU64(f.scalar);
    } else if (f.key == "tile_rows") {
      // Stored as the two's-complement u64 image (-1 = auto round-trips).
      tr.tile_rows = static_cast<std::int64_t>(ParseU64(f.scalar));
    } else if (f.key == "tile_slab_bytes") {
      tr.tile_slab_bytes = ParseU64(f.scalar);
    }
  }
  Expects(!tr.entry.id.empty(), "journal: record without a task id");
  return tr;
}

std::string EncodeMeta(const JournalMeta& meta) {
  std::string out;
  PutS(out, "chipset", meta.chipset);
  PutS(out, "version", meta.version);
  PutU(out, "seed", meta.seed);
  PutU(out, "config_hash", meta.config_hash);
  return out;
}

JournalMeta DecodeMeta(const std::string& payload) {
  JournalMeta meta;
  PayloadParser parser(payload);
  Field f;
  while (parser.Next(f)) {
    if (f.key == "chipset") meta.chipset = std::move(f.bytes);
    else if (f.key == "version") meta.version = std::move(f.bytes);
    else if (f.key == "seed") meta.seed = ParseU64(f.scalar);
    else if (f.key == "config_hash") meta.config_hash = ParseU64(f.scalar);
  }
  Expects(!meta.chipset.empty() && !meta.version.empty(),
          "journal: meta missing chipset/version");
  return meta;
}

// ---- run-config digest ------------------------------------------------

std::uint64_t HashRunConfig(const soc::ChipsetDesc& chipset,
                            models::SuiteVersion version,
                            const RunOptions& o) {
  std::string canon;
  const auto add = [&canon](std::string_view key, const std::string& value) {
    canon += key;
    canon += '=';
    canon += value;
    canon += ';';
  };
  const auto add_d = [&](std::string_view key, double v) {
    add(key, HexDouble(v));
  };
  const auto add_u = [&](std::string_view key, std::uint64_t v) {
    add(key, std::to_string(v));
  };

  add("chipset", chipset.name);
  add("version", std::string(ToString(version)));
  add_u("run_accuracy", o.run_accuracy ? 1 : 0);
  add_u("run_performance", o.run_performance ? 1 : 0);
  add_u("run_offline", o.run_offline ? 1 : 0);
  add_d("cooldown_s", o.cooldown_s);
  add_u("end_to_end", o.end_to_end ? 1 : 0);
  add_u("use_qat_weights", o.use_qat_weights ? 1 : 0);
  add_u("max_test_retries", static_cast<std::uint64_t>(o.max_test_retries));
  add_u("lint", static_cast<std::uint64_t>(o.lint));
  // The *requested* ISA, not the resolved one: the hash guards against
  // mixing journals from differently-configured runs, and f32 accuracy
  // results differ across kernel tables.
  add("kernel_isa", std::string(ToString(o.kernel_isa)));
  // The transform stage changes the executed graph, so resumed accuracy
  // results are only interchangeable within one setting of it.
  add_u("transform", o.transform ? 1 : 0);
  // Tiling is bit-identical to whole-op execution, but the memory-plan
  // figures and applied/segment fields in each record depend on it, so
  // journals are only interchangeable within one tiling configuration.
  add_u("tiling", o.tiling.enabled ? 1 : 0);
  add_u("tile_rows", static_cast<std::uint64_t>(o.tiling.rows));
  add_u("tile_cache_bytes", o.tiling.cache_bytes);

  const loadgen::TestSettings& s = o.performance_settings;
  add_u("seed", s.seed);
  add_u("min_query_count", s.min_query_count);
  add_d("min_duration_s", s.min_duration.count());
  add_u("offline_sample_count", s.offline_sample_count);
  add_d("latency_percentile", s.latency_percentile);
  add_d("server_target_qps", s.server_target_qps);
  add_d("server_latency_bound_s", s.server_latency_bound.count());
  add_u("server_query_count", s.server_query_count);
  add_u("server_max_queue_depth", s.server_max_queue_depth);
  add_d("server_max_shed_fraction", s.server_max_shed_fraction);
  add_u("multistream_samples_per_query", s.multistream_samples_per_query);
  add_d("multistream_interval_s", s.multistream_interval.count());
  add_u("multistream_query_count", s.multistream_query_count);
  add_u("performance_sample_count", s.performance_sample_count);
  add_d("query_timeout_s", s.query_timeout.count());

  if (o.fault_plan) {
    add_u("fault_seed", o.fault_plan->seed);
    for (const soc::FaultSpec& spec : o.fault_plan->specs) {
      add("fault_kind", std::string(ToString(spec.kind)));
      add_d("fault_probability", spec.probability);
      add_d("fault_stall_scale", spec.stall_scale);
      add_d("fault_crash_latency_fraction", spec.crash_latency_fraction);
    }
    const backends::FaultToleranceOptions& ft = o.fault_tolerance;
    add_u("ft_max_attempts", static_cast<std::uint64_t>(ft.max_attempts));
    add_d("ft_backoff_base_s", ft.backoff_base_s);
    add_u("ft_crash_fallback_threshold",
          static_cast<std::uint64_t>(ft.crash_fallback_threshold));
    add_d("ft_emergency_cooldown_s", ft.emergency_cooldown_s);
    add_d("ft_backoff_jitter_frac", ft.backoff_jitter_frac);
    add_u("ft_backoff_seed", ft.backoff_seed);
  }
  if (o.circuit_breaker) {
    const backends::CircuitBreakerOptions& cb = *o.circuit_breaker;
    add_u("cb_trip_threshold", static_cast<std::uint64_t>(cb.trip_threshold));
    add_d("cb_open_duration_s", cb.open_duration_s);
    add_d("cb_backoff_factor", cb.backoff_factor);
    add_d("cb_max_open_duration_s", cb.max_open_duration_s);
    add_d("cb_probe_jitter_frac", cb.probe_jitter_frac);
    add_u("cb_seed", cb.seed);
    add_d("cb_rejection_latency_s", cb.rejection_latency_s);
  }
  // threads / profile / trace_path / journal_path are excluded: they do
  // not change any result field.
  return Fnv1a64(canon);
}

// ---- loader -----------------------------------------------------------

namespace {

// One frame header line: "<kind> <len> <hash-hex>".  Returns false when
// the bytes at `pos` cannot possibly be an intact frame.
struct FrameHeader {
  std::string kind;
  std::uint64_t len = 0;
  std::uint64_t hash = 0;
  std::size_t payload_pos = 0;  // offset of the first payload byte
};

bool ParseFrameHeader(const std::string& data, std::size_t pos,
                      FrameHeader& out, std::string& why) {
  const std::size_t nl = data.find('\n', pos);
  if (nl == std::string::npos) {
    why = "unterminated frame header";
    return false;
  }
  std::istringstream ls(data.substr(pos, nl - pos));
  std::string kind, len_text, hash_text;
  ls >> kind >> len_text >> hash_text;
  if (ls.fail() || (kind != "meta" && kind != "rec")) {
    why = "malformed frame header";
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const std::uint64_t len = std::strtoull(len_text.c_str(), &end, 10);
  if (errno != 0 || *end != '\0') {
    why = "bad frame length";
    return false;
  }
  errno = 0;
  const std::uint64_t hash = std::strtoull(hash_text.c_str(), &end, 16);
  if (errno != 0 || *end != '\0') {
    why = "bad frame checksum";
    return false;
  }
  out.kind = kind;
  out.len = len;
  out.hash = hash;
  out.payload_pos = nl + 1;
  return true;
}

}  // namespace

JournalLoad LoadJournal(const std::string& path) {
  JournalLoad load;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    load.notes.push_back("cannot open journal: " + path);
    return load;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string data = buf.str();

  // Header line.
  const std::size_t header_end = data.find('\n');
  if (header_end == std::string::npos ||
      data.substr(0, header_end) != kHeader) {
    load.notes.push_back("not a journal: missing '" + std::string(kHeader) +
                         "' header");
    load.torn_tail = !data.empty();
    load.torn_bytes = data.size();
    return load;
  }

  std::size_t pos = header_end + 1;
  bool first_frame = true;
  while (pos < data.size()) {
    FrameHeader frame;
    std::string why;
    if (!ParseFrameHeader(data, pos, frame, why)) {
      load.notes.push_back("torn tail at byte " + std::to_string(pos) + ": " +
                           why);
      break;
    }
    // Payload must be fully present, terminated, and checksum-clean.
    if (frame.payload_pos + frame.len + 1 > data.size()) {
      load.notes.push_back("torn tail at byte " + std::to_string(pos) +
                           ": frame truncated mid-payload");
      break;
    }
    if (data[frame.payload_pos + frame.len] != '\n') {
      load.notes.push_back("torn tail at byte " + std::to_string(pos) +
                           ": frame payload unterminated");
      break;
    }
    const std::string payload = data.substr(frame.payload_pos, frame.len);
    if (Fnv1a64(payload) != frame.hash) {
      load.notes.push_back("torn tail at byte " + std::to_string(pos) +
                           ": checksum mismatch on '" + frame.kind +
                           "' frame");
      break;
    }
    try {
      if (first_frame) {
        if (frame.kind != "meta") {
          load.notes.push_back("first frame is '" + frame.kind +
                               "', expected 'meta'");
          break;
        }
        load.meta = DecodeMeta(payload);
        load.meta_valid = true;
      } else {
        if (frame.kind != "rec") {
          load.notes.push_back("unexpected '" + frame.kind +
                               "' frame after the meta frame");
          break;
        }
        load.tasks.push_back(DecodeTaskRecord(payload));
        ++load.intact_records;
      }
    } catch (const std::exception& e) {
      // Checksum-clean but undecodable: a format bug or version skew.
      // Treat like a torn tail — keep the prefix, cut from here.
      load.notes.push_back("undecodable '" + frame.kind + "' frame at byte " +
                           std::to_string(pos) + ": " + e.what());
      break;
    }
    first_frame = false;
    pos = frame.payload_pos + frame.len + 1;
  }

  load.valid_prefix_bytes = pos;
  load.torn_bytes = data.size() - pos;
  load.torn_tail = load.torn_bytes > 0;
  return load;
}

// ---- writer -----------------------------------------------------------

JournalWriter JournalWriter::Open(const std::string& path,
                                  const JournalMeta& meta, bool resume) {
  if (resume) {
    const JournalLoad existing = LoadJournal(path);
    if (existing.meta_valid && existing.meta.Matches(meta)) {
      if (existing.torn_tail) {
        // Cut the torn tail so the next append starts on a frame
        // boundary.  Rewriting the valid prefix is equivalent to (and
        // simpler than) platform truncate(), and the prefix is small —
        // a handful of per-task records.
        std::ifstream in(path, std::ios::binary);
        Expects(static_cast<bool>(in), "cannot reopen journal: " + path);
        std::string prefix(existing.valid_prefix_bytes, '\0');
        in.read(prefix.data(),
                static_cast<std::streamsize>(prefix.size()));
        Expects(static_cast<std::size_t>(in.gcount()) == prefix.size(),
                "journal shrank while truncating: " + path);
        in.close();
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        Expects(static_cast<bool>(out), "cannot truncate journal: " + path);
        out.write(prefix.data(),
                  static_cast<std::streamsize>(prefix.size()));
        Expects(static_cast<bool>(out), "cannot rewrite journal: " + path);
      }
      std::unique_ptr<std::FILE, FileCloser> file(
          std::fopen(path.c_str(), "ab"));
      Expects(file != nullptr, "cannot append to journal: " + path);
      return JournalWriter(path, std::move(file));
    }
    // Missing, damaged beyond the meta frame, or a different run's
    // journal: fall through and start fresh.
  }
  std::unique_ptr<std::FILE, FileCloser> file(std::fopen(path.c_str(), "wb"));
  Expects(file != nullptr, "cannot create journal: " + path);
  JournalWriter writer(path, std::move(file));
  const std::string header = std::string(kHeader) + "\n";
  Expects(std::fwrite(header.data(), 1, header.size(), writer.file_.get()) ==
              header.size(),
          "journal header write failed: " + path);
  writer.AppendFrame("meta", EncodeMeta(meta));
  return writer;
}

void JournalWriter::AppendFrame(std::string_view kind,
                                const std::string& payload) {
  char head[64];
  std::snprintf(head, sizeof head, "%.*s %zu %016llx\n",
                static_cast<int>(kind.size()), kind.data(), payload.size(),
                static_cast<unsigned long long>(Fnv1a64(payload)));
  std::string frame = head;
  frame += payload;
  frame += '\n';
  Expects(std::fwrite(frame.data(), 1, frame.size(), file_.get()) ==
              frame.size(),
          "journal write failed: " + path_);

  // Durability point: the record is not "appended" until it has hit the
  // disk.  fsync latency is the price of crash safety — surface it.
  const auto t0 = std::chrono::steady_clock::now();
  Expects(std::fflush(file_.get()) == 0, "journal flush failed: " + path_);
#if MLPM_JOURNAL_HAS_FSYNC
  Expects(::fsync(::fileno(file_.get())) == 0,
          "journal fsync failed: " + path_);
#endif
  const double fsync_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  metrics.Increment("journal.records");
  metrics.MaxGauge("journal.fsync_seconds_max", fsync_s);
  if (obs::TraceRecorder& rec = obs::TraceRecorder::Global(); rec.enabled())
    rec.AddInstant(
        obs::Domain::kHost, "journal", "journal:append", rec.NowUs(),
        {obs::Arg("bytes", static_cast<std::uint64_t>(frame.size())),
         obs::Arg("fsync_ms", fsync_s * 1e3)},
        "journal");
}

void JournalWriter::Append(const TaskRunResult& tr) {
  AppendFrame("rec", EncodeTaskRecord(tr));
}

}  // namespace mlpm::harness
